#include "src/store/persistent_repository.h"

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "src/common/file_io.h"
#include "src/common/metrics.h"
#include "src/common/thread_pool.h"
#include "src/common/timer.h"
#include "src/provenance/serialize.h"
#include "src/store/codec.h"
#include "src/store/snapshot.h"
#include "src/workflow/validate.h"

namespace paw {
namespace {

Counter& CompactionsTotal() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("paw_store_compactions_total");
  return c;
}

Counter& RecoveryRecordsTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "paw_store_recovery_records_total");
  return c;
}

Histogram& RecoverySeconds() {
  static Histogram& h = MetricsRegistry::Global().GetLatencyHistogram(
      "paw_store_recovery_seconds");
  return h;
}

Histogram& CompactionPhaseSeconds(CompactionPhase phase) {
  static Histogram& snapshot =
      MetricsRegistry::Global().GetLatencyHistogram(
          "paw_store_compaction_seconds{phase=\"snapshot\"}");
  static Histogram& install =
      MetricsRegistry::Global().GetLatencyHistogram(
          "paw_store_compaction_seconds{phase=\"install\"}");
  static Histogram& cleanup =
      MetricsRegistry::Global().GetLatencyHistogram(
          "paw_store_compaction_seconds{phase=\"cleanup\"}");
  switch (phase) {
    case CompactionPhase::kSnapshot: return snapshot;
    case CompactionPhase::kInstall: return install;
    default: return cleanup;
  }
}

constexpr std::string_view kMarkerName = "PAWSTORE";
/// v1: every record is a text payload. v2: records may also be binary
/// (kSpecV2 / kExecutionV2). Both are readable by this build; the
/// marker exists so a hypothetical v1-only reader fails loudly on a
/// store that may contain records it cannot parse.
constexpr std::string_view kMarkerV1 = "pawstore 1\n";
constexpr std::string_view kMarkerV2 = "pawstore 2\n";
// Manifest of a *sharded* store root (src/store/sharded_repository.h);
// a single-directory store must never be created inside one.
constexpr std::string_view kShardManifestName = "PAWSHARDS";

std::string MarkerPath(const std::string& dir) {
  return dir + "/" + std::string(kMarkerName);
}

/// Deletes `<name>.tmp` leftovers of interrupted `AtomicWriteFile`
/// calls (a crash between temp write and rename, e.g. mid-compaction
/// snapshot or manifest bump). They are never valid store state — the
/// rename is the commit point — so reclaiming them on open is always
/// safe.
Status RemoveStaleTempFiles(const std::string& dir) {
  PAW_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDir(dir));
  for (const std::string& name : names) {
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      PAW_RETURN_NOT_OK(RemoveFileIfExists(dir + "/" + name));
    }
  }
  return Status::OK();
}

WalOptions WalOptionsFrom(const StoreOptions& options) {
  WalOptions wal_options;
  wal_options.sync_each_append = options.sync_each_append;
  wal_options.segment_bytes = options.segment_bytes;
  return wal_options;
}

}  // namespace

/// Shared between the store handle and the snapshot worker; heap-held
/// so a running compaction survives moves of the store object.
struct PersistentRepository::CompactState {
  std::mutex mu;
  std::condition_variable cv;
  /// True from cut-pin to publish (background) / for the whole call
  /// (inline). Guarded by `mu`.
  bool running = false;
  /// Result of the most recently finished compaction. Guarded by `mu`.
  Status last;
  /// LSN covered by the newest installed snapshot.
  std::atomic<uint64_t> snapshot_lsn{0};
  /// Oldest segment seq the last installed compaction kept; sealed
  /// segments awaiting compaction exist iff the WAL's active seq
  /// exceeds this (the background auto-trigger's cue).
  std::atomic<uint64_t> installed_seq{1};
  /// Lazily created one-thread snapshot worker. Declared last: its
  /// destructor drains in-flight work while the rest of the state is
  /// still alive.
  std::unique_ptr<ThreadPool> worker;
};

PersistentRepository::PersistentRepository(std::string dir,
                                           WriteAheadLog wal,
                                           Options options)
    : dir_(std::move(dir)),
      wal_(std::move(wal)),
      options_(std::move(options)),
      state_(std::make_shared<CompactState>()) {}

Result<PersistentRepository> PersistentRepository::Init(
    const std::string& dir, Options options) {
  PAW_RETURN_NOT_OK(EnsureDir(dir));
  if (PathExists(MarkerPath(dir))) {
    return Status::AlreadyExists(dir + " already contains a paw store");
  }
  if (PathExists(dir + "/" + std::string(kShardManifestName))) {
    return Status::AlreadyExists(
        dir + " is a sharded store root; init its shards via "
        "ShardedRepository");
  }
  // Claim the directory before creating any store file, so two
  // concurrent Inits cannot interleave.
  PAW_ASSIGN_OR_RETURN(StoreDirLock lock, StoreDirLock::Acquire(dir));
  const bool binary = options.codec == PayloadCodec::kBinary;
  PAW_RETURN_NOT_OK(
      AtomicWriteFile(MarkerPath(dir), binary ? kMarkerV2 : kMarkerV1));
  PAW_ASSIGN_OR_RETURN(
      WriteAheadLog wal,
      WriteAheadLog::Create(dir, /*base_lsn=*/0, WalOptionsFrom(options)));
  PersistentRepository store(dir, std::move(wal), std::move(options));
  store.lock_ = std::move(lock);
  store.format_version_ = binary ? 2 : 1;
  return store;
}

Result<PersistentRepository> PersistentRepository::Open(
    const std::string& dir, Options options) {
  PAW_ASSIGN_OR_RETURN(std::string marker,
                       ReadFileToString(MarkerPath(dir)));
  int format_version = 0;
  if (marker == kMarkerV1) {
    format_version = 1;
  } else if (marker == kMarkerV2) {
    format_version = 2;
  } else {
    return Status::FailedPrecondition(dir + " is not a paw store (bad " +
                                      std::string(kMarkerName) + ")");
  }
  // Version negotiation: opening a v1 store with the binary codec
  // upgrades the marker to v2 — but only after recovery succeeds (see
  // below), so a failed or diagnostic open never mutates the store.
  const bool upgrade_marker =
      format_version == 1 && options.codec == PayloadCodec::kBinary;

  // Exclude other read-write openers before the first mutation below
  // (temp reclaim, torn-tail repair, marker bump all rewrite files).
  PAW_ASSIGN_OR_RETURN(StoreDirLock lock, StoreDirLock::Acquire(dir));

  // A crash between AtomicWriteFile's temp write and rename (snapshot
  // mid-compaction, marker, manifests) leaves a `*.tmp` behind; reclaim
  // it before snapshot discovery so it can never accumulate or be
  // mistaken for store state.
  PAW_RETURN_NOT_OK(RemoveStaleTempFiles(dir));

  RecoveryInfo recovery;
  Repository repo;
  Timer recovery_timer;

  // Seed from the newest snapshot, if any; LoadSnapshot stamps the
  // recovered entries' persistence metadata.
  auto snapshot = FindLatestSnapshot(dir);
  if (snapshot.ok()) {
    PAW_ASSIGN_OR_RETURN(recovery.snapshot_lsn,
                         LoadSnapshot(snapshot.value().path, &repo));
  } else if (!snapshot.status().IsNotFound()) {
    return snapshot.status();
  }

  // Replay the log suffix the snapshot does not cover: every surviving
  // segment in seq order (wal.h validates the chain and repairs a torn
  // tail).
  WalReplay replay;
  PAW_ASSIGN_OR_RETURN(
      WriteAheadLog wal,
      WriteAheadLog::Open(dir, &replay, WalOptionsFrom(options)));
  recovery.torn_tail = replay.torn_tail;
  recovery.dropped_bytes = replay.dropped_bytes;
  recovery.tail_error = replay.tail_error;
  recovery.wal_segments = replay.segments;
  recovery.stale_segments_removed = replay.stale_segments_removed;
  recovery.dropped_records = replay.dropped_records;
  for (size_t i = 0; i < replay.records.size(); ++i) {
    const uint64_t record_lsn = replay.base_lsn + i + 1;
    if (record_lsn <= recovery.snapshot_lsn) {
      ++recovery.records_skipped;
      continue;
    }
    PAW_RETURN_NOT_OK(ApplyRecord(replay.records[i], &repo));
    ++recovery.records_replayed;
    // Stamp the replayed entry (the newest spec or execution).
    if (replay.records[i].type == RecordType::kSpec ||
        replay.records[i].type == RecordType::kSpecV2) {
      repo.SetSpecPersist(
          repo.num_specs() - 1,
          MakePersistMeta(record_lsn, replay.records[i].payload, "wal"));
    } else {
      repo.SetExecutionPersist(
          ExecutionId(repo.num_executions() - 1),
          MakePersistMeta(record_lsn, replay.records[i].payload, "wal"));
    }
  }

  RecoverySeconds().Observe(recovery_timer.ElapsedMicros() / 1e6);
  RecoveryRecordsTotal().Add(recovery.records_replayed);

  // Recovery succeeded; commit the marker bump before handing out a
  // handle that could append a binary record to a v1-marked store.
  if (upgrade_marker) {
    PAW_RETURN_NOT_OK(AtomicWriteFile(MarkerPath(dir), kMarkerV2));
    format_version = 2;
  }

  PersistentRepository store(dir, std::move(wal), std::move(options));
  store.lock_ = std::move(lock);
  store.repo_ = std::move(repo);
  store.state_->snapshot_lsn.store(recovery.snapshot_lsn,
                                   std::memory_order_release);
  store.state_->installed_seq.store(replay.first_seq,
                                    std::memory_order_release);
  store.format_version_ = format_version;
  store.recovery_ = std::move(recovery);
  return store;
}

Result<int> PersistentRepository::AddSpecification(Specification spec,
                                                   PolicySet policy) {
  // Validate before logging: the WAL must never contain records that
  // replay with errors.
  PAW_RETURN_NOT_OK(ValidateSpecification(spec));
  PAW_RETURN_NOT_OK(ValidatePolicy(spec, policy));
  const bool binary = options_.codec == PayloadCodec::kBinary;
  const std::string payload = binary ? EncodeSpecPayloadV2(spec, policy)
                                     : EncodeSpecPayload(spec, policy);
  // Round-trip verify: validation does not constrain everything the
  // payload format does, so prove the payload replays to the same
  // bytes before it can reach the log. For the *text* codec that
  // catches e.g. module codes with whitespace (serialize unquoted,
  // fail to reparse); one ambiguity there is a byte-stable *semantic*
  // change the comparison cannot see — ';' is the list separator in
  // labels=/keywords=, so "age;zip" replays as two labels yet
  // re-serializes identically — and needs its own check. The binary
  // codec carries raw bytes, so only the generic round trip applies.
  if (options_.verify_payloads) {
    if (!binary) {
      for (const Workflow& w : spec.workflows()) {
        for (const DataflowEdge& e : w.edges) {
          for (const std::string& label : e.labels) {
            if (label.find(';') != std::string::npos) {
              return Status::InvalidArgument(
                  "edge label contains the list separator ';': " + label);
            }
          }
        }
      }
      for (const Module& m : spec.modules()) {
        for (const std::string& keyword : m.keywords) {
          if (keyword.find(';') != std::string::npos) {
            return Status::InvalidArgument(
                "module keyword contains the list separator ';': " +
                keyword);
          }
        }
      }
    }
    auto decoded =
        binary ? DecodeSpecPayloadV2(payload) : DecodeSpecPayload(payload);
    PAW_RETURN_NOT_OK(decoded.status());
    const std::string reencoded =
        binary ? EncodeSpecPayloadV2(decoded.value().spec,
                                     decoded.value().policy)
               : EncodeSpecPayload(decoded.value().spec,
                                   decoded.value().policy);
    if (reencoded != payload) {
      return Status::InvalidArgument(
          std::string("specification does not survive the ") +
          std::string(PayloadCodecName(options_.codec)) +
          " format round-trip");
    }
  }
  PAW_ASSIGN_OR_RETURN(
      const uint64_t record_lsn,
      wal_.Append(binary ? RecordType::kSpecV2 : RecordType::kSpec,
                  payload));
  auto id = repo_.AddSpecification(std::move(spec), std::move(policy));
  if (!id.ok()) {
    return Status::Internal("logged spec failed to apply: " +
                            id.status().message());
  }
  repo_.SetSpecPersist(id.value(),
                       MakePersistMeta(record_lsn, payload, "wal"));
  PAW_RETURN_NOT_OK(MaybeAutoCompact());
  return id;
}

Result<ExecutionId> PersistentRepository::AddExecution(int spec_id,
                                                       Execution exec) {
  if (spec_id < 0 || spec_id >= repo_.num_specs()) {
    return Status::NotFound("unknown spec id");
  }
  if (&exec.spec() != &repo_.entry(spec_id).spec) {
    return Status::InvalidArgument(
        "execution does not belong to the given specification");
  }
  const bool binary = options_.codec == PayloadCodec::kBinary;
  const std::string payload = binary
                                  ? EncodeExecutionPayloadV2(spec_id, exec)
                                  : EncodeExecutionPayload(spec_id, exec);
  // Round-trip verify (see AddSpecification): e.g. an item value
  // holding a raw newline would break the line-oriented text payload.
  if (options_.verify_payloads) {
    if (binary) {
      auto replayed =
          DecodeExecutionPayloadV2(payload, repo_.entry(spec_id).spec);
      PAW_RETURN_NOT_OK(replayed.status());
      if (EncodeExecutionPayloadV2(spec_id, replayed.value()) != payload) {
        return Status::InvalidArgument(
            "execution does not survive the binary format round-trip");
      }
    } else {
      PAW_ASSIGN_OR_RETURN(DecodedExecutionText decoded,
                           DecodeExecutionPayload(payload));
      auto replayed =
          ParseExecution(decoded.exec_text, repo_.entry(spec_id).spec);
      PAW_RETURN_NOT_OK(replayed.status());
      if (SerializeExecution(replayed.value()) != decoded.exec_text) {
        return Status::InvalidArgument(
            "execution does not survive the text format round-trip");
      }
    }
  }
  PAW_ASSIGN_OR_RETURN(
      const uint64_t record_lsn,
      wal_.Append(binary ? RecordType::kExecutionV2 : RecordType::kExecution,
                  payload));
  auto id = repo_.AddExecution(spec_id, std::move(exec));
  if (!id.ok()) {
    return Status::Internal("logged execution failed to apply: " +
                            id.status().message());
  }
  repo_.SetExecutionPersist(
      id.value(), MakePersistMeta(record_lsn, payload, "wal"));
  PAW_RETURN_NOT_OK(MaybeAutoCompact());
  return id;
}

Result<uint64_t> PersistentRepository::ApplyReplicated(
    RecordType type, std::string_view payload) {
  // Only data records travel the replication stream; headers are
  // per-segment framing each side generates for itself.
  if (type != RecordType::kSpec && type != RecordType::kSpecV2 &&
      type != RecordType::kExecution && type != RecordType::kExecutionV2) {
    return Status::InvalidArgument(
        "replicated record has non-data type " +
        std::to_string(static_cast<int>(type)));
  }
  // WAL before memory, like every write path. A record that applied on
  // the leader applies on a follower whose prefix matches (replay is
  // deterministic); a failure here means divergence, which poisons the
  // subscription rather than guessing.
  Record record;
  record.type = type;
  record.payload.assign(payload);
  PAW_ASSIGN_OR_RETURN(const uint64_t record_lsn,
                       wal_.Append(type, payload));
  Status applied = ApplyRecord(record, &repo_);
  if (!applied.ok()) {
    return Status::Internal("replicated record failed to apply: " +
                            applied.message());
  }
  if (type == RecordType::kSpec || type == RecordType::kSpecV2) {
    repo_.SetSpecPersist(repo_.num_specs() - 1,
                         MakePersistMeta(record_lsn, payload, "wal"));
  } else {
    repo_.SetExecutionPersist(
        ExecutionId(repo_.num_executions() - 1),
        MakePersistMeta(record_lsn, payload, "wal"));
  }
  PAW_RETURN_NOT_OK(MaybeAutoCompact());
  return record_lsn;
}

Result<PersistentRepository::CompactJob>
PersistentRepository::PrepareCompaction() {
  // The rotation cut: everything logged so far is sealed (and durable
  // — Rotate fsyncs before the new segment exists); appends from here
  // on land in the fresh active segment and stay out of the snapshot.
  PAW_ASSIGN_OR_RETURN(WalRotation rotation, wal_.Rotate());
  CompactJob job;
  job.dir = dir_;
  job.codec = options_.codec;
  // Pin the covered prefix: entry pointers are stable and entries
  // immutable once inserted, so this view stays consistent while the
  // writer keeps appending behind it.
  job.view = repo_.View();
  job.covered = rotation.end_lsn;
  job.keep_seq = rotation.active_seq;
  job.hook = options_.compaction_hook;
  return job;
}

Status PersistentRepository::ExecuteCompactionJob(const CompactJob& job,
                                                  CompactState* state) {
  // Compaction phases are always recorded (no sampling gate):
  // compactions are rare and each one is worth explaining. An inline
  // COMPACT joins the request's trace; a background auto-compaction
  // roots a trace of its own.
  TraceContext trace_ctx = CurrentTraceContext();
  if (!trace_ctx.valid()) {
    trace_ctx.trace_id = TraceRecorder::Global().NewTraceId();
  }
  const auto phase_span = [&trace_ctx](std::string_view name,
                                       int64_t start_us) {
    Span s;
    s.trace_id = trace_ctx.trace_id;
    s.span_id = TraceRecorder::Global().NewSpanId();
    s.parent_span_id = trace_ctx.span_id;
    s.start_us = start_us;
    s.end_us = TraceNowMicros();
    s.set_name(name);
    TraceRecorder::Global().Record(s);
  };
  int64_t phase_start = TraceNowMicros();
  if (job.hook) job.hook(CompactionPhase::kSnapshot);
  Timer phase_timer;
  // Snapshot records are re-encoded with the configured codec, so
  // compacting is also how a v1 store's records upgrade to binary.
  PAW_RETURN_NOT_OK(
      WriteSnapshot(job.dir, job.view, job.covered, job.codec).status());
  CompactionPhaseSeconds(CompactionPhase::kSnapshot)
      .Observe(phase_timer.ElapsedMicros() / 1e6);
  phase_span("compact.snapshot", phase_start);
  phase_start = TraceNowMicros();
  if (job.hook) job.hook(CompactionPhase::kInstall);
  phase_timer.Reset();
  // The manifest bump is the commit point of segment deletion: after
  // it, recovery reclaims segments below keep_seq; before it, they are
  // still live (and merely redundant with the snapshot).
  PAW_RETURN_NOT_OK(WriteWalManifest(job.dir, job.keep_seq));
  CompactionPhaseSeconds(CompactionPhase::kInstall)
      .Observe(phase_timer.ElapsedMicros() / 1e6);
  phase_span("compact.install", phase_start);
  phase_start = TraceNowMicros();
  if (job.hook) job.hook(CompactionPhase::kCleanup);
  phase_timer.Reset();
  // Unlink oldest-first so any crash leaves a contiguous segment
  // suffix; stragglers are reclaimed on the next open anyway. Segments
  // at or above the retention floor stay on disk — a replication
  // subscriber's checkpoint still references them (read fresh here,
  // not at the cut: a subscriber may attach mid-compaction).
  PAW_ASSIGN_OR_RETURN(const uint64_t retain_floor,
                       ReadWalRetainFloor(job.dir));
  PAW_ASSIGN_OR_RETURN(std::vector<WalSegmentFile> segments,
                       ListWalSegments(job.dir));
  for (const WalSegmentFile& segment : segments) {
    if (segment.seq < job.keep_seq && segment.seq < retain_floor) {
      PAW_RETURN_NOT_OK(RemoveFileIfExists(segment.path));
    }
  }
  PAW_RETURN_NOT_OK(RemoveSnapshotsBefore(job.dir, job.covered));
  CompactionPhaseSeconds(CompactionPhase::kCleanup)
      .Observe(phase_timer.ElapsedMicros() / 1e6);
  phase_span("compact.cleanup", phase_start);
  // Publish coverage before the kDone hook so observers released by it
  // already see the new snapshot LSN.
  state->snapshot_lsn.store(job.covered, std::memory_order_release);
  state->installed_seq.store(job.keep_seq, std::memory_order_release);
  CompactionsTotal().Add();
  if (job.hook) job.hook(CompactionPhase::kDone);
  return Status::OK();
}

Status PersistentRepository::Compact() {
  // Join any background compaction first; this inline one supersedes
  // its result.
  (void)WaitForCompaction();
  CompactState* state = state_.get();
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->running = true;
  }
  auto job = PrepareCompaction();
  const Status result =
      job.ok() ? ExecuteCompactionJob(job.value(), state) : job.status();
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->running = false;
    state->last = result;
  }
  state->cv.notify_all();
  return result;
}

Status PersistentRepository::CompactAsync() {
  CompactState* state = state_.get();
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->running) return Status::OK();  // already in flight
    state->running = true;
  }
  auto job = PrepareCompaction();
  if (!job.ok()) {
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->running = false;
      state->last = job.status();
    }
    state->cv.notify_all();
    return job.status();
  }
  if (state->worker == nullptr) {
    state->worker = std::make_unique<ThreadPool>(1);
  }
  // The task owns a self-contained job plus the heap-pinned state; it
  // never touches the (movable) store object.
  state->worker->Submit([job = std::move(job).value(), state]() {
    const Status result = ExecuteCompactionJob(job, state);
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->running = false;
      state->last = result;
    }
    state->cv.notify_all();
  });
  return Status::OK();
}

Status PersistentRepository::WaitForCompaction() {
  CompactState* state = state_.get();
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [state] { return !state->running; });
  return state->last;
}

bool PersistentRepository::compaction_running() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->running;
}

uint64_t PersistentRepository::snapshot_lsn() const {
  return state_->snapshot_lsn.load(std::memory_order_acquire);
}

Status PersistentRepository::Sync() { return wal_.Sync(); }

Status PersistentRepository::MaybeAutoCompact() {
  const bool records_due =
      options_.snapshot_every > 0 &&
      records_since_snapshot() >= options_.snapshot_every;
  if (options_.background_compaction) {
    // Size-based rotations also count: fold sealed segments into a
    // snapshot as soon as they appear, without stalling the writer.
    const bool segments_due =
        options_.segment_bytes > 0 &&
        wal_.active_seq() >
            state_->installed_seq.load(std::memory_order_acquire);
    if (!records_due && !segments_due) return Status::OK();
    return CompactAsync();
  }
  if (!records_due) return Status::OK();
  return Compact();
}

}  // namespace paw

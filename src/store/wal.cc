#include "src/store/wal.h"

namespace paw {

Result<WriteAheadLog> WriteAheadLog::Create(const std::string& path,
                                            uint64_t base_lsn,
                                            Options options) {
  std::string header_payload;
  PutFixed64(&header_payload, base_lsn);
  std::string frame;
  AppendRecord(RecordType::kWalHeader, header_payload, &frame);
  // Temp-write + rename: replacing an existing log (compaction) leaves
  // either the old log or the new header-only log, never a hybrid.
  PAW_RETURN_NOT_OK(AtomicWriteFile(path, frame));
  PAW_ASSIGN_OR_RETURN(AppendOnlyFile file, AppendOnlyFile::Open(path));
  return WriteAheadLog(std::move(file), base_lsn, base_lsn, options);
}

Result<WriteAheadLog> WriteAheadLog::Open(const std::string& path,
                                          WalReplay* replay,
                                          Options options) {
  PAW_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  RecordReader reader(contents);
  Record record;
  ReadOutcome outcome = reader.Next(&record);
  if (outcome != ReadOutcome::kRecord ||
      record.type != RecordType::kWalHeader) {
    return Status::FailedPrecondition("not a WAL file: " + path);
  }
  {
    size_t pos = 0;
    uint64_t base = 0;
    if (!GetFixed64(record.payload, &pos, &base) ||
        pos != record.payload.size()) {
      return Status::FailedPrecondition("corrupt WAL header: " + path);
    }
    replay->base_lsn = base;
  }
  replay->records.clear();
  replay->torn_tail = false;
  replay->dropped_bytes = 0;
  replay->tail_error.clear();
  while ((outcome = reader.Next(&record)) == ReadOutcome::kRecord) {
    replay->records.push_back(std::move(record));
  }
  if (outcome == ReadOutcome::kTornTail) {
    replay->torn_tail = true;
    replay->dropped_bytes = reader.dropped_bytes();
    replay->tail_error = reader.tail_error();
    // Repair: drop the tail so the next append starts a clean frame.
    PAW_RETURN_NOT_OK(
        TruncateFile(path, static_cast<int64_t>(reader.valid_bytes())));
  }
  PAW_ASSIGN_OR_RETURN(AppendOnlyFile file, AppendOnlyFile::Open(path));
  const uint64_t last = replay->base_lsn + replay->records.size();
  return WriteAheadLog(std::move(file), replay->base_lsn, last, options);
}

Result<uint64_t> WriteAheadLog::Append(RecordType type,
                                       std::string_view payload) {
  // A frame longer than kMaxPayloadLen would be written fine but
  // rejected as "implausible" on replay, deleting it (and everything
  // after it) via torn-tail repair — refuse it up front instead.
  if (payload.size() > kMaxPayloadLen) {
    return Status::InvalidArgument(
        "record payload too large: " + std::to_string(payload.size()) +
        " bytes (max " + std::to_string(kMaxPayloadLen) + ")");
  }
  std::string frame;
  frame.reserve(kRecordHeaderSize + payload.size());
  AppendRecord(type, payload, &frame);

  Rep* r = rep_.get();
  std::unique_lock<std::mutex> lock(r->mu);
  if (!r->error.ok()) return r->error;
  // Stage the frame and note which commit group it belongs to. LSNs
  // are assigned in staging order == buffer order == file order.
  const uint64_t lsn =
      r->last_lsn.fetch_add(1, std::memory_order_acq_rel) + 1;
  r->pending += frame;
  const uint64_t my_seq = r->next_batch_seq;

  while (r->committed_seq < my_seq) {
    if (!r->error.ok()) return r->error;
    if (!r->writer_active) {
      // Become the leader: take everything staged so far (our frame
      // plus any concurrent arrivals) and commit it as one batch.
      r->writer_active = true;
      const uint64_t batch_seq = r->next_batch_seq++;
      std::string batch;
      batch.swap(r->pending);
      lock.unlock();
      Status s = r->file.Append(batch);
      if (s.ok()) {
        s = r->options.sync_each_append ? r->file.Sync() : r->file.Flush();
      }
      lock.lock();
      r->writer_active = false;
      if (!s.ok()) {
        r->error = s;
        r->cv.notify_all();
        return s;
      }
      r->committed_seq = batch_seq;
      r->size_bytes.fetch_add(static_cast<int64_t>(batch.size()),
                              std::memory_order_acq_rel);
      r->cv.notify_all();
    } else {
      r->cv.wait(lock);
    }
  }
  return lsn;
}

Status WriteAheadLog::Sync() {
  Rep* r = rep_.get();
  std::unique_lock<std::mutex> lock(r->mu);
  if (!r->error.ok()) return r->error;
  // Take the writer slot; flush any staged frames (their appenders are
  // followers of this batch) and fsync in one go.
  while (r->writer_active) {
    r->cv.wait(lock);
    if (!r->error.ok()) return r->error;
  }
  r->writer_active = true;
  const bool have_batch = !r->pending.empty();
  const uint64_t batch_seq = have_batch ? r->next_batch_seq++ : 0;
  std::string batch;
  batch.swap(r->pending);
  lock.unlock();
  Status s = have_batch ? r->file.Append(batch) : Status::OK();
  if (s.ok()) s = r->file.Sync();
  lock.lock();
  r->writer_active = false;
  if (!s.ok()) {
    r->error = s;
    r->cv.notify_all();
    return s;
  }
  if (have_batch) {
    r->committed_seq = batch_seq;
    r->size_bytes.fetch_add(static_cast<int64_t>(batch.size()),
                            std::memory_order_acq_rel);
  }
  r->cv.notify_all();
  return s;
}

}  // namespace paw

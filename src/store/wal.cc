#include "src/store/wal.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "src/common/metrics.h"
#include "src/common/timer.h"

namespace paw {
namespace {

Counter& WalAppendsTotal() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("paw_wal_appends_total");
  return c;
}

Counter& WalRotationsTotal() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("paw_wal_rotations_total");
  return c;
}

/// Bytes copied into the staging buffer *while holding the group-commit
/// mutex* (`pending += frame`). The remaining per-append cost the
/// writer-queue work left on the table — bench_store's E10f derives a
/// copy-cost line from this so the "measure before optimizing" question
/// has numbers.
Counter& WalFrameStageCopyBytesTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "paw_wal_frame_stage_copy_bytes_total");
  return c;
}

/// Records per committed group-commit batch: 1, 2, 4, ... 32768.
Histogram& WalBatchRecords() {
  static Histogram& h = MetricsRegistry::Global().GetHistogram(
      "paw_wal_batch_records", /*first_bound=*/1, /*growth=*/2,
      /*num_buckets=*/16);
  return h;
}

Histogram& WalFsyncSeconds() {
  static Histogram& h =
      MetricsRegistry::Global().GetLatencyHistogram("paw_wal_fsync_seconds");
  return h;
}

/// fdatasync with its duration observed into the fsync histogram (and,
/// when the committing thread serves a sampled trace, recorded as a
/// `wal.fsync` span — the group-commit leader syncs on behalf of the
/// whole batch, so the span lands in the leading request's trace).
Status TimedSync(AppendOnlyFile* file) {
  ScopedSpan span("wal.fsync");
  Timer timer;
  Status s = file->Sync();
  WalFsyncSeconds().Observe(timer.ElapsedMicros() / 1e6);
  return s;
}

constexpr std::string_view kManifestName = "PAWWAL";
constexpr std::string_view kManifestMagic = "pawwal 1";
constexpr std::string_view kRetainFloorName = "PAWREPL";
constexpr std::string_view kRetainFloorMagic = "pawrepl 1";
constexpr std::string_view kSegmentPrefix = "wal-";
constexpr std::string_view kSegmentSuffix = ".log";
constexpr size_t kSegmentSeqDigits = 8;
/// Pre-segmentation layout: one `wal.log`, upgraded in place on Open.
constexpr std::string_view kLegacyName = "wal.log";

std::string ManifestPath(const std::string& dir) {
  return dir + "/" + std::string(kManifestName);
}

std::string RetainFloorPath(const std::string& dir) {
  return dir + "/" + std::string(kRetainFloorName);
}

/// Parses "wal-<seq>.log" into its seq; false otherwise. Seqs are
/// zero-padded to 8 digits but snprintf widens past 99,999,999, so
/// accept 8..19 digits — a store that rotates past 1e8 segments must
/// not have its newer segments become invisible to recovery.
bool ParseSegmentName(const std::string& name, uint64_t* seq) {
  const size_t overhead = kSegmentPrefix.size() + kSegmentSuffix.size();
  if (name.size() < overhead + kSegmentSeqDigits ||
      name.size() > overhead + 19) {
    return false;
  }
  if (name.compare(0, kSegmentPrefix.size(), kSegmentPrefix) != 0) {
    return false;
  }
  if (name.compare(name.size() - kSegmentSuffix.size(),
                   kSegmentSuffix.size(), kSegmentSuffix) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = kSegmentPrefix.size();
       i < name.size() - kSegmentSuffix.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  if (value == 0) return false;  // seqs start at 1
  *seq = value;
  return true;
}

/// The header-only contents a fresh segment starts with.
std::string SegmentHeaderFrame(uint64_t base_lsn) {
  std::string payload;
  PutFixed64(&payload, base_lsn);
  std::string frame;
  AppendRecord(RecordType::kWalHeader, payload, &frame);
  return frame;
}

/// Creates `wal-<seq>.log` with base `base_lsn` (atomically) and opens
/// it for append.
Result<AppendOnlyFile> CreateSegment(const std::string& dir, uint64_t seq,
                                     uint64_t base_lsn) {
  const std::string path = dir + "/" + WalSegmentFileName(seq);
  // Temp-write + rename: a crash leaves either no segment or a whole
  // header-only segment, never a torn header.
  PAW_RETURN_NOT_OK(AtomicWriteFile(path, SegmentHeaderFrame(base_lsn)));
  return AppendOnlyFile::Open(path);
}

/// Parses a segment file's header record; returns its base LSN and
/// positions `reader` past the header.
Result<uint64_t> ReadSegmentHeader(RecordReader* reader,
                                   const std::string& path) {
  Record record;
  if (reader->Next(&record) != ReadOutcome::kRecord ||
      record.type != RecordType::kWalHeader) {
    return Status::FailedPrecondition("not a WAL segment: " + path);
  }
  size_t pos = 0;
  uint64_t base = 0;
  if (!GetFixed64(record.payload, &pos, &base) ||
      pos != record.payload.size()) {
    return Status::FailedPrecondition("corrupt WAL segment header: " + path);
  }
  return base;
}

}  // namespace

std::string WalSegmentFileName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%08llu.log",
                static_cast<unsigned long long>(seq));
  return buf;
}

Result<std::vector<WalSegmentFile>> ListWalSegments(const std::string& dir) {
  PAW_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDir(dir));
  std::vector<WalSegmentFile> out;
  for (const std::string& name : names) {
    uint64_t seq = 0;
    if (!ParseSegmentName(name, &seq)) continue;
    out.push_back({seq, dir + "/" + name});
  }
  std::sort(out.begin(), out.end(),
            [](const WalSegmentFile& a, const WalSegmentFile& b) {
              return a.seq < b.seq;
            });
  return out;
}

Result<uint64_t> ReadWalManifest(const std::string& dir) {
  auto contents = ReadFileToString(ManifestPath(dir));
  if (!contents.ok()) {
    return Status::NotFound(dir + " has no " + std::string(kManifestName) +
                            " manifest");
  }
  // Strict parse: the manifest gates segment deletion, so junk is
  // corruption, not something to guess around.
  const std::string& text = contents.value();
  const std::string expect_prefix = std::string(kManifestMagic) + "\nfirst=";
  if (text.compare(0, expect_prefix.size(), expect_prefix) != 0) {
    return Status::FailedPrecondition("corrupt WAL manifest in " + dir);
  }
  const std::string value =
      text.substr(expect_prefix.size(),
                  text.size() - expect_prefix.size() -
                      (text.back() == '\n' ? 1 : 0));
  if (value.empty()) {
    return Status::FailedPrecondition("corrupt WAL manifest in " + dir);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (errno != 0 || end != value.c_str() + value.size() || parsed == 0) {
    return Status::FailedPrecondition("bad WAL manifest first= in " + dir);
  }
  return static_cast<uint64_t>(parsed);
}

Status WriteWalManifest(const std::string& dir, uint64_t first_seq) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s\nfirst=%llu\n",
                std::string(kManifestMagic).c_str(),
                static_cast<unsigned long long>(first_seq));
  return AtomicWriteFile(ManifestPath(dir), buf);
}

Result<uint64_t> ReadWalRetainFloor(const std::string& dir) {
  auto contents = ReadFileToString(RetainFloorPath(dir));
  if (!contents.ok()) return WriteAheadLog::kNoRetainFloor;
  // Strict parse, like the manifest: the floor gates segment deletion.
  const std::string& text = contents.value();
  const std::string expect_prefix =
      std::string(kRetainFloorMagic) + "\nfloor=";
  if (text.compare(0, expect_prefix.size(), expect_prefix) != 0) {
    return Status::FailedPrecondition("corrupt WAL retention floor in " +
                                      dir);
  }
  const std::string value =
      text.substr(expect_prefix.size(),
                  text.size() - expect_prefix.size() -
                      (text.back() == '\n' ? 1 : 0));
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || errno != 0 ||
      end != value.c_str() + value.size() || parsed == 0) {
    return Status::FailedPrecondition("bad WAL retention floor= in " + dir);
  }
  return static_cast<uint64_t>(parsed);
}

Status WriteWalRetainFloor(const std::string& dir, uint64_t floor_seq) {
  if (floor_seq == WriteAheadLog::kNoRetainFloor) {
    return RemoveFileIfExists(RetainFloorPath(dir));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s\nfloor=%llu\n",
                std::string(kRetainFloorMagic).c_str(),
                static_cast<unsigned long long>(floor_seq));
  return AtomicWriteFile(RetainFloorPath(dir), buf);
}

Result<WriteAheadLog> WriteAheadLog::Create(const std::string& dir,
                                            uint64_t base_lsn,
                                            Options options) {
  PAW_ASSIGN_OR_RETURN(std::vector<WalSegmentFile> existing,
                       ListWalSegments(dir));
  if (!existing.empty() || PathExists(dir + "/" + std::string(kLegacyName))) {
    return Status::AlreadyExists(dir + " already contains a WAL");
  }
  // Segment before manifest: Open reconstructs a missing manifest from
  // the segment files, but a manifest without segments is an error.
  PAW_ASSIGN_OR_RETURN(AppendOnlyFile file,
                       CreateSegment(dir, /*seq=*/1, base_lsn));
  PAW_RETURN_NOT_OK(WriteWalManifest(dir, /*first_seq=*/1));
  return WriteAheadLog(std::move(file), dir, /*seq=*/1, base_lsn, base_lsn,
                       options);
}

Result<WriteAheadLog> WriteAheadLog::Open(const std::string& dir,
                                          WalReplay* replay,
                                          Options options) {
  *replay = WalReplay{};

  PAW_ASSIGN_OR_RETURN(std::vector<WalSegmentFile> segments,
                       ListWalSegments(dir));
  const std::string legacy_path = dir + "/" + std::string(kLegacyName);
  if (PathExists(legacy_path)) {
    if (!segments.empty()) {
      // Only external interference can produce this mix (the upgrade
      // rename is atomic); picking either side could drop records.
      return Status::FailedPrecondition(
          dir + " holds both a legacy wal.log and WAL segments");
    }
    PAW_RETURN_NOT_OK(
        RenameFile(legacy_path, dir + "/" + WalSegmentFileName(1)));
    segments.push_back({1, dir + "/" + WalSegmentFileName(1)});
    replay->legacy_upgraded = true;
  }
  if (segments.empty()) {
    return Status::NotFound("no WAL in " + dir);
  }

  uint64_t first = 0;
  auto manifest = ReadWalManifest(dir);
  if (manifest.ok()) {
    first = manifest.value();
  } else if (manifest.status().IsNotFound()) {
    // Crash window of Create / legacy upgrade: reconstruct and heal.
    first = segments.front().seq;
    PAW_RETURN_NOT_OK(WriteWalManifest(dir, first));
  } else {
    return manifest.status();
  }

  // Reclaim segments a finished compaction already logically deleted
  // (crash between the manifest bump and the unlinks) — except those
  // the retention floor pins for a replication subscriber, which stay
  // on disk (streamable) but out of replay (the snapshot covers them).
  PAW_ASSIGN_OR_RETURN(const uint64_t floor, ReadWalRetainFloor(dir));
  size_t keep_from = 0;
  while (keep_from < segments.size() && segments[keep_from].seq < first) {
    if (segments[keep_from].seq >= floor) {
      ++replay->retained_segments;
    } else {
      PAW_RETURN_NOT_OK(RemoveFileIfExists(segments[keep_from].path));
      ++replay->stale_segments_removed;
    }
    ++keep_from;
  }
  segments.erase(segments.begin(),
                 segments.begin() + static_cast<ptrdiff_t>(keep_from));
  if (segments.empty()) {
    return Status::FailedPrecondition(
        dir + ": WAL manifest names segment " + std::to_string(first) +
        " but no segment at or past it exists");
  }
  // Seqs must be contiguous from `first`: a hole means a live segment
  // was deleted out from under the store.
  for (size_t i = 0; i < segments.size(); ++i) {
    if (segments[i].seq != first + i) {
      return Status::FailedPrecondition(
          dir + ": missing WAL segment " +
          WalSegmentFileName(first + i));
    }
  }

  // Replay in seq order, verifying the base-LSN chain. Damage in a
  // *sealed* segment (fsync'd at seal, so never a plain crash
  // artifact) is repaired to the clean prefix: everything from the
  // damage on — including every later segment — is dropped, never
  // spliced over the hole.
  uint64_t running_end = 0;
  uint64_t active_base = 0;
  size_t active_index = segments.size() - 1;

  // Deletes segments[j0..] and accounts their contents as dropped.
  auto drop_segments_from = [&](size_t j0) -> Status {
    for (size_t j = j0; j < segments.size(); ++j) {
      auto lost = ReadFileToString(segments[j].path);
      if (lost.ok()) {
        replay->dropped_bytes += lost.value().size();
        RecordReader lost_reader(lost.value());
        Record lost_record;
        uint64_t seg_records = 0;
        while (lost_reader.Next(&lost_record) == ReadOutcome::kRecord) {
          ++seg_records;
        }
        // The segment's own kWalHeader is framing, not data.
        replay->dropped_records += seg_records > 0 ? seg_records - 1 : 0;
      }
      PAW_RETURN_NOT_OK(RemoveFileIfExists(segments[j].path));
    }
    return Status::OK();
  };

  for (size_t i = 0; i < segments.size(); ++i) {
    const WalSegmentFile& seg = segments[i];
    PAW_ASSIGN_OR_RETURN(std::string contents,
                         ReadFileToString(seg.path));
    RecordReader reader(contents);
    PAW_ASSIGN_OR_RETURN(const uint64_t base,
                         ReadSegmentHeader(&reader, seg.path));
    if (i == 0) {
      replay->base_lsn = base;
      running_end = base;
    } else if (base < running_end) {
      // Overlapping LSNs cannot come from any crash ordering: refuse
      // rather than guess which copy of a record is real.
      return Status::FailedPrecondition(
          seg.path + ": segment chain overlap (base " +
          std::to_string(base) + ", already replayed through " +
          std::to_string(running_end) + ")");
    } else if (base > running_end) {
      // Gap: the tail of the previous (sealed) segment is missing —
      // e.g. truncation that happened to land on a record boundary.
      // Clean prefix: drop this segment and everything after it.
      replay->torn_tail = true;
      replay->tail_error =
          seg.path + ": segment chain gap (base " + std::to_string(base) +
          ", previous segment ends at " + std::to_string(running_end) +
          "); dropping this and later segments";
      PAW_RETURN_NOT_OK(drop_segments_from(i));
      active_index = i - 1;
      break;
    }
    active_base = base;
    Record record;
    ReadOutcome outcome;
    while ((outcome = reader.Next(&record)) == ReadOutcome::kRecord) {
      replay->records.push_back(std::move(record));
      ++running_end;
    }
    if (outcome != ReadOutcome::kTornTail) continue;

    replay->torn_tail = true;
    replay->dropped_bytes += reader.dropped_bytes();
    replay->tail_error = reader.tail_error();
    // Repair: drop the tail so the next append starts a clean frame.
    PAW_RETURN_NOT_OK(TruncateFile(
        seg.path, static_cast<int64_t>(reader.valid_bytes())));
    if (i + 1 < segments.size()) {
      replay->tail_error =
          seg.path + ": " + replay->tail_error +
          " (torn sealed segment; dropping later segments)";
      PAW_RETURN_NOT_OK(drop_segments_from(i + 1));
    }
    active_index = i;
    break;
  }
  segments.resize(active_index + 1);

  replay->segments = static_cast<int>(segments.size());
  replay->first_seq = first;

  const WalSegmentFile& active = segments.back();
  PAW_ASSIGN_OR_RETURN(AppendOnlyFile file,
                       AppendOnlyFile::Open(active.path));
  WriteAheadLog log(std::move(file), dir, active.seq, active_base,
                    running_end, options);
  log.rep_->retain_floor.store(floor, std::memory_order_release);
  return log;
}

Result<uint64_t> WriteAheadLog::Append(RecordType type,
                                       std::string_view payload) {
  // A frame longer than kMaxPayloadLen would be written fine but
  // rejected as "implausible" on replay, deleting it (and everything
  // after it) via torn-tail repair — refuse it up front instead.
  if (payload.size() > kMaxPayloadLen) {
    return Status::InvalidArgument(
        "record payload too large: " + std::to_string(payload.size()) +
        " bytes (max " + std::to_string(kMaxPayloadLen) + ")");
  }
  std::string frame;
  frame.reserve(kRecordHeaderSize + payload.size());
  AppendRecord(type, payload, &frame);

  Rep* r = rep_.get();
  std::unique_lock<std::mutex> lock(r->mu);
  if (!r->error.ok()) return r->error;
  // Stage the frame and note which commit group it belongs to. LSNs
  // are assigned in staging order == buffer order == file order.
  const uint64_t lsn =
      r->last_lsn.fetch_add(1, std::memory_order_acq_rel) + 1;
  r->pending += frame;
  ++r->pending_records;
  r->pending_traces.push_back(CurrentTraceContext());
  WalAppendsTotal().Add();
  WalFrameStageCopyBytesTotal().Add(frame.size());
  const uint64_t my_seq = r->next_batch_seq;

  while (r->committed_seq < my_seq) {
    if (!r->error.ok()) return r->error;
    if (!r->writer_active) {
      // Become the leader: take everything staged so far (our frame
      // plus any concurrent arrivals) and commit it as one batch.
      r->writer_active = true;
      const uint64_t batch_seq = r->next_batch_seq++;
      // Every staged frame is in `pending`, so the last assigned LSN
      // is exactly the end of the batch being cut.
      const uint64_t batch_end_lsn =
          r->last_lsn.load(std::memory_order_relaxed);
      std::string batch;
      batch.swap(r->pending);
      const uint64_t batch_records = r->pending_records;
      r->pending_records = 0;
      std::vector<TraceContext> batch_traces;
      batch_traces.swap(r->pending_traces);
      CommitSink sink = r->commit_sink;
      lock.unlock();
      WalBatchRecords().Observe(static_cast<double>(batch_records));
      Status s = r->file.Append(batch);
      if (s.ok()) {
        s = r->options.sync_each_append ? TimedSync(&r->file)
                                        : r->file.Flush();
      }
      // Fork the batch to replication only once it is on disk: a sunk
      // record is never less durable on the leader than advertised.
      if (s.ok() && sink) {
        sink(batch_end_lsn - batch_records + 1, batch_records, batch,
             batch_traces);
      }
      lock.lock();
      if (!s.ok()) {
        r->writer_active = false;
        r->error = s;
        r->cv.notify_all();
        return s;
      }
      r->committed_seq = batch_seq;
      r->committed_lsn = batch_end_lsn;
      r->size_bytes.fetch_add(static_cast<int64_t>(batch.size()),
                              std::memory_order_acq_rel);
      // Size-based rotation: seal while still holding the writer slot,
      // so frames staged by concurrent appenders (which belong to the
      // *next* batch) land in the fresh segment.
      if (r->options.segment_bytes > 0 &&
          static_cast<uint64_t>(
              r->size_bytes.load(std::memory_order_relaxed)) >=
              r->options.segment_bytes) {
        // The caller's record is already committed; a rotation failure
        // poisons the log for *future* ops but this append succeeded.
        (void)RotateLocked(lock);
      }
      r->writer_active = false;
      r->cv.notify_all();
    } else {
      r->cv.wait(lock);
    }
  }
  return lsn;
}

Status WriteAheadLog::Sync() {
  Rep* r = rep_.get();
  std::unique_lock<std::mutex> lock(r->mu);
  if (!r->error.ok()) return r->error;
  // Take the writer slot; flush any staged frames (their appenders are
  // followers of this batch) and fsync in one go.
  while (r->writer_active) {
    r->cv.wait(lock);
    if (!r->error.ok()) return r->error;
  }
  r->writer_active = true;
  const bool have_batch = !r->pending.empty();
  const uint64_t batch_seq = have_batch ? r->next_batch_seq++ : 0;
  const uint64_t batch_end_lsn =
      r->last_lsn.load(std::memory_order_relaxed);
  std::string batch;
  batch.swap(r->pending);
  const uint64_t batch_records = r->pending_records;
  r->pending_records = 0;
  std::vector<TraceContext> batch_traces;
  batch_traces.swap(r->pending_traces);
  CommitSink sink = r->commit_sink;
  lock.unlock();
  if (have_batch) {
    WalBatchRecords().Observe(static_cast<double>(batch_records));
  }
  Status s = have_batch ? r->file.Append(batch) : Status::OK();
  if (s.ok()) s = TimedSync(&r->file);
  if (s.ok() && have_batch && sink) {
    sink(batch_end_lsn - batch_records + 1, batch_records, batch,
         batch_traces);
  }
  lock.lock();
  r->writer_active = false;
  if (!s.ok()) {
    r->error = s;
    r->cv.notify_all();
    return s;
  }
  if (have_batch) {
    r->committed_seq = batch_seq;
    r->committed_lsn = batch_end_lsn;
    r->size_bytes.fetch_add(static_cast<int64_t>(batch.size()),
                            std::memory_order_acq_rel);
  }
  r->cv.notify_all();
  return s;
}

void WriteAheadLog::SetCommitSink(CommitSink sink) {
  Rep* r = rep_.get();
  std::lock_guard<std::mutex> lock(r->mu);
  r->commit_sink = std::move(sink);
}

Status WriteAheadLog::SetRetainFloor(uint64_t floor_seq) {
  Rep* r = rep_.get();
  // Own mutex: a floor move (subscriber attach / checkpoint advance)
  // must not stall the group-commit staging path.
  std::lock_guard<std::mutex> lock(r->floor_mu);
  PAW_RETURN_NOT_OK(WriteWalRetainFloor(r->dir, floor_seq));
  r->retain_floor.store(floor_seq, std::memory_order_release);
  return Status::OK();
}

Result<WalRotation> WriteAheadLog::Rotate() {
  Rep* r = rep_.get();
  std::unique_lock<std::mutex> lock(r->mu);
  if (!r->error.ok()) return r->error;
  while (r->writer_active) {
    r->cv.wait(lock);
    if (!r->error.ok()) return r->error;
  }
  r->writer_active = true;
  Status s = RotateLocked(lock);
  r->writer_active = false;
  r->cv.notify_all();
  PAW_RETURN_NOT_OK(s);
  WalRotation rotation;
  rotation.active_seq = r->seq.load(std::memory_order_relaxed);
  rotation.sealed_seq = rotation.active_seq - 1;
  rotation.end_lsn = r->base_lsn.load(std::memory_order_relaxed);
  return rotation;
}

Status WriteAheadLog::RotateLocked(std::unique_lock<std::mutex>& lock) {
  Rep* r = rep_.get();
  // Frames still staged in `pending` belong to batches after this cut;
  // they will be written to the new segment, whose base is exactly the
  // last committed LSN — the chain stays dense.
  const uint64_t end_lsn = r->committed_lsn;
  const uint64_t new_seq = r->seq.load(std::memory_order_relaxed) + 1;
  lock.unlock();
  // Seal: everything in the old segment is durable before the next
  // segment exists, so a torn tail can only ever appear in the active
  // (last) segment — the invariant recovery relies on.
  Status s = TimedSync(&r->file);
  Result<AppendOnlyFile> next = s.ok()
                                    ? CreateSegment(r->dir, new_seq, end_lsn)
                                    : Result<AppendOnlyFile>(s);
  lock.lock();
  if (!next.ok()) {
    r->error = next.status();
    return next.status();
  }
  r->file = std::move(next).value();
  r->seq.store(new_seq, std::memory_order_release);
  r->base_lsn.store(end_lsn, std::memory_order_release);
  r->size_bytes.store(r->file.size(), std::memory_order_release);
  WalRotationsTotal().Add();
  return Status::OK();
}

}  // namespace paw

#include "src/store/wal.h"

namespace paw {

Result<WriteAheadLog> WriteAheadLog::Create(const std::string& path,
                                            uint64_t base_lsn,
                                            Options options) {
  std::string header_payload;
  PutFixed64(&header_payload, base_lsn);
  std::string frame;
  AppendRecord(RecordType::kWalHeader, header_payload, &frame);
  // Temp-write + rename: replacing an existing log (compaction) leaves
  // either the old log or the new header-only log, never a hybrid.
  PAW_RETURN_NOT_OK(AtomicWriteFile(path, frame));
  PAW_ASSIGN_OR_RETURN(AppendOnlyFile file, AppendOnlyFile::Open(path));
  return WriteAheadLog(std::move(file), base_lsn, base_lsn, options);
}

Result<WriteAheadLog> WriteAheadLog::Open(const std::string& path,
                                          WalReplay* replay,
                                          Options options) {
  PAW_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  RecordReader reader(contents);
  Record record;
  ReadOutcome outcome = reader.Next(&record);
  if (outcome != ReadOutcome::kRecord ||
      record.type != RecordType::kWalHeader) {
    return Status::FailedPrecondition("not a WAL file: " + path);
  }
  {
    size_t pos = 0;
    uint64_t base = 0;
    if (!GetFixed64(record.payload, &pos, &base) ||
        pos != record.payload.size()) {
      return Status::FailedPrecondition("corrupt WAL header: " + path);
    }
    replay->base_lsn = base;
  }
  replay->records.clear();
  replay->torn_tail = false;
  replay->dropped_bytes = 0;
  replay->tail_error.clear();
  while ((outcome = reader.Next(&record)) == ReadOutcome::kRecord) {
    replay->records.push_back(std::move(record));
  }
  if (outcome == ReadOutcome::kTornTail) {
    replay->torn_tail = true;
    replay->dropped_bytes = reader.dropped_bytes();
    replay->tail_error = reader.tail_error();
    // Repair: drop the tail so the next append starts a clean frame.
    PAW_RETURN_NOT_OK(
        TruncateFile(path, static_cast<int64_t>(reader.valid_bytes())));
  }
  PAW_ASSIGN_OR_RETURN(AppendOnlyFile file, AppendOnlyFile::Open(path));
  const uint64_t last = replay->base_lsn + replay->records.size();
  return WriteAheadLog(std::move(file), replay->base_lsn, last, options);
}

Status WriteAheadLog::Append(RecordType type, std::string_view payload) {
  // A frame longer than kMaxPayloadLen would be written fine but
  // rejected as "implausible" on replay, deleting it (and everything
  // after it) via torn-tail repair — refuse it up front instead.
  if (payload.size() > kMaxPayloadLen) {
    return Status::InvalidArgument(
        "record payload too large: " + std::to_string(payload.size()) +
        " bytes (max " + std::to_string(kMaxPayloadLen) + ")");
  }
  std::string frame;
  frame.reserve(kRecordHeaderSize + payload.size());
  AppendRecord(type, payload, &frame);
  PAW_RETURN_NOT_OK(file_.Append(frame));
  if (options_.sync_each_append) {
    PAW_RETURN_NOT_OK(file_.Sync());
  } else {
    PAW_RETURN_NOT_OK(file_.Flush());
  }
  ++last_lsn_;
  return Status::OK();
}

Status WriteAheadLog::Sync() { return file_.Sync(); }

}  // namespace paw

#include "src/store/codec.h"

#include "src/common/crc32.h"
#include "src/privacy/policy_text.h"
#include "src/provenance/serialize.h"
#include "src/workflow/serialize.h"

namespace paw {

std::string EncodeSpecPayload(const Specification& spec,
                              const PolicySet& policy) {
  const std::string spec_text = Serialize(spec);
  const std::string policy_text = SerializePolicy(policy);
  std::string out;
  out.reserve(spec_text.size() + policy_text.size() + 8);
  PutFixed32(&out, static_cast<uint32_t>(spec_text.size()));
  out += spec_text;
  PutFixed32(&out, static_cast<uint32_t>(policy_text.size()));
  out += policy_text;
  return out;
}

Result<DecodedSpec> DecodeSpecPayload(std::string_view payload) {
  size_t pos = 0;
  uint32_t spec_len = 0, policy_len = 0;
  std::string_view spec_text, policy_text;
  if (!GetFixed32(payload, &pos, &spec_len) ||
      !GetBytes(payload, &pos, spec_len, &spec_text) ||
      !GetFixed32(payload, &pos, &policy_len) ||
      !GetBytes(payload, &pos, policy_len, &policy_text) ||
      pos != payload.size()) {
    return Status::InvalidArgument("malformed spec payload");
  }
  DecodedSpec out;
  PAW_ASSIGN_OR_RETURN(out.spec,
                       ParseSpecification(std::string(spec_text)));
  PAW_ASSIGN_OR_RETURN(out.policy,
                       ParsePolicy(std::string(policy_text), out.spec));
  return out;
}

std::string EncodeExecutionPayload(int spec_id, const Execution& exec) {
  std::string out;
  PutFixed32(&out, static_cast<uint32_t>(spec_id));
  out += SerializeExecution(exec);
  return out;
}

Status DecodeExecutionPayload(std::string_view payload, int* spec_id,
                              std::string* exec_text) {
  size_t pos = 0;
  uint32_t id = 0;
  if (!GetFixed32(payload, &pos, &id)) {
    return Status::InvalidArgument("malformed execution payload");
  }
  *spec_id = static_cast<int>(id);
  exec_text->assign(payload.substr(pos));
  return Status::OK();
}

Status ApplyRecord(const Record& record, Repository* repo) {
  switch (record.type) {
    case RecordType::kSpec: {
      PAW_ASSIGN_OR_RETURN(DecodedSpec decoded,
                           DecodeSpecPayload(record.payload));
      return repo
          ->AddSpecification(std::move(decoded.spec),
                             std::move(decoded.policy))
          .status();
    }
    case RecordType::kExecution: {
      int spec_id = -1;
      std::string exec_text;
      PAW_RETURN_NOT_OK(
          DecodeExecutionPayload(record.payload, &spec_id, &exec_text));
      if (spec_id < 0 || spec_id >= repo->num_specs()) {
        return Status::InvalidArgument(
            "execution record references unknown spec " +
            std::to_string(spec_id));
      }
      PAW_ASSIGN_OR_RETURN(
          Execution exec,
          ParseExecution(exec_text, repo->entry(spec_id).spec));
      return repo->AddExecution(spec_id, std::move(exec)).status();
    }
    case RecordType::kWalHeader:
    case RecordType::kSnapshotHeader:
      return Status::InvalidArgument(
          std::string("cannot apply record of type ") +
          std::string(RecordTypeName(record.type)));
  }
  return Status::InvalidArgument("unknown record type");
}

PersistMeta MakePersistMeta(uint64_t lsn, std::string_view payload,
                            std::string_view origin) {
  PersistMeta meta;
  meta.lsn = lsn;
  meta.payload_crc = Crc32(payload);
  meta.payload_bytes = static_cast<uint32_t>(payload.size());
  meta.locator = std::string(origin) + ":" + std::to_string(lsn);
  return meta;
}

}  // namespace paw

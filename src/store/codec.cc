#include "src/store/codec.h"

#include <cstdint>
#include <limits>
#include <utility>

#include "src/common/crc32.h"
#include "src/privacy/policy_text.h"
#include "src/provenance/serialize.h"
#include "src/workflow/builder.h"
#include "src/workflow/serialize.h"

namespace paw {
namespace {

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed ") + what +
                                 " payload");
}

// Decode helpers that funnel every framing failure into one error.
bool GetStr(std::string_view buf, size_t* pos, std::string_view* v) {
  return GetLengthPrefixed(buf, pos, v);
}

bool GetLevel(std::string_view buf, size_t* pos, AccessLevel* level) {
  uint32_t raw = 0;
  if (!GetVarint32(buf, pos, &raw)) return false;
  *level = UnZigZag32(raw);
  return true;
}

void PutLevel(std::string* out, AccessLevel level) {
  PutVarint32(out, ZigZag32(level));
}

}  // namespace

std::string_view PayloadCodecName(PayloadCodec codec) {
  return codec == PayloadCodec::kBinary ? "binary" : "text";
}

// ---- v1 text payloads -------------------------------------------------------

std::string EncodeSpecPayload(const Specification& spec,
                              const PolicySet& policy) {
  const std::string spec_text = Serialize(spec);
  const std::string policy_text = SerializePolicy(policy);
  std::string out;
  out.reserve(spec_text.size() + policy_text.size() + 8);
  PutFixed32(&out, static_cast<uint32_t>(spec_text.size()));
  out += spec_text;
  PutFixed32(&out, static_cast<uint32_t>(policy_text.size()));
  out += policy_text;
  return out;
}

Result<DecodedSpec> DecodeSpecPayload(std::string_view payload) {
  size_t pos = 0;
  uint32_t spec_len = 0, policy_len = 0;
  std::string_view spec_text, policy_text;
  if (!GetFixed32(payload, &pos, &spec_len) ||
      !GetBytes(payload, &pos, spec_len, &spec_text) ||
      !GetFixed32(payload, &pos, &policy_len) ||
      !GetBytes(payload, &pos, policy_len, &policy_text) ||
      pos != payload.size()) {
    return Malformed("spec");
  }
  DecodedSpec out;
  PAW_ASSIGN_OR_RETURN(out.spec,
                       ParseSpecification(std::string(spec_text)));
  PAW_ASSIGN_OR_RETURN(out.policy,
                       ParsePolicy(std::string(policy_text), out.spec));
  return out;
}

std::string EncodeExecutionPayload(int spec_id, const Execution& exec) {
  std::string out;
  PutFixed32(&out, static_cast<uint32_t>(spec_id));
  out += SerializeExecution(exec);
  return out;
}

Result<DecodedExecutionText> DecodeExecutionPayload(
    std::string_view payload) {
  size_t pos = 0;
  uint32_t id = 0;
  if (!GetFixed32(payload, &pos, &id)) {
    return Malformed("execution");
  }
  if (id > static_cast<uint32_t>(std::numeric_limits<int32_t>::max())) {
    return Status::InvalidArgument("execution record spec id overflows: " +
                                   std::to_string(id));
  }
  DecodedExecutionText out;
  out.spec_id = static_cast<int>(id);
  out.exec_text.assign(payload.substr(pos));
  return out;
}

// ---- v2 binary payloads -----------------------------------------------------

std::string EncodeSpecPayloadV2(const Specification& spec,
                                const PolicySet& policy) {
  std::string out;
  out.reserve(256);
  PutLengthPrefixed(&out, spec.name());
  PutVarint32(&out, static_cast<uint32_t>(spec.num_workflows()));
  PutVarint32(&out, static_cast<uint32_t>(spec.root().value()));
  for (const Workflow& w : spec.workflows()) {
    PutLengthPrefixed(&out, w.code);
    PutLengthPrefixed(&out, w.name);
    PutLevel(&out, w.required_level);
  }
  PutVarint32(&out, static_cast<uint32_t>(spec.num_modules()));
  for (const Module& m : spec.modules()) {
    PutLengthPrefixed(&out, m.code);
    PutVarint32(&out, static_cast<uint32_t>(m.workflow.value()));
    out.push_back(static_cast<char>(m.kind));
    PutLengthPrefixed(&out, m.name);
    PutVarint32(&out, static_cast<uint32_t>(m.expansion.value() + 1));
    PutVarint32(&out, static_cast<uint32_t>(m.keywords.size()));
    for (const std::string& kw : m.keywords) PutLengthPrefixed(&out, kw);
  }
  size_t num_edges = 0;
  for (const Workflow& w : spec.workflows()) num_edges += w.edges.size();
  PutVarint32(&out, static_cast<uint32_t>(num_edges));
  for (const Workflow& w : spec.workflows()) {
    for (const DataflowEdge& e : w.edges) {
      PutVarint32(&out, static_cast<uint32_t>(e.src.value()));
      PutVarint32(&out, static_cast<uint32_t>(e.dst.value()));
      PutVarint32(&out, static_cast<uint32_t>(e.labels.size()));
      for (const std::string& label : e.labels) {
        PutLengthPrefixed(&out, label);
      }
    }
  }
  PutLevel(&out, policy.data.default_level);
  PutVarint32(&out, static_cast<uint32_t>(policy.data.label_level.size()));
  for (const auto& [label, level] : policy.data.label_level) {
    PutLengthPrefixed(&out, label);
    PutLevel(&out, level);
  }
  PutVarint32(&out, static_cast<uint32_t>(policy.module_reqs.size()));
  for (const ModulePrivacyRequirement& r : policy.module_reqs) {
    PutLengthPrefixed(&out, r.module_code);
    PutVarint64(&out, ZigZag64(r.gamma));
    PutLevel(&out, r.required_level);
  }
  PutVarint32(&out, static_cast<uint32_t>(policy.structural_reqs.size()));
  for (const StructuralPrivacyRequirement& r : policy.structural_reqs) {
    PutLengthPrefixed(&out, r.src_code);
    PutLengthPrefixed(&out, r.dst_code);
    PutLevel(&out, r.required_level);
  }
  return out;
}

Result<DecodedSpec> DecodeSpecPayloadV2(std::string_view payload) {
  size_t pos = 0;
  std::string_view name;
  uint32_t num_workflows = 0, root = 0;
  if (!GetStr(payload, &pos, &name) ||
      !GetVarint32(payload, &pos, &num_workflows) ||
      !GetVarint32(payload, &pos, &root) || root >= num_workflows) {
    return Malformed("spec-v2");
  }
  SpecBuilder builder{std::string(name)};
  for (uint32_t i = 0; i < num_workflows; ++i) {
    std::string_view code, wf_name;
    AccessLevel level = 0;
    if (!GetStr(payload, &pos, &code) ||
        !GetStr(payload, &pos, &wf_name) ||
        !GetLevel(payload, &pos, &level)) {
      return Malformed("spec-v2");
    }
    builder.AddWorkflow(std::string(code), std::string(wf_name), level);
  }
  PAW_RETURN_NOT_OK(builder.SetRoot(WorkflowId(static_cast<int32_t>(root))));

  uint32_t num_modules = 0;
  if (!GetVarint32(payload, &pos, &num_modules)) return Malformed("spec-v2");
  struct CompositeRef {
    ModuleId module;
    uint32_t expansion;
  };
  std::vector<CompositeRef> composites;
  for (uint32_t i = 0; i < num_modules; ++i) {
    std::string_view code, mod_name;
    uint32_t workflow = 0, expansion_plus_1 = 0, num_keywords = 0;
    if (!GetStr(payload, &pos, &code) ||
        !GetVarint32(payload, &pos, &workflow) ||
        workflow >= num_workflows || pos >= payload.size()) {
      return Malformed("spec-v2");
    }
    const uint8_t kind_byte = static_cast<uint8_t>(payload[pos++]);
    if (kind_byte > static_cast<uint8_t>(ModuleKind::kOutput)) {
      return Malformed("spec-v2");
    }
    const ModuleKind kind = static_cast<ModuleKind>(kind_byte);
    if (!GetStr(payload, &pos, &mod_name) ||
        !GetVarint32(payload, &pos, &expansion_plus_1) ||
        expansion_plus_1 > num_workflows ||
        !GetVarint32(payload, &pos, &num_keywords)) {
      return Malformed("spec-v2");
    }
    if ((kind == ModuleKind::kComposite) != (expansion_plus_1 != 0)) {
      return Status::InvalidArgument(
          "spec-v2 payload: expansion set on non-composite module (or "
          "missing on a composite)");
    }
    std::vector<std::string> keywords;
    keywords.reserve(std::min<uint32_t>(num_keywords, 64));
    for (uint32_t k = 0; k < num_keywords; ++k) {
      std::string_view kw;
      if (!GetStr(payload, &pos, &kw)) return Malformed("spec-v2");
      keywords.emplace_back(kw);
    }
    const WorkflowId w(static_cast<int32_t>(workflow));
    ModuleId id;
    switch (kind) {
      case ModuleKind::kInput:
      case ModuleKind::kOutput: {
        id = kind == ModuleKind::kInput
                 ? builder.AddInput(w, std::string(code))
                 : builder.AddOutput(w, std::string(code));
        // AddInput/AddOutput stamp a fixed default keyword; any extras
        // were appended via AddKeywords and are restored the same way.
        const std::string def =
            kind == ModuleKind::kInput ? "input" : "output";
        if (keywords.empty() || keywords[0] != def) {
          return Malformed("spec-v2");
        }
        if (keywords.size() > 1) {
          PAW_RETURN_NOT_OK(builder.AddKeywords(
              id, std::vector<std::string>(keywords.begin() + 1,
                                           keywords.end())));
        }
        break;
      }
      case ModuleKind::kAtomic:
      case ModuleKind::kComposite:
        id = builder.AddModule(w, std::string(code), std::string(mod_name),
                               std::move(keywords));
        if (kind == ModuleKind::kComposite) {
          composites.push_back({id, expansion_plus_1 - 1});
        }
        break;
    }
  }
  for (const CompositeRef& c : composites) {
    PAW_RETURN_NOT_OK(builder.MakeComposite(
        c.module, WorkflowId(static_cast<int32_t>(c.expansion))));
  }

  uint32_t num_edges = 0;
  if (!GetVarint32(payload, &pos, &num_edges)) return Malformed("spec-v2");
  for (uint32_t i = 0; i < num_edges; ++i) {
    uint32_t src = 0, dst = 0, num_labels = 0;
    if (!GetVarint32(payload, &pos, &src) || src >= num_modules ||
        !GetVarint32(payload, &pos, &dst) || dst >= num_modules ||
        !GetVarint32(payload, &pos, &num_labels)) {
      return Malformed("spec-v2");
    }
    std::vector<std::string> labels;
    labels.reserve(std::min<uint32_t>(num_labels, 64));
    for (uint32_t k = 0; k < num_labels; ++k) {
      std::string_view label;
      if (!GetStr(payload, &pos, &label)) return Malformed("spec-v2");
      labels.emplace_back(label);
    }
    PAW_RETURN_NOT_OK(builder.Connect(ModuleId(static_cast<int32_t>(src)),
                                      ModuleId(static_cast<int32_t>(dst)),
                                      std::move(labels)));
  }

  DecodedSpec out;
  PAW_ASSIGN_OR_RETURN(out.spec, std::move(builder).Build());

  uint32_t num_labels = 0, num_module_reqs = 0, num_structural = 0;
  if (!GetLevel(payload, &pos, &out.policy.data.default_level) ||
      !GetVarint32(payload, &pos, &num_labels)) {
    return Malformed("spec-v2");
  }
  for (uint32_t i = 0; i < num_labels; ++i) {
    std::string_view label;
    AccessLevel level = 0;
    if (!GetStr(payload, &pos, &label) ||
        !GetLevel(payload, &pos, &level)) {
      return Malformed("spec-v2");
    }
    out.policy.data.label_level[std::string(label)] = level;
  }
  if (!GetVarint32(payload, &pos, &num_module_reqs)) {
    return Malformed("spec-v2");
  }
  for (uint32_t i = 0; i < num_module_reqs; ++i) {
    ModulePrivacyRequirement r;
    std::string_view code;
    uint64_t gamma = 0;
    if (!GetStr(payload, &pos, &code) ||
        !GetVarint64(payload, &pos, &gamma) ||
        !GetLevel(payload, &pos, &r.required_level)) {
      return Malformed("spec-v2");
    }
    r.module_code = std::string(code);
    r.gamma = UnZigZag64(gamma);
    out.policy.module_reqs.push_back(std::move(r));
  }
  if (!GetVarint32(payload, &pos, &num_structural)) {
    return Malformed("spec-v2");
  }
  for (uint32_t i = 0; i < num_structural; ++i) {
    StructuralPrivacyRequirement r;
    std::string_view src, dst;
    if (!GetStr(payload, &pos, &src) || !GetStr(payload, &pos, &dst) ||
        !GetLevel(payload, &pos, &r.required_level)) {
      return Malformed("spec-v2");
    }
    r.src_code = std::string(src);
    r.dst_code = std::string(dst);
    out.policy.structural_reqs.push_back(std::move(r));
  }
  if (pos != payload.size()) return Malformed("spec-v2");
  PAW_RETURN_NOT_OK(ValidatePolicy(out.spec, out.policy));
  return out;
}

std::string EncodeExecutionPayloadV2(int spec_id, const Execution& exec) {
  std::string out;
  out.reserve(64 + static_cast<size_t>(exec.num_nodes()) * 6 +
              static_cast<size_t>(exec.num_items()) * 16);
  PutVarint32(&out, static_cast<uint32_t>(spec_id));
  PutVarint32(&out, static_cast<uint32_t>(exec.num_nodes()));
  for (const ExecNode& n : exec.nodes()) {
    out.push_back(static_cast<char>(n.kind));
    PutVarint32(&out, static_cast<uint32_t>(n.module.value()));
    PutVarint32(&out, ZigZag32(n.process_id));
    PutVarint32(&out, static_cast<uint32_t>(n.enclosing.value() + 1));
  }
  PutVarint32(&out, static_cast<uint32_t>(exec.num_items()));
  for (const DataItem& d : exec.items()) {
    PutLengthPrefixed(&out, d.label);
    PutVarint32(&out, static_cast<uint32_t>(d.producer.value()));
    PutLengthPrefixed(&out, d.value);
  }
  const auto edges = exec.graph().Edges();
  PutVarint32(&out, static_cast<uint32_t>(edges.size()));
  for (const auto& [u, v] : edges) {
    PutVarint32(&out, static_cast<uint32_t>(u));
    PutVarint32(&out, static_cast<uint32_t>(v));
    const auto& items = exec.ItemsOn(ExecNodeId(u), ExecNodeId(v));
    PutVarint32(&out, static_cast<uint32_t>(items.size()));
    for (DataItemId item : items) {
      PutVarint32(&out, static_cast<uint32_t>(item.value()));
    }
  }
  return out;
}

Result<Execution> DecodeExecutionPayloadV2(std::string_view payload,
                                           const Specification& spec) {
  size_t pos = 0;
  uint32_t spec_id = 0, num_nodes = 0;
  if (!GetVarint32(payload, &pos, &spec_id) ||
      !GetVarint32(payload, &pos, &num_nodes)) {
    return Malformed("execution-v2");
  }
  Execution exec(spec);
  for (uint32_t i = 0; i < num_nodes; ++i) {
    if (pos >= payload.size()) return Malformed("execution-v2");
    const uint8_t kind_byte = static_cast<uint8_t>(payload[pos++]);
    if (kind_byte > static_cast<uint8_t>(ExecNodeKind::kEnd)) {
      return Malformed("execution-v2");
    }
    uint32_t module = 0, process_raw = 0, enclosing_plus_1 = 0;
    if (!GetVarint32(payload, &pos, &module) ||
        module >= static_cast<uint32_t>(spec.num_modules()) ||
        !GetVarint32(payload, &pos, &process_raw) ||
        !GetVarint32(payload, &pos, &enclosing_plus_1) ||
        enclosing_plus_1 > i) {  // no forward / self enclosing refs
      return Malformed("execution-v2");
    }
    exec.AddNode(static_cast<ExecNodeKind>(kind_byte),
                 ModuleId(static_cast<int32_t>(module)),
                 UnZigZag32(process_raw),
                 ExecNodeId(static_cast<int32_t>(enclosing_plus_1) - 1));
  }
  uint32_t num_items = 0;
  if (!GetVarint32(payload, &pos, &num_items)) {
    return Malformed("execution-v2");
  }
  for (uint32_t i = 0; i < num_items; ++i) {
    std::string_view label, value;
    uint32_t producer = 0;
    if (!GetStr(payload, &pos, &label) ||
        !GetVarint32(payload, &pos, &producer) || producer >= num_nodes ||
        !GetStr(payload, &pos, &value)) {
      return Malformed("execution-v2");
    }
    exec.AddItem(std::string(label),
                 ExecNodeId(static_cast<int32_t>(producer)),
                 std::string(value));
  }
  uint32_t num_flows = 0;
  if (!GetVarint32(payload, &pos, &num_flows)) {
    return Malformed("execution-v2");
  }
  for (uint32_t i = 0; i < num_flows; ++i) {
    uint32_t from = 0, to = 0, count = 0;
    if (!GetVarint32(payload, &pos, &from) || from >= num_nodes ||
        !GetVarint32(payload, &pos, &to) || to >= num_nodes ||
        !GetVarint32(payload, &pos, &count)) {
      return Malformed("execution-v2");
    }
    std::vector<DataItemId> items;
    items.reserve(std::min<uint32_t>(count, 64));
    for (uint32_t k = 0; k < count; ++k) {
      uint32_t item = 0;
      if (!GetVarint32(payload, &pos, &item) || item >= num_items) {
        return Malformed("execution-v2");
      }
      items.push_back(DataItemId(static_cast<int32_t>(item)));
    }
    PAW_RETURN_NOT_OK(exec.AddFlow(ExecNodeId(static_cast<int32_t>(from)),
                                   ExecNodeId(static_cast<int32_t>(to)),
                                   items));
  }
  if (pos != payload.size()) return Malformed("execution-v2");
  return exec;
}

Result<int> DecodeExecutionSpecId(RecordType type,
                                  std::string_view payload) {
  size_t pos = 0;
  uint32_t id = 0;
  bool ok = false;
  if (type == RecordType::kExecution) {
    ok = GetFixed32(payload, &pos, &id);
  } else if (type == RecordType::kExecutionV2) {
    ok = GetVarint32(payload, &pos, &id);
  }
  if (!ok) return Malformed("execution");
  if (id > static_cast<uint32_t>(std::numeric_limits<int32_t>::max())) {
    return Status::InvalidArgument("execution record spec id overflows: " +
                                   std::to_string(id));
  }
  return static_cast<int>(id);
}

// ---- Replay -----------------------------------------------------------------

Status ApplyRecord(const Record& record, Repository* repo) {
  switch (record.type) {
    case RecordType::kSpec:
    case RecordType::kSpecV2: {
      PAW_ASSIGN_OR_RETURN(DecodedSpec decoded,
                           record.type == RecordType::kSpec
                               ? DecodeSpecPayload(record.payload)
                               : DecodeSpecPayloadV2(record.payload));
      return repo
          ->AddSpecification(std::move(decoded.spec),
                             std::move(decoded.policy))
          .status();
    }
    case RecordType::kExecution:
    case RecordType::kExecutionV2: {
      PAW_ASSIGN_OR_RETURN(
          const int spec_id,
          DecodeExecutionSpecId(record.type, record.payload));
      if (spec_id >= repo->num_specs()) {
        return Status::InvalidArgument(
            "execution record references unknown spec " +
            std::to_string(spec_id));
      }
      const Specification& spec = repo->entry(spec_id).spec;
      Execution exec(spec);
      if (record.type == RecordType::kExecution) {
        PAW_ASSIGN_OR_RETURN(DecodedExecutionText decoded,
                             DecodeExecutionPayload(record.payload));
        PAW_ASSIGN_OR_RETURN(exec, ParseExecution(decoded.exec_text, spec));
      } else {
        PAW_ASSIGN_OR_RETURN(
            exec, DecodeExecutionPayloadV2(record.payload, spec));
      }
      return repo->AddExecution(spec_id, std::move(exec)).status();
    }
    case RecordType::kWalHeader:
    case RecordType::kSnapshotHeader:
      return Status::InvalidArgument(
          std::string("cannot apply record of type ") +
          std::string(RecordTypeName(record.type)));
  }
  return Status::InvalidArgument("unknown record type");
}

PersistMeta MakePersistMeta(uint64_t lsn, std::string_view payload,
                            std::string_view origin) {
  PersistMeta meta;
  meta.lsn = lsn;
  meta.payload_crc = Crc32(payload);
  meta.payload_bytes = static_cast<uint32_t>(payload.size());
  meta.locator = std::string(origin) + ":" + std::to_string(lsn);
  return meta;
}

}  // namespace paw

#include "src/store/sharded_repository.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "src/common/crc32.h"
#include "src/common/file_io.h"
#include "src/common/metrics.h"
#include "src/common/strings.h"
#include "src/common/thread_pool.h"

namespace paw {
namespace {

Gauge& QueueDepthGauge() {
  static Gauge& g =
      MetricsRegistry::Global().GetGauge("paw_store_queue_depth");
  return g;
}

constexpr std::string_view kManifestName = "PAWSHARDS";
constexpr std::string_view kManifestMagic = "pawshards 1";
// Bits reserved for the per-shard physical LSN inside an
// epoch-prefixed LSN: 2^40 records per shard per epoch.
constexpr int kEpochShift = 40;
// Largest epoch the manifest may carry. One epoch burns per open, so
// at this bound a store survives ~8.4M open cycles; Open refuses the
// bump past it with a clean error instead of writing a manifest the
// reader would reject (which would brick the store).
constexpr uint64_t kMaxEpoch = (uint64_t{1} << 23) - 1;

/// Strict integer field parse: the whole of `v` must be digits within
/// [0, `max`]. The manifest gates every open, so trailing junk or an
/// overflowing value is corruption, not something to round down.
bool ParseManifestUint(const std::string& v, uint64_t max, uint64_t* out) {
  if (v.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
  if (errno != 0 || end != v.c_str() + v.size() || parsed > max) {
    return false;
  }
  *out = parsed;
  return true;
}

std::string ManifestPath(const std::string& dir) {
  return dir + "/" + std::string(kManifestName);
}

std::string ShardPath(const std::string& dir, int shard) {
  return dir + "/" + ShardedRepository::ShardDirName(shard);
}

std::string RenderManifest(const ShardManifest& m) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s\nshards=%d\nepoch=%llu\n",
                std::string(kManifestMagic).c_str(), m.shards,
                static_cast<unsigned long long>(m.epoch));
  return buf;
}

}  // namespace

Result<ShardManifest> ReadShardManifest(const std::string& dir) {
  auto contents = ReadFileToString(ManifestPath(dir));
  if (!contents.ok()) {
    return Status::NotFound(dir + " has no " + std::string(kManifestName) +
                            " manifest");
  }
  std::vector<std::string> lines = Split(contents.value(), '\n');
  if (lines.empty() || Trim(lines[0]) != kManifestMagic) {
    return Status::FailedPrecondition(dir + " is not a sharded paw store");
  }
  ShardManifest manifest;
  bool have_shards = false, have_epoch = false;
  for (size_t i = 1; i < lines.size(); ++i) {
    std::string line(Trim(lines[i]));
    if (line.empty()) continue;
    std::string v;
    uint64_t parsed = 0;
    if (KeyValueField(line, "shards", &v)) {
      if (!ParseManifestUint(
              v, static_cast<uint64_t>(ShardedRepository::kMaxShards),
              &parsed)) {
        return Status::FailedPrecondition("bad manifest shards= in " + dir);
      }
      manifest.shards = static_cast<int>(parsed);
      have_shards = true;
    } else if (KeyValueField(line, "epoch", &v)) {
      if (!ParseManifestUint(v, kMaxEpoch, &parsed)) {
        return Status::FailedPrecondition("bad manifest epoch= in " + dir);
      }
      manifest.epoch = parsed;
      have_epoch = true;
    } else {
      return Status::FailedPrecondition("bad manifest line: " + line);
    }
  }
  if (!have_shards || !have_epoch || manifest.shards < 1 ||
      manifest.epoch == 0) {
    return Status::FailedPrecondition("corrupt manifest in " + dir);
  }
  return manifest;
}

Status WriteShardManifest(const std::string& dir,
                          const ShardManifest& manifest) {
  return AtomicWriteFile(ManifestPath(dir), RenderManifest(manifest));
}

int ShardedRepository::ShardOf(std::string_view spec_name, int num_shards) {
  return static_cast<int>(Crc32(spec_name) %
                          static_cast<uint32_t>(num_shards));
}

std::string ShardedRepository::ShardDirName(int shard) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%04d", shard);
  return buf;
}

uint64_t ShardedRepository::EpochLsn(uint64_t epoch, uint64_t lsn) {
  return (epoch << kEpochShift) | lsn;
}

bool ShardedRepository::IsShardedStore(const std::string& dir) {
  return PathExists(ManifestPath(dir));
}

Result<ShardedRepository> ShardedRepository::Init(const std::string& dir,
                                                  int num_shards,
                                                  Options options) {
  if (num_shards < 1 || num_shards > kMaxShards) {
    return Status::InvalidArgument(
        "shard count must be in [1, " + std::to_string(kMaxShards) +
        "]: " + std::to_string(num_shards));
  }
  PAW_RETURN_NOT_OK(EnsureDir(dir));
  if (IsShardedStore(dir)) {
    return Status::AlreadyExists(dir + " already contains a sharded store");
  }
  if (PathExists(dir + "/PAWSTORE")) {
    return Status::AlreadyExists(
        dir + " already contains a single-directory paw store");
  }
  // Claim the root before writing anything (Open does the same, so two
  // processes cannot race an Init against an Open).
  PAW_ASSIGN_OR_RETURN(StoreDirLock lock, StoreDirLock::Acquire(dir));
  // Manifest first (epoch 1), then the shards: the manifest is the
  // double-init guard, and a crash mid-init leaves a store that fails
  // to open (missing shard) rather than one that half-exists.
  PAW_RETURN_NOT_OK(WriteShardManifest(dir, {num_shards, /*epoch=*/1}));
  ShardedRepository store(dir, options);
  store.lock_ = std::move(lock);
  store.epoch_ = 1;
  store.recovery_.epoch = 1;
  store.shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    PAW_ASSIGN_OR_RETURN(PersistentRepository shard,
                         PersistentRepository::Init(ShardPath(dir, i),
                                                    store.ShardOptions()));
    store.shards_.push_back(
        std::make_unique<PersistentRepository>(std::move(shard)));
  }
  store.StartWriterPool();
  return store;
}

Result<ShardedRepository> ShardedRepository::Open(const std::string& dir,
                                                  Options options,
                                                  int threads) {
  PAW_ASSIGN_OR_RETURN(ShardManifest manifest, ReadShardManifest(dir));
  // The root lock comes before the epoch bump: a second live opener
  // must fail cleanly rather than burn an epoch and fight over shards.
  PAW_ASSIGN_OR_RETURN(StoreDirLock lock, StoreDirLock::Acquire(dir));
  // Claim the next epoch *before* any shard is touched; after a crash
  // anywhere past this point, the next open claims a larger epoch, so
  // epoch-prefixed LSNs never repeat even if shard recovery rolls a
  // physical LSN back.
  if (manifest.epoch >= kMaxEpoch) {
    // Refuse rather than write a manifest the reader would reject: the
    // data stays intact and the error is actionable.
    return Status::FailedPrecondition(
        dir + " has exhausted its epoch space (" +
        std::to_string(kMaxEpoch) + " opens)");
  }
  manifest.epoch += 1;
  PAW_RETURN_NOT_OK(WriteShardManifest(dir, manifest));

  ShardedRepository store(dir, options);
  store.lock_ = std::move(lock);
  store.epoch_ = manifest.epoch;
  store.recovery_.epoch = manifest.epoch;
  // Clamp the recovery fan-out to the machine: WAL replay is CPU-bound
  // per shard, so threads beyond the core count only add contention —
  // measured 0.7-0.8x on a 1-core box at 100k records when 4 recovery
  // threads fought over one core (the E10d "regression"; with the
  // clamp, sharded recovery matches single-dir there and wins with
  // real cores). Callers typically pass the shard count.
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int max_useful = std::min(manifest.shards, std::max(1, hw));
  store.recovery_.threads = std::max(1, std::min(threads, max_useful));
  store.shards_.resize(static_cast<size_t>(manifest.shards));

  // Recover shards in parallel; each task touches only its own slot.
  const Options shard_options = store.ShardOptions();
  std::vector<Status> statuses(static_cast<size_t>(manifest.shards));
  ParallelFor(store.recovery_.threads, manifest.shards, [&](int i) {
    auto shard = PersistentRepository::Open(ShardPath(dir, i),
                                            shard_options);
    if (!shard.ok()) {
      statuses[static_cast<size_t>(i)] = shard.status();
      return;
    }
    store.shards_[static_cast<size_t>(i)] =
        std::make_unique<PersistentRepository>(std::move(shard).value());
  });
  for (int i = 0; i < manifest.shards; ++i) {
    if (!statuses[static_cast<size_t>(i)].ok()) {
      return Status(statuses[static_cast<size_t>(i)].code(),
                    ShardDirName(i) + ": " +
                        statuses[static_cast<size_t>(i)].message());
    }
    const auto& info = store.shards_[static_cast<size_t>(i)]->recovery();
    store.recovery_.records_replayed += info.records_replayed;
    store.recovery_.records_skipped += info.records_skipped;
    store.recovery_.dropped_bytes += info.dropped_bytes;
    if (info.torn_tail) ++store.recovery_.torn_shards;
  }
  store.StartWriterPool();
  return store;
}

StoreOptions ShardedRepository::ShardOptions() const {
  Options shard_options = options_;
  shard_options.writer_threads = 0;
  if (options_.writer_threads > 0) {
    // Durability is group-committed at the drain level: one Sync per
    // drained batch instead of one fdatasync per record (see the
    // writer-queue notes in the header).
    shard_options.sync_each_append = false;
  }
  return shard_options;
}

void ShardedRepository::StartWriterPool() {
  if (options_.writer_threads <= 0) return;
  writer_ = std::make_unique<WriterState>(
      num_shards(), std::min(options_.writer_threads, num_shards()));
}

void ShardedRepository::Enqueue(int shard, store_detail::PendingOp* op) {
  using store_detail::PendingOp;
  // Capture the enqueuing request's trace context here — the drain
  // runs on a writer thread, and the context must hop with the op.
  op->trace_ctx = CurrentTraceContext();
  WriterState* ws = writer_.get();
  ShardQueue* q = &ws->queues[static_cast<size_t>(shard)];
  {
    std::lock_guard<std::mutex> lock(ws->mu);
    ++ws->pending_ops;
  }
  QueueDepthGauge().Add(1);
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(q->mu);
    // Intrusive push: the node is the queue entry, no container churn.
    if (q->tail == nullptr) {
      q->head = op;
    } else {
      q->tail->next = op;
    }
    q->tail = op;
    if (!q->scheduled) {
      q->scheduled = true;
      schedule = true;
    }
  }
  if (!schedule) return;
  PersistentRepository* target = shards_[static_cast<size_t>(shard)].get();
  const bool group_sync = options_.sync_each_append;
  // The drain task captures only heap-stable pointers (queue slots and
  // shards live behind unique_ptr), so moving the ShardedRepository
  // around does not invalidate an in-flight drain.
  ws->pool.Submit([ws, q, target, group_sync] {
    for (;;) {
      PendingOp* batch = nullptr;
      {
        std::lock_guard<std::mutex> lock(q->mu);
        if (q->head == nullptr) {
          q->scheduled = false;
          return;
        }
        batch = q->head;
        q->head = nullptr;
        q->tail = nullptr;
      }
      // Apply the whole batch with buffered appends, then make it
      // durable with a single fdatasync, then acknowledge: a waiter's
      // future never completes before its record is where the store's
      // durability mode promises.
      int64_t count = 0;
      TraceContext sync_ctx;
      for (PendingOp* op = batch; op != nullptr; op = op->next) {
        ScopedTraceContext op_trace(op->trace_ctx);
        op->Run(target);
        if (!sync_ctx.valid()) sync_ctx = op->trace_ctx;
        ++count;
      }
      // The group fdatasync commits the whole batch; attribute its
      // span to the first traced op (the batch leader's request).
      ScopedTraceContext sync_trace(sync_ctx);
      const Status sync = group_sync ? target->Sync() : Status::OK();
      for (PendingOp* op = batch; op != nullptr;) {
        // Read the link before MarkDone: the moment `done` flips, a
        // waiting future may consume the result, unref, and free the
        // node from under us.
        PendingOp* next = op->next;
        op->Complete(sync);
        op->MarkDone();
        op->Unref();
        op = next;
      }
      QueueDepthGauge().Add(-static_cast<int64_t>(count));
      {
        std::lock_guard<std::mutex> lock(ws->mu);
        ws->pending_ops -= count;
        if (ws->pending_ops == 0) ws->drained_cv.notify_all();
      }
    }
  });
}

void ShardedRepository::Drain() {
  if (writer_ == nullptr) return;
  std::unique_lock<std::mutex> lock(writer_->mu);
  writer_->drained_cv.wait(lock,
                           [this] { return writer_->pending_ops == 0; });
}

/// A queued specification append: payload + result slot in one block.
struct ShardedRepository::SpecOp : store_detail::ResultOp<SpecRef> {
  SpecOp(int shard_index, Specification s, PolicySet p)
      : shard(shard_index), spec(std::move(s)), policy(std::move(p)) {}

  int shard;
  Specification spec;
  PolicySet policy;

  void Run(PersistentRepository* target) override {
    auto id = target->AddSpecification(std::move(spec), std::move(policy));
    result = id.ok() ? Result<SpecRef>(SpecRef{shard, id.value()})
                     : Result<SpecRef>(id.status());
  }
  void Complete(const Status& sync) override {
    if (result.ok() && !sync.ok()) result = sync;
  }
};

/// A queued execution append.
struct ShardedRepository::ExecOp : store_detail::ResultOp<ExecutionId> {
  ExecOp(SpecRef r, Execution e) : ref(r), exec(std::move(e)) {}

  SpecRef ref;
  Execution exec;

  void Run(PersistentRepository* target) override {
    result = target->AddExecution(ref.id, std::move(exec));
  }
  void Complete(const Status& sync) override {
    if (result.ok() && !sync.ok()) result = sync;
  }
};

/// A queued compaction cut: riding the shard queue serializes the cut
/// (WAL rotation + pinned view) with that shard's appends; the shard's
/// own snapshot worker does the heavy part afterwards, off the queue.
struct ShardedRepository::CompactOp : store_detail::PendingOp {
  Status result;

  void Run(PersistentRepository* target) override {
    result = target->CompactAsync();
  }
  void Complete(const Status& sync) override {
    // Cut errors surface through the shard's WaitForCompaction (the
    // shard records them as its last compaction status); the group
    // sync status belongs to the append ops in the batch.
    (void)sync;
  }
};

Result<ShardedRepository::SpecRef> ShardedRepository::AddSpecification(
    Specification spec, PolicySet policy) {
  if (writer_ != nullptr) {
    // Route through the shard queue so the shard stays single-writer
    // even when async appends are in flight.
    return AddSpecificationAsync(std::move(spec), std::move(policy)).get();
  }
  const int shard = ShardOf(spec.name(), num_shards());
  PAW_ASSIGN_OR_RETURN(int id,
                       shards_[static_cast<size_t>(shard)]->AddSpecification(
                           std::move(spec), std::move(policy)));
  return SpecRef{shard, id};
}

Result<ExecutionId> ShardedRepository::AddExecution(SpecRef ref,
                                                    Execution exec) {
  if (ref.shard < 0 || ref.shard >= num_shards()) {
    return Status::NotFound("unknown shard " + std::to_string(ref.shard));
  }
  if (writer_ != nullptr) {
    return AddExecutionAsync(ref, std::move(exec)).get();
  }
  return shards_[static_cast<size_t>(ref.shard)]->AddExecution(
      ref.id, std::move(exec));
}

StoreFuture<ShardedRepository::SpecRef>
ShardedRepository::AddSpecificationAsync(Specification spec,
                                         PolicySet policy) {
  const int shard = ShardOf(spec.name(), num_shards());
  if (writer_ == nullptr) {
    PersistentRepository* target = shards_[static_cast<size_t>(shard)].get();
    auto id = target->AddSpecification(std::move(spec), std::move(policy));
    return MakeReadyFuture<SpecRef>(id.ok()
                                    ? Result<SpecRef>(SpecRef{shard,
                                                              id.value()})
                                    : Result<SpecRef>(id.status()));
  }
  auto* op = new SpecOp(shard, std::move(spec), std::move(policy));
  op->refs.store(2, std::memory_order_relaxed);  // queue + future
  StoreFuture<SpecRef> future{op};
  Enqueue(shard, op);
  return future;
}

StoreFuture<ExecutionId> ShardedRepository::AddExecutionAsync(
    SpecRef ref, Execution exec) {
  if (ref.shard < 0 || ref.shard >= num_shards()) {
    return MakeReadyFuture<ExecutionId>(
        Status::NotFound("unknown shard " + std::to_string(ref.shard)));
  }
  if (writer_ == nullptr) {
    PersistentRepository* target =
        shards_[static_cast<size_t>(ref.shard)].get();
    return MakeReadyFuture<ExecutionId>(
        target->AddExecution(ref.id, std::move(exec)));
  }
  auto* op = new ExecOp(ref, std::move(exec));
  op->refs.store(2, std::memory_order_relaxed);  // queue + future
  StoreFuture<ExecutionId> future{op};
  Enqueue(ref.shard, op);
  return future;
}

Status ShardedRepository::CompactAsync() {
  if (writer_ == nullptr) {
    // No queues to serialize against: the caller owns the writer role,
    // so take every shard's cut inline; the snapshot workers still run
    // in the background.
    for (auto& shard : shards_) {
      PAW_RETURN_NOT_OK(shard->CompactAsync());
    }
    return Status::OK();
  }
  for (int i = 0; i < num_shards(); ++i) {
    Enqueue(i, new CompactOp());
  }
  return Status::OK();
}

Status ShardedRepository::WaitForCompaction() {
  // First the queues (so every enqueued cut has been taken), then the
  // per-shard snapshot workers.
  Drain();
  Status first;
  for (int i = 0; i < num_shards(); ++i) {
    Status s = shards_[static_cast<size_t>(i)]->WaitForCompaction();
    if (!s.ok() && first.ok()) {
      first = Status(s.code(), ShardDirName(i) + ": " + s.message());
    }
  }
  return first;
}

bool ShardedRepository::compaction_running() const {
  for (const auto& shard : shards_) {
    if (shard->compaction_running()) return true;
  }
  return false;
}

Result<ShardedRepository::SpecRef> ShardedRepository::FindSpec(
    std::string_view name) const {
  const int shard = ShardOf(name, num_shards());
  PAW_ASSIGN_OR_RETURN(int id,
                       shards_[static_cast<size_t>(shard)]->repo().FindSpec(
                           name));
  return SpecRef{shard, id};
}

Status ShardedRepository::Compact(int threads) {
  // Queued appends must land before the snapshot cut.
  Drain();
  std::vector<Status> statuses(shards_.size());
  ParallelFor(std::max(1, std::min(threads, num_shards())), num_shards(),
              [&](int i) {
                statuses[static_cast<size_t>(i)] =
                    shards_[static_cast<size_t>(i)]->Compact();
              });
  for (int i = 0; i < num_shards(); ++i) {
    if (!statuses[static_cast<size_t>(i)].ok()) {
      return Status(statuses[static_cast<size_t>(i)].code(),
                    ShardDirName(i) + ": " +
                        statuses[static_cast<size_t>(i)].message());
    }
  }
  return Status::OK();
}

Status ShardedRepository::Sync() {
  Drain();
  for (auto& shard : shards_) {
    PAW_RETURN_NOT_OK(shard->Sync());
  }
  return Status::OK();
}

int ShardedRepository::num_specs() const {
  int total = 0;
  for (const auto& shard : shards_) total += shard->repo().num_specs();
  return total;
}

int ShardedRepository::num_executions() const {
  int total = 0;
  for (const auto& shard : shards_) total += shard->repo().num_executions();
  return total;
}

}  // namespace paw

#ifndef PAW_STORE_SHARDED_REPOSITORY_H_
#define PAW_STORE_SHARDED_REPOSITORY_H_

/// \file sharded_repository.h
/// \brief N-way sharded persistent store with parallel recovery.
///
/// Partitions specifications (and the executions that belong to them)
/// across `N` shard directories, each an independent single-directory
/// `PersistentRepository` with its own WAL and snapshot. Layout:
///
/// \code
///   <dir>/PAWSHARDS                 manifest (text):
///                                     pawshards 1
///                                     shards=<N>
///                                     epoch=<E>
///   <dir>/shard-0000/               full paw store (PAWSTORE, PAWWAL,
///   ...                             wal-<seq>.log segments,
///   <dir>/shard-<N-1 zero-padded>/  snapshot-<lsn>.paws)
/// \endcode
///
/// **Routing.** A specification lives on shard
/// `Crc32(spec name) % N`; the shard count is fixed at `Init` and
/// recorded in the manifest, so routing is deterministic across
/// restarts. Executions ride with their specification, preserving the
/// invariant that an execution's spec lives in the same `Repository` —
/// so every existing query/privacy primitive runs unchanged against a
/// shard's `repo()`.
///
/// **LSNs and epochs.** Each shard keeps its own monotonic LSN exactly
/// as a single-directory store does. There is deliberately no global
/// append counter (that would re-serialize writers); instead the
/// manifest carries a store-wide *epoch* that `Open` atomically bumps
/// before touching any shard. A record is globally identified by the
/// epoch-prefixed LSN `EpochLsn(epoch, lsn)` = `epoch << 40 | lsn`:
/// within a shard LSNs order appends, and the epoch prefix keeps ids
/// unique across crash-recovery cycles even when torn-tail repair rolls
/// a shard's physical LSN back (a re-issued physical LSN after repair
/// belongs to a strictly larger epoch). Note the epoch only *names*
/// store generations — the write path does not re-read the manifest,
/// so two live handles to the same store are still undefined behavior
/// (as with the single-directory store); external coordination that
/// wants to fence stale writers can compare their recorded epoch
/// against the manifest, but nothing in-process does so yet.
///
/// **Recovery and compaction** fan out across shards on a small thread
/// pool (`src/common/thread_pool.h`); shards are independent, so the
/// result is bit-identical regardless of thread count (asserted by
/// tests/sharded_store_test.cc).
///
/// **Per-shard writer queues.** With `Options::writer_threads > 0`,
/// appends are routed through one FIFO queue per shard and drained by
/// a shared writer pool, so ingest fans out across shards instead of
/// serializing on the caller thread. `AddSpecificationAsync` /
/// `AddExecutionAsync` enqueue and return a `StoreFuture`; the
/// synchronous `AddSpecification` / `AddExecution` also go through the
/// queue (and wait), which keeps every shard single-writer — at most
/// one drain task runs per shard at a time, and ops within a shard
/// apply in enqueue order. When the store was opened with
/// `sync_each_append`, the drain group-commits durability: it applies
/// every queued op of the batch with buffered writes, issues **one**
/// fdatasync, and only then completes the futures — N queued appends
/// cost one fsync instead of N. With `writer_threads == 0` (default)
/// no pool exists and every call is synchronous on the caller thread,
/// exactly as before. Queue entries are intrusive single-allocation
/// nodes: the op's payload, its result slot, the completion flag the
/// future blocks on (C++20 atomic wait), and the queue link all live
/// in one heap block — no `std::promise` shared state, no
/// `std::function` chains, exactly one allocation per append on the
/// hot ingest path.
///
/// **Background compaction.** `CompactAsync` rides the same queues: a
/// compaction-cut op is enqueued per shard, so the cut (WAL rotation +
/// pinned repository view, see persistent_repository.h) is serialized
/// with that shard's appends, and each shard's snapshot worker then
/// runs concurrently with further ingest. `WaitForCompaction` drains
/// the queues and joins every shard's worker.
///
/// **Concurrency contract.** Any number of threads may enqueue
/// appends concurrently, and `CompactAsync` may be called while they
/// do. Everything else — reading shard state (`shard(i)`, `repo()`,
/// `FindSpec`, `num_specs`), `Compact`, and `Sync` — requires
/// quiescence: no append may be in flight and no other thread may
/// enqueue until the call returns. `Drain()` (and a resolved future)
/// is the barrier callers use to establish that; `Compact`/`Sync`
/// drain internally, but that only covers ops enqueued *before* the
/// call — enqueueing concurrently with them is undefined behavior,
/// exactly like the pre-existing two-live-handles caveat.

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/common/trace.h"
#include "src/store/lock_file.h"
#include "src/store/persistent_repository.h"

namespace paw {

/// \brief Contents of the `PAWSHARDS` manifest.
struct ShardManifest {
  int shards = 0;
  uint64_t epoch = 0;
};

/// \brief Reads `<dir>/PAWSHARDS`; NotFound when absent,
/// FailedPrecondition when malformed.
Result<ShardManifest> ReadShardManifest(const std::string& dir);

/// \brief Atomically (re)writes `<dir>/PAWSHARDS`.
Status WriteShardManifest(const std::string& dir,
                          const ShardManifest& manifest);

namespace store_detail {

/// \brief One queued writer op: payload, result slot, completion flag,
/// and the intrusive queue link in a single heap block.
///
/// Completion is intrusive: `done` flips to 1 after the batch's group
/// sync and waiters block on it with C++20 atomic wait — there is no
/// `std::promise` (whose shared state is a separate allocation) behind
/// a `StoreFuture`. Ownership is a 2-way refcount: the drain loop holds
/// one reference, the future (if any) the other; whoever lets go last
/// frees the node, so a dropped future never dangles and a completed
/// queue never leaks.
struct PendingOp {
  PendingOp* next = nullptr;  // intrusive FIFO link
  /// Trace context of the enqueuing request (captured by `Enqueue`),
  /// re-installed on the drain thread around `Run` so WAL/store spans
  /// of this op join the request's trace across the thread hop.
  TraceContext trace_ctx;
  /// 0 until the op's result is final; flips once, then notifies.
  std::atomic<uint32_t> done{0};
  /// Live references: the queue, plus the future when one is attached.
  std::atomic<uint32_t> refs{1};

  virtual ~PendingOp() = default;
  /// Applies the op against its shard and stashes the result.
  virtual void Run(PersistentRepository* shard) = 0;
  /// Folds the batch's group-sync status into the stashed result;
  /// called exactly once, before `MarkDone`.
  virtual void Complete(const Status& sync) = 0;

  void MarkDone() {
    done.store(1, std::memory_order_release);
    done.notify_all();
  }
  void WaitDone() const {
    while (done.load(std::memory_order_acquire) == 0) {
      done.wait(0, std::memory_order_acquire);
    }
  }
  void Unref() {
    if (refs.fetch_sub(1, std::memory_order_acq_rel) == 1) delete this;
  }
};

/// \brief An op whose completion yields a `Result<T>`.
template <typename T>
struct ResultOp : PendingOp {
  Result<T> result{Status::Internal("op not run")};
};

/// \brief A never-enqueued op carrying an already-final result; backs
/// `MakeReadyFuture`.
template <typename T>
struct ReadyOp : ResultOp<T> {
  void Run(PersistentRepository*) override {}
  void Complete(const Status&) override {}
};

}  // namespace store_detail

/// \brief A one-shot future for a queued writer op, backed by the op
/// node itself (see `store_detail::PendingOp` — no promise shared
/// state). Movable, not copyable; `get()` blocks until the op's batch
/// committed (and, under `sync_each_append`, synced), then consumes
/// the result. Dropping an unresolved future is safe.
template <typename T>
class StoreFuture {
 public:
  StoreFuture() = default;
  StoreFuture(StoreFuture&& other) noexcept
      : op_(std::exchange(other.op_, nullptr)) {}
  StoreFuture& operator=(StoreFuture&& other) noexcept {
    if (this != &other) {
      Reset();
      op_ = std::exchange(other.op_, nullptr);
    }
    return *this;
  }
  StoreFuture(const StoreFuture&) = delete;
  StoreFuture& operator=(const StoreFuture&) = delete;
  ~StoreFuture() { Reset(); }

  /// \brief True until `get()` consumes the result.
  bool valid() const { return op_ != nullptr; }

  /// \brief Blocks until the op completes; may be called once.
  Result<T> get() {
    assert(op_ != nullptr);
    op_->WaitDone();
    Result<T> out = std::move(op_->result);
    Reset();
    return out;
  }

  /// \brief Blocks until the op completes without consuming it.
  void wait() const {
    if (op_ != nullptr) op_->WaitDone();
  }

  /// \brief Internal: adopts one reference to `op`. Only the store's
  /// writer-queue plumbing constructs futures from op nodes.
  explicit StoreFuture(store_detail::ResultOp<T>* op) : op_(op) {}

 private:
  void Reset() {
    if (op_ != nullptr) {
      op_->Unref();
      op_ = nullptr;
    }
  }

  store_detail::ResultOp<T>* op_ = nullptr;
};

/// \brief Wraps an already-known result as a resolved `StoreFuture`
/// (the inline append path, early-error paths, and callers — like the
/// server's single-directory store — that complete synchronously).
template <typename T>
StoreFuture<T> MakeReadyFuture(Result<T> result) {
  auto* op = new store_detail::ReadyOp<T>();
  op->result = std::move(result);
  op->MarkDone();
  return StoreFuture<T>(op);
}

/// \brief Durable repository partitioned across shard directories.
class ShardedRepository {
 public:
  using Options = StoreOptions;

  /// \brief Upper bound on the shard count — a typo guard shared with
  /// pawctl; each shard costs a directory, a WAL fd, and a recovery
  /// task.
  static constexpr int kMaxShards = 1024;

  /// \brief Identifies a stored spec: the shard it routes to and its
  /// dense id *within that shard's* repository.
  struct SpecRef {
    int shard = -1;
    int id = -1;
    bool operator==(const SpecRef&) const = default;
  };

  /// \brief Aggregate of what `Open` did across shards.
  struct RecoveryStats {
    /// Epoch claimed by this open (already written to the manifest).
    uint64_t epoch = 0;
    /// Threads the recovery actually used.
    int threads = 1;
    /// Sums of the per-shard `PersistentRepository::RecoveryInfo`.
    uint64_t records_replayed = 0;
    uint64_t records_skipped = 0;
    uint64_t dropped_bytes = 0;
    /// Shards whose WAL ended in a torn record.
    int torn_shards = 0;
  };

  /// \brief Creates an empty sharded store of `num_shards` shards
  /// (manifest epoch 1). Fails if `dir` already holds a sharded or
  /// single-directory store.
  static Result<ShardedRepository> Init(const std::string& dir,
                                        int num_shards,
                                        Options options = {});

  /// \brief Recovers every shard, using up to `threads` workers. Bumps
  /// the manifest epoch before opening any shard.
  static Result<ShardedRepository> Open(const std::string& dir,
                                        Options options = {},
                                        int threads = 1);

  /// \brief Routes by spec name and durably stores the specification.
  Result<SpecRef> AddSpecification(Specification spec,
                                   PolicySet policy = {});

  /// \brief Durably stores an execution of the spec at `ref`. The
  /// execution must have been built against
  /// `shard(ref.shard).repo().entry(ref.id).spec`.
  Result<ExecutionId> AddExecution(SpecRef ref, Execution exec);

  /// \brief Enqueues the specification onto its shard's writer queue
  /// and returns immediately; the result arrives via the future. With
  /// `writer_threads == 0` the append runs inline (the future is
  /// already ready on return).
  StoreFuture<SpecRef> AddSpecificationAsync(Specification spec,
                                             PolicySet policy = {});

  /// \brief Enqueues an execution append; see `AddSpecificationAsync`.
  StoreFuture<ExecutionId> AddExecutionAsync(SpecRef ref, Execution exec);

  /// \brief Blocks until every enqueued append has been applied (and,
  /// under `sync_each_append`, made durable). No-op without a writer
  /// pool.
  void Drain();

  /// \brief Locates a stored spec by name (routed, then looked up).
  Result<SpecRef> FindSpec(std::string_view name) const;

  /// \brief Snapshots + truncates every shard, up to `threads` at a
  /// time. Returns the first shard error, if any. Requires quiescence
  /// (drains internally); for compaction concurrent with ingest use
  /// `CompactAsync`.
  Status Compact(int threads = 1);

  /// \brief Starts a background compaction of every shard and returns
  /// without waiting for the snapshots. The per-shard cut is enqueued
  /// on the shard's writer queue (serialized with appends), so this is
  /// safe to call while other threads keep enqueueing; each shard's
  /// snapshot worker then runs alongside further ingest. Without a
  /// writer pool the cuts are taken inline (the snapshot work is still
  /// backgrounded).
  Status CompactAsync();

  /// \brief Drains the writer queues, joins every shard's snapshot
  /// worker, and returns the first shard's compaction error, if any.
  Status WaitForCompaction();

  /// \brief True while any shard's compaction is active.
  bool compaction_running() const;

  /// \brief Forces every shard's logged records to stable storage.
  Status Sync();

  int num_shards() const { return static_cast<int>(shards_.size()); }
  PersistentRepository& shard(int i) { return *shards_[static_cast<size_t>(i)]; }
  const PersistentRepository& shard(int i) const {
    return *shards_[static_cast<size_t>(i)];
  }

  /// \brief Spec / execution totals across shards.
  int num_specs() const;
  int num_executions() const;

  /// \brief Store generation claimed by this handle (see file comment).
  uint64_t epoch() const { return epoch_; }

  /// \brief How the last `Open` rebuilt state (zeros after `Init`,
  /// except `epoch`).
  const RecoveryStats& recovery() const { return recovery_; }

  const std::string& dir() const { return dir_; }

  /// \brief Shard a spec name routes to (Crc32 mod `num_shards`).
  static int ShardOf(std::string_view spec_name, int num_shards);

  /// \brief Directory name of shard `i` ("shard-0007").
  static std::string ShardDirName(int shard);

  /// \brief Epoch-prefixed global LSN (`epoch << 40 | lsn`).
  static uint64_t EpochLsn(uint64_t epoch, uint64_t lsn);

  /// \brief True iff `dir` holds a sharded-store manifest.
  static bool IsShardedStore(const std::string& dir);

 private:
  struct SpecOp;
  struct ExecOp;
  struct CompactOp;

  /// One shard's append queue. Heap-held (array behind unique_ptr) so
  /// drain tasks can hold stable pointers across moves of the owner.
  struct ShardQueue {
    std::mutex mu;
    /// Intrusive FIFO of ops awaiting the next drain.
    store_detail::PendingOp* head = nullptr;
    store_detail::PendingOp* tail = nullptr;
    /// True while a drain task for this queue is scheduled or running;
    /// guarantees the single-writer-per-shard invariant.
    bool scheduled = false;
  };

  /// Writer-pool state shared by all queues. `pool` is declared last
  /// so its destructor (which drains in-flight tasks) runs while the
  /// queues and counters are still alive.
  struct WriterState {
    explicit WriterState(int num_shards, int threads)
        : queues(std::make_unique<ShardQueue[]>(
              static_cast<size_t>(num_shards))),
          pool(threads) {}

    std::unique_ptr<ShardQueue[]> queues;
    std::mutex mu;
    std::condition_variable drained_cv;
    int64_t pending_ops = 0;  // enqueued but not yet completed
    ThreadPool pool;
  };

  ShardedRepository(std::string dir, Options options)
      : dir_(std::move(dir)), options_(std::move(options)) {}

  /// Spins up the writer pool when `options_.writer_threads > 0`.
  void StartWriterPool();

  /// Enqueues `op` on shard `shard`'s queue (taking the queue's
  /// reference) and schedules a drain.
  void Enqueue(int shard, store_detail::PendingOp* op);

  /// Store options as passed down to individual shards (per-append
  /// sync is lifted to the batch level when a writer pool exists).
  Options ShardOptions() const;

  std::string dir_;
  /// Exclusive flock on the *root* directory (each shard additionally
  /// holds its own): a second read-write open fails before it can bump
  /// the epoch or touch any shard. Released by the kernel on process
  /// death, so a kill -9 leaves no stale lock.
  StoreDirLock lock_;
  Options options_;
  std::vector<std::unique_ptr<PersistentRepository>> shards_;
  uint64_t epoch_ = 0;
  RecoveryStats recovery_;
  std::unique_ptr<WriterState> writer_;  // after shards_: destroyed first
};

}  // namespace paw

#endif  // PAW_STORE_SHARDED_REPOSITORY_H_

#include "src/workflow/hierarchy.h"

#include <algorithm>

#include "src/common/logging.h"

namespace paw {

ExpansionHierarchy ExpansionHierarchy::Build(const Specification& spec) {
  ExpansionHierarchy h;
  h.root_ = spec.root();
  size_t n = static_cast<size_t>(spec.num_workflows());
  h.parent_.assign(n, WorkflowId::Invalid());
  h.children_.assign(n, {});
  h.depth_.assign(n, 0);
  // Children discovered in module-insertion order gives a deterministic
  // left-to-right reading of the tree (W2 before W3 in the paper example).
  for (const Workflow& w : spec.workflows()) {
    for (ModuleId mid : w.modules) {
      const Module& m = spec.module(mid);
      if (m.kind == ModuleKind::kComposite) {
        h.parent_[static_cast<size_t>(m.expansion.value())] = w.id;
        h.children_[static_cast<size_t>(w.id.value())].push_back(m.expansion);
      }
    }
  }
  // Depths via repeated parent walks (hierarchies are small).
  for (const Workflow& w : spec.workflows()) {
    int d = 0;
    WorkflowId cur = w.id;
    while (cur != h.root_ && cur.valid()) {
      cur = h.parent_[static_cast<size_t>(cur.value())];
      ++d;
    }
    h.depth_[static_cast<size_t>(w.id.value())] = d;
  }
  return h;
}

WorkflowId ExpansionHierarchy::Parent(WorkflowId w) const {
  return parent_[static_cast<size_t>(w.value())];
}

const std::vector<WorkflowId>& ExpansionHierarchy::Children(
    WorkflowId w) const {
  return children_[static_cast<size_t>(w.value())];
}

int ExpansionHierarchy::Depth(WorkflowId w) const {
  return depth_[static_cast<size_t>(w.value())];
}

int ExpansionHierarchy::Height() const {
  int h = 0;
  for (int d : depth_) h = std::max(h, d);
  return h;
}

bool ExpansionHierarchy::IsValidPrefix(const Prefix& prefix) const {
  if (!prefix.count(root_)) return false;
  for (WorkflowId w : prefix) {
    if (w.value() < 0 || w.value() >= size()) return false;
    if (w != root_ && !prefix.count(Parent(w))) return false;
  }
  return true;
}

Prefix ExpansionHierarchy::Close(const Prefix& prefix) const {
  Prefix closed;
  closed.insert(root_);
  for (WorkflowId w : prefix) {
    WorkflowId cur = w;
    while (cur.valid() && !closed.count(cur)) {
      closed.insert(cur);
      cur = (cur == root_) ? WorkflowId::Invalid() : Parent(cur);
    }
  }
  return closed;
}

Prefix ExpansionHierarchy::FullPrefix() const {
  Prefix all;
  for (int i = 0; i < size(); ++i) all.insert(WorkflowId(i));
  return all;
}

Result<std::vector<Prefix>> ExpansionHierarchy::EnumeratePrefixes(
    int max_workflows) const {
  if (size() > max_workflows) {
    return Status::FailedPrecondition(
        "hierarchy too large for exhaustive prefix enumeration");
  }
  std::vector<Prefix> out;
  // BFS over the prefix lattice: extend each prefix by one child workflow
  // not yet included. Deduplicate via set comparison.
  std::set<Prefix> seen;
  std::vector<Prefix> frontier{RootPrefix()};
  seen.insert(RootPrefix());
  while (!frontier.empty()) {
    std::vector<Prefix> next;
    for (const Prefix& p : frontier) {
      out.push_back(p);
      for (WorkflowId w : p) {
        for (WorkflowId c : Children(w)) {
          if (!p.count(c)) {
            Prefix q = p;
            q.insert(c);
            if (seen.insert(q).second) next.push_back(q);
          }
        }
      }
    }
    frontier = std::move(next);
  }
  std::sort(out.begin(), out.end(),
            [](const Prefix& a, const Prefix& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  return out;
}

Prefix ExpansionHierarchy::AccessPrefix(const Specification& spec,
                                        AccessLevel level) const {
  // Walk the tree top-down; stop descending at workflows above `level`.
  Prefix p;
  std::vector<WorkflowId> stack{root_};
  while (!stack.empty()) {
    WorkflowId w = stack.back();
    stack.pop_back();
    if (spec.workflow(w).required_level > level && w != root_) continue;
    p.insert(w);
    for (WorkflowId c : Children(w)) stack.push_back(c);
  }
  return p;
}

}  // namespace paw

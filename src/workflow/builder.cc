#include "src/workflow/builder.h"

#include "src/common/strings.h"
#include "src/workflow/validate.h"

namespace paw {

SpecBuilder::SpecBuilder(std::string name) { spec_.name_ = std::move(name); }

WorkflowId SpecBuilder::AddWorkflow(std::string code, std::string name,
                                    AccessLevel required_level) {
  WorkflowId id(static_cast<int32_t>(spec_.workflows_.size()));
  Workflow w;
  w.id = id;
  w.code = std::move(code);
  w.name = std::move(name);
  w.required_level = required_level;
  spec_.workflows_.push_back(std::move(w));
  if (!spec_.root_.valid()) spec_.root_ = id;
  return id;
}

Status SpecBuilder::SetRoot(WorkflowId w) {
  if (w.value() < 0 ||
      w.value() >= static_cast<int32_t>(spec_.workflows_.size())) {
    return Status::InvalidArgument("SetRoot: unknown workflow");
  }
  spec_.root_ = w;
  return Status::OK();
}

ModuleId SpecBuilder::AddModule(WorkflowId w, std::string code,
                                std::string name,
                                std::vector<std::string> keywords) {
  ModuleId id(static_cast<int32_t>(spec_.modules_.size()));
  Module m;
  m.id = id;
  m.code = std::move(code);
  m.name = std::move(name);
  m.kind = ModuleKind::kAtomic;
  m.workflow = w;
  m.keywords = keywords.empty() ? Tokenize(m.name) : std::move(keywords);
  spec_.modules_.push_back(std::move(m));
  if (w.value() >= 0 &&
      w.value() < static_cast<int32_t>(spec_.workflows_.size())) {
    spec_.workflows_[static_cast<size_t>(w.value())].modules.push_back(id);
  } else {
    deferred_errors_.push_back(
        Status::InvalidArgument("AddModule: unknown workflow"));
  }
  return id;
}

ModuleId SpecBuilder::AddInput(WorkflowId w, std::string code) {
  ModuleId id = AddModule(w, std::move(code), "Input", {"input"});
  spec_.modules_[static_cast<size_t>(id.value())].kind = ModuleKind::kInput;
  return id;
}

ModuleId SpecBuilder::AddOutput(WorkflowId w, std::string code) {
  ModuleId id = AddModule(w, std::move(code), "Output", {"output"});
  spec_.modules_[static_cast<size_t>(id.value())].kind = ModuleKind::kOutput;
  return id;
}

Status SpecBuilder::MakeComposite(ModuleId m, WorkflowId expansion) {
  if (m.value() < 0 ||
      m.value() >= static_cast<int32_t>(spec_.modules_.size())) {
    return Status::InvalidArgument("MakeComposite: unknown module");
  }
  if (expansion.value() < 0 ||
      expansion.value() >= static_cast<int32_t>(spec_.workflows_.size())) {
    return Status::InvalidArgument("MakeComposite: unknown workflow");
  }
  Module& mod = spec_.modules_[static_cast<size_t>(m.value())];
  if (mod.kind == ModuleKind::kInput || mod.kind == ModuleKind::kOutput) {
    return Status::InvalidArgument("I/O nodes cannot be composite");
  }
  mod.kind = ModuleKind::kComposite;
  mod.expansion = expansion;
  return Status::OK();
}

Status SpecBuilder::Connect(ModuleId src, ModuleId dst,
                            std::vector<std::string> labels) {
  auto bad = [&](const std::string& msg) {
    Status st = Status::InvalidArgument(msg);
    deferred_errors_.push_back(st);
    return st;
  };
  if (src.value() < 0 ||
      src.value() >= static_cast<int32_t>(spec_.modules_.size()) ||
      dst.value() < 0 ||
      dst.value() >= static_cast<int32_t>(spec_.modules_.size())) {
    return bad("Connect: unknown module endpoint");
  }
  if (labels.empty()) return bad("Connect: edge must carry >= 1 label");
  const Module& a = spec_.modules_[static_cast<size_t>(src.value())];
  const Module& b = spec_.modules_[static_cast<size_t>(dst.value())];
  if (a.workflow != b.workflow) {
    return bad("Connect: endpoints in different workflows (" + a.code +
               " vs " + b.code + ")");
  }
  Workflow& w = spec_.workflows_[static_cast<size_t>(a.workflow.value())];
  for (const DataflowEdge& e : w.edges) {
    if (e.src == src && e.dst == dst) {
      return bad("Connect: duplicate edge " + a.code + "->" + b.code);
    }
  }
  w.edges.push_back(DataflowEdge{src, dst, std::move(labels)});
  return Status::OK();
}

Status SpecBuilder::AddKeywords(ModuleId m,
                                const std::vector<std::string>& keywords) {
  if (m.value() < 0 ||
      m.value() >= static_cast<int32_t>(spec_.modules_.size())) {
    return Status::InvalidArgument("AddKeywords: unknown module");
  }
  Module& mod = spec_.modules_[static_cast<size_t>(m.value())];
  for (const std::string& k : keywords) {
    mod.keywords.push_back(ToLowerAscii(k));
  }
  return Status::OK();
}

Result<Specification> SpecBuilder::Build() && {
  if (!deferred_errors_.empty()) return deferred_errors_.front();
  PAW_RETURN_NOT_OK(ValidateSpecification(spec_));
  return std::move(spec_);
}

}  // namespace paw

#include "src/workflow/spec.h"

#include "src/common/logging.h"

namespace paw {

std::string_view ModuleKindName(ModuleKind kind) {
  switch (kind) {
    case ModuleKind::kAtomic:
      return "atomic";
    case ModuleKind::kComposite:
      return "composite";
    case ModuleKind::kInput:
      return "input";
    case ModuleKind::kOutput:
      return "output";
  }
  return "?";
}

Result<ModuleId> Specification::FindModule(std::string_view code) const {
  for (const Module& m : modules_) {
    if (m.code == code) return m.id;
  }
  return Status::NotFound("no module with code '" + std::string(code) + "'");
}

Result<WorkflowId> Specification::FindWorkflow(std::string_view code) const {
  for (const Workflow& w : workflows_) {
    if (w.code == code) return w.id;
  }
  return Status::NotFound("no workflow with code '" + std::string(code) +
                          "'");
}

std::vector<const DataflowEdge*> Specification::OutEdges(ModuleId m) const {
  std::vector<const DataflowEdge*> out;
  const Workflow& w = workflow(module(m).workflow);
  for (const DataflowEdge& e : w.edges) {
    if (e.src == m) out.push_back(&e);
  }
  return out;
}

std::vector<const DataflowEdge*> Specification::InEdges(ModuleId m) const {
  std::vector<const DataflowEdge*> in;
  const Workflow& w = workflow(module(m).workflow);
  for (const DataflowEdge& e : w.edges) {
    if (e.dst == m) in.push_back(&e);
  }
  return in;
}

std::vector<ModuleId> Specification::EntryModules(WorkflowId wid) const {
  const Workflow& w = workflow(wid);
  std::vector<ModuleId> entries;
  for (ModuleId m : w.modules) {
    bool has_in = false;
    for (const DataflowEdge& e : w.edges) {
      if (e.dst == m) {
        has_in = true;
        break;
      }
    }
    if (!has_in) entries.push_back(m);
  }
  return entries;
}

std::vector<ModuleId> Specification::ExitModules(WorkflowId wid) const {
  const Workflow& w = workflow(wid);
  std::vector<ModuleId> exits;
  for (ModuleId m : w.modules) {
    bool has_out = false;
    for (const DataflowEdge& e : w.edges) {
      if (e.src == m) {
        has_out = true;
        break;
      }
    }
    if (!has_out) exits.push_back(m);
  }
  return exits;
}

Specification::LocalGraph Specification::BuildLocalGraph(WorkflowId wid)
    const {
  const Workflow& w = workflow(wid);
  LocalGraph local;
  local.graph.Resize(static_cast<NodeIndex>(w.modules.size()));
  local.local_to_module = w.modules;
  for (size_t i = 0; i < w.modules.size(); ++i) {
    local.module_to_local[w.modules[i]] = static_cast<NodeIndex>(i);
  }
  for (const DataflowEdge& e : w.edges) {
    NodeIndex u = local.module_to_local.at(e.src);
    NodeIndex v = local.module_to_local.at(e.dst);
    Status st = local.graph.AddEdge(u, v);
    PAW_CHECK(st.ok()) << st.ToString();
  }
  return local;
}

ModuleId Specification::ParentModuleOf(WorkflowId w) const {
  for (const Module& m : modules_) {
    if (m.kind == ModuleKind::kComposite && m.expansion == w) return m.id;
  }
  return ModuleId::Invalid();
}

int64_t Specification::TotalEdgeLabels() const {
  int64_t total = 0;
  for (const Workflow& w : workflows_) {
    for (const DataflowEdge& e : w.edges) {
      total += static_cast<int64_t>(e.labels.size());
    }
  }
  return total;
}

}  // namespace paw

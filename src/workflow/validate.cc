#include "src/workflow/validate.h"

#include <unordered_map>
#include <unordered_set>

#include "src/graph/algorithms.h"

namespace paw {

Status ValidateSpecification(const Specification& spec) {
  if (!spec.root().valid() ||
      spec.root().value() >= spec.num_workflows()) {
    return Status::FailedPrecondition("specification has no valid root");
  }
  if (spec.workflow(spec.root()).required_level != 0) {
    return Status::FailedPrecondition("root workflow must be level 0");
  }

  // Unique codes.
  std::unordered_set<std::string> codes;
  for (const Module& m : spec.modules()) {
    if (!codes.insert("m:" + m.code).second) {
      return Status::FailedPrecondition("duplicate module code " + m.code);
    }
  }
  for (const Workflow& w : spec.workflows()) {
    if (!codes.insert("w:" + w.code).second) {
      return Status::FailedPrecondition("duplicate workflow code " + w.code);
    }
  }

  // Per-workflow checks.
  for (const Workflow& w : spec.workflows()) {
    if (w.modules.empty()) {
      return Status::FailedPrecondition("workflow " + w.code + " is empty");
    }
    int inputs = 0;
    int outputs = 0;
    for (ModuleId mid : w.modules) {
      const Module& m = spec.module(mid);
      if (m.workflow != w.id) {
        return Status::Internal("module/workflow cross-link broken for " +
                                m.code);
      }
      if (m.kind == ModuleKind::kInput) ++inputs;
      if (m.kind == ModuleKind::kOutput) ++outputs;
      if (m.kind == ModuleKind::kComposite) {
        if (!m.expansion.valid() ||
            m.expansion.value() >= spec.num_workflows()) {
          return Status::FailedPrecondition("composite " + m.code +
                                            " has no expansion");
        }
        if (m.expansion == spec.root()) {
          return Status::FailedPrecondition(
              "root workflow cannot be an expansion");
        }
      }
      if ((m.kind == ModuleKind::kInput || m.kind == ModuleKind::kOutput) &&
          w.id != spec.root()) {
        return Status::FailedPrecondition(
            "I/O node " + m.code + " outside the root workflow");
      }
    }
    if (w.id == spec.root() && (inputs != 1 || outputs != 1)) {
      return Status::FailedPrecondition(
          "root workflow must have exactly one input and one output node");
    }

    std::unordered_set<int32_t> members;
    for (ModuleId mid : w.modules) members.insert(mid.value());
    for (const DataflowEdge& e : w.edges) {
      if (!members.count(e.src.value()) || !members.count(e.dst.value())) {
        return Status::FailedPrecondition("edge endpoint outside workflow " +
                                          w.code);
      }
      if (e.labels.empty()) {
        return Status::FailedPrecondition("unlabelled edge in " + w.code);
      }
      if (spec.module(e.dst).kind == ModuleKind::kInput) {
        return Status::FailedPrecondition("edge into input node in " +
                                          w.code);
      }
      if (spec.module(e.src).kind == ModuleKind::kOutput) {
        return Status::FailedPrecondition("edge out of output node in " +
                                          w.code);
      }
    }

    Specification::LocalGraph local = spec.BuildLocalGraph(w.id);
    if (!IsAcyclic(local.graph)) {
      return Status::FailedPrecondition("workflow " + w.code +
                                        " has a dataflow cycle");
    }
  }

  // Expansion structure: every non-root workflow is the expansion of
  // exactly one composite module, and the parent map is acyclic.
  std::unordered_map<int32_t, int> expanded_by;
  for (const Module& m : spec.modules()) {
    if (m.kind == ModuleKind::kComposite) {
      ++expanded_by[m.expansion.value()];
    }
  }
  for (const Workflow& w : spec.workflows()) {
    if (w.id == spec.root()) continue;
    auto it = expanded_by.find(w.id.value());
    if (it == expanded_by.end()) {
      return Status::FailedPrecondition("workflow " + w.code +
                                        " is not reachable by tau edges");
    }
    if (it->second > 1) {
      return Status::FailedPrecondition("workflow " + w.code +
                                        " expands multiple modules");
    }
  }
  for (const Workflow& w : spec.workflows()) {
    // Walk ancestors; a cycle would loop forever, so bound by #workflows.
    WorkflowId cur = w.id;
    for (int steps = 0; steps <= spec.num_workflows(); ++steps) {
      if (cur == spec.root()) break;
      ModuleId parent = spec.ParentModuleOf(cur);
      if (!parent.valid()) {
        return Status::FailedPrecondition("workflow " +
                                          spec.workflow(cur).code +
                                          " detached from hierarchy");
      }
      cur = spec.module(parent).workflow;
      if (steps == spec.num_workflows()) {
        return Status::FailedPrecondition("tau expansion cycle detected");
      }
    }
  }

  return Status::OK();
}

}  // namespace paw

#ifndef PAW_WORKFLOW_VIEW_H_
#define PAW_WORKFLOW_VIEW_H_

/// \file view.h
/// \brief Prefix-defined views of a specification (paper Sec. 2).
///
/// Given a prefix of the expansion hierarchy, the view is the simple
/// workflow obtained by expanding the root and recursively replacing every
/// composite module whose expansion lies in the prefix by the contents of
/// that expansion. Edges into a replaced composite are rerouted to the
/// entry modules of its expansion, edges out of it to the exit modules —
/// this is what turns the W1-level edge M1 -> M2 of Fig. 1 into the
/// full-expansion edge M8 -> M9.

#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/graph/digraph.h"
#include "src/workflow/hierarchy.h"
#include "src/workflow/spec.h"

namespace paw {

/// \brief A flattened view of a specification under a prefix.
///
/// Nodes are the *visible* modules: atomic modules of expanded workflows,
/// plus composite modules whose expansion is outside the prefix (shown as
/// collapsed boxes), plus the root's I/O nodes.
class SpecView {
 public:
  /// \brief The specification this view renders.
  const Specification& spec() const { return *spec_; }

  /// \brief The prefix that defines this view.
  const Prefix& prefix() const { return prefix_; }

  /// \brief Number of visible modules.
  NodeIndex num_visible() const { return graph_.num_nodes(); }

  /// \brief ModuleId of visible node `i`.
  ModuleId visible(NodeIndex i) const {
    return visible_[static_cast<size_t>(i)];
  }

  /// \brief All visible modules in deterministic flattening order.
  const std::vector<ModuleId>& visible_modules() const { return visible_; }

  /// \brief Node index of module `m`; NotFound if not visible.
  Result<NodeIndex> IndexOf(ModuleId m) const;

  /// \brief The dataflow graph over visible nodes.
  const Digraph& graph() const { return graph_; }

  /// \brief Labels carried by visible edge `u -> v` (empty if no edge).
  const std::vector<std::string>& EdgeLabels(NodeIndex u, NodeIndex v) const;

  /// \brief True iff visible node `i` is a collapsed composite.
  bool IsCollapsed(NodeIndex i) const;

  /// \brief Atomic modules represented by visible node `i`: itself when
  /// atomic/IO, otherwise every atomic module in the collapsed subtree.
  std::vector<ModuleId> SubsumedAtomics(NodeIndex i) const;

  /// \brief Graphviz rendering with module codes and edge labels.
  std::string ToDot(const std::string& graph_name = "view") const;

 private:
  friend Result<SpecView> ExpandPrefix(const Specification&,
                                       const ExpansionHierarchy&,
                                       const Prefix&);

  const Specification* spec_ = nullptr;
  Prefix prefix_;
  std::vector<ModuleId> visible_;
  std::map<ModuleId, NodeIndex> index_of_;
  Digraph graph_;
  std::map<std::pair<NodeIndex, NodeIndex>, std::vector<std::string>>
      edge_labels_;
};

/// \brief Expands `prefix` (which must be valid for `hierarchy`) into a
/// flattened view.
Result<SpecView> ExpandPrefix(const Specification& spec,
                              const ExpansionHierarchy& hierarchy,
                              const Prefix& prefix);

/// \brief Convenience: the fully expanded view.
Result<SpecView> FullExpansion(const Specification& spec,
                               const ExpansionHierarchy& hierarchy);

}  // namespace paw

#endif  // PAW_WORKFLOW_VIEW_H_

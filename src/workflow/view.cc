#include "src/workflow/view.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/graph/dot.h"

namespace paw {
namespace {

/// Recursive flattening helper. Collects visible modules in insertion
/// order, plus rerouted edges with merged label sets.
class Flattener {
 public:
  Flattener(const Specification& spec, const Prefix& prefix)
      : spec_(spec), prefix_(prefix) {}

  struct Boundary {
    std::vector<ModuleId> entries;
    std::vector<ModuleId> exits;
  };

  /// Flattens workflow `w`; returns its visible boundary.
  Boundary FlattenWorkflow(WorkflowId w) {
    const Workflow& wf = spec_.workflow(w);
    std::map<ModuleId, Boundary> boundary_of;
    for (ModuleId mid : wf.modules) {
      const Module& m = spec_.module(mid);
      if (m.kind == ModuleKind::kComposite && prefix_.count(m.expansion)) {
        boundary_of[mid] = FlattenWorkflow(m.expansion);
      } else {
        visible.push_back(mid);
        boundary_of[mid] = Boundary{{mid}, {mid}};
      }
    }
    for (const DataflowEdge& e : wf.edges) {
      for (ModuleId x : boundary_of[e.src].exits) {
        for (ModuleId y : boundary_of[e.dst].entries) {
          AddEdge(x, y, e.labels);
        }
      }
    }
    Boundary b;
    for (ModuleId mid : spec_.EntryModules(w)) {
      const Boundary& mb = boundary_of[mid];
      b.entries.insert(b.entries.end(), mb.entries.begin(),
                       mb.entries.end());
    }
    for (ModuleId mid : spec_.ExitModules(w)) {
      const Boundary& mb = boundary_of[mid];
      b.exits.insert(b.exits.end(), mb.exits.begin(), mb.exits.end());
    }
    return b;
  }

  void AddEdge(ModuleId x, ModuleId y, const std::vector<std::string>& ls) {
    auto& labels = edges[{x, y}];
    for (const std::string& l : ls) {
      if (std::find(labels.begin(), labels.end(), l) == labels.end()) {
        labels.push_back(l);
      }
    }
    if (std::find(edge_order.begin(), edge_order.end(),
                  std::make_pair(x, y)) == edge_order.end()) {
      edge_order.emplace_back(x, y);
    }
  }

  std::vector<ModuleId> visible;
  std::map<std::pair<ModuleId, ModuleId>, std::vector<std::string>> edges;
  std::vector<std::pair<ModuleId, ModuleId>> edge_order;

 private:
  const Specification& spec_;
  const Prefix& prefix_;
};

void CollectAtomics(const Specification& spec, WorkflowId w,
                    std::vector<ModuleId>* out) {
  for (ModuleId mid : spec.workflow(w).modules) {
    const Module& m = spec.module(mid);
    if (m.kind == ModuleKind::kComposite) {
      CollectAtomics(spec, m.expansion, out);
    } else {
      out->push_back(mid);
    }
  }
}

}  // namespace

Result<NodeIndex> SpecView::IndexOf(ModuleId m) const {
  auto it = index_of_.find(m);
  if (it == index_of_.end()) {
    return Status::NotFound("module " + spec_->module(m).code +
                            " is not visible in this view");
  }
  return it->second;
}

const std::vector<std::string>& SpecView::EdgeLabels(NodeIndex u,
                                                     NodeIndex v) const {
  static const std::vector<std::string> kEmpty;
  auto it = edge_labels_.find({u, v});
  return it == edge_labels_.end() ? kEmpty : it->second;
}

bool SpecView::IsCollapsed(NodeIndex i) const {
  const Module& m = spec_->module(visible(i));
  return m.kind == ModuleKind::kComposite;
}

std::vector<ModuleId> SpecView::SubsumedAtomics(NodeIndex i) const {
  const Module& m = spec_->module(visible(i));
  if (m.kind != ModuleKind::kComposite) return {m.id};
  std::vector<ModuleId> out;
  CollectAtomics(*spec_, m.expansion, &out);
  return out;
}

std::string SpecView::ToDot(const std::string& graph_name) const {
  DotOptions opts;
  opts.name = graph_name;
  opts.node_label = [this](NodeIndex u) {
    const Module& m = spec_->module(visible(u));
    return m.code + (m.name.empty() ? "" : "\\n" + m.name);
  };
  opts.edge_label = [this](NodeIndex u, NodeIndex v) {
    std::string out;
    for (const std::string& l : EdgeLabels(u, v)) {
      if (!out.empty()) out += ", ";
      out += l;
    }
    return out;
  };
  opts.node_attrs = [this](NodeIndex u) -> std::string {
    return IsCollapsed(u) ? "shape=box3d" : "";
  };
  return paw::ToDot(graph_, opts);
}

Result<SpecView> ExpandPrefix(const Specification& spec,
                              const ExpansionHierarchy& hierarchy,
                              const Prefix& prefix) {
  if (!hierarchy.IsValidPrefix(prefix)) {
    return Status::InvalidArgument(
        "prefix is not root-containing and parent-closed");
  }
  Flattener flat(spec, prefix);
  flat.FlattenWorkflow(spec.root());

  SpecView view;
  view.spec_ = &spec;
  view.prefix_ = prefix;
  view.visible_ = flat.visible;
  view.graph_.Resize(static_cast<NodeIndex>(flat.visible.size()));
  for (size_t i = 0; i < flat.visible.size(); ++i) {
    view.index_of_[flat.visible[i]] = static_cast<NodeIndex>(i);
  }
  for (const auto& [pair, labels] : flat.edges) {
    NodeIndex u = view.index_of_.at(pair.first);
    NodeIndex v = view.index_of_.at(pair.second);
    Status st = view.graph_.AddEdge(u, v);
    if (!st.ok()) {
      return Status::Internal("view edge construction failed: " +
                              st.ToString());
    }
    view.edge_labels_[{u, v}] = labels;
  }
  return view;
}

Result<SpecView> FullExpansion(const Specification& spec,
                               const ExpansionHierarchy& hierarchy) {
  return ExpandPrefix(spec, hierarchy, hierarchy.FullPrefix());
}

}  // namespace paw

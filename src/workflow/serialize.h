#ifndef PAW_WORKFLOW_SERIALIZE_H_
#define PAW_WORKFLOW_SERIALIZE_H_

/// \file serialize.h
/// \brief Line-oriented text format for specifications.
///
/// Repositories exchange specifications in a small readable format:
///
/// \code
///   spec "disease susceptibility"
///   workflow W1 "top" level=0 root
///   workflow W2 "genetics" level=1
///   module I W1 input "Input"
///   module M1 W1 composite "Determine Genetic Susceptibility" expands=W2
///   module M3 W2 atomic "Expand SNP Set" keywords="snp;expand"
///   edge I M1 labels="SNPs;ethnicity"
/// \endcode
///
/// `Serialize` always emits workflows, then modules, then edges, so the
/// output parses in one logical order; `ParseSpecification` accepts any
/// line order and `# comments`. Round-trip is exact (asserted by tests).

#include <string>

#include "src/common/status.h"
#include "src/workflow/spec.h"

namespace paw {

/// \brief Renders `spec` in the text format above.
std::string Serialize(const Specification& spec);

/// \brief Parses the text format; validates the result.
Result<Specification> ParseSpecification(const std::string& text);

}  // namespace paw

#endif  // PAW_WORKFLOW_SERIALIZE_H_

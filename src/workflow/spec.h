#ifndef PAW_WORKFLOW_SPEC_H_
#define PAW_WORKFLOW_SPEC_H_

/// \file spec.h
/// \brief Hierarchical workflow specifications (paper Sec. 2).
///
/// A specification is a forest of simple workflow graphs connected by
/// tau-expansion edges: nodes are modules, edges carry the names of the data
/// that flow between them, and a *composite* module is defined by another
/// workflow of the same specification. The tau edges induce the expansion
/// hierarchy of Fig. 3; prefixes of that hierarchy define views (see
/// `view.h`).

#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/graph/digraph.h"

namespace paw {

/// \brief Access level: 0 is public; greater values are more privileged.
using AccessLevel = int;

/// \brief The role a module plays in its workflow.
enum class ModuleKind {
  /// An executable step with a concrete function.
  kAtomic,
  /// A module defined by a subworkflow (tau expansion).
  kComposite,
  /// The distinguished input node `I` (root workflow only).
  kInput,
  /// The distinguished output node `O` (root workflow only).
  kOutput,
};

/// \brief Short printable name of a module kind ("atomic", ...).
std::string_view ModuleKindName(ModuleKind kind);

/// \brief A module of a workflow specification.
struct Module {
  ModuleId id;
  /// Short code such as "M1"; unique within the specification.
  std::string code;
  /// Display name such as "Determine Genetic Susceptibility".
  std::string name;
  ModuleKind kind = ModuleKind::kAtomic;
  /// The workflow that contains this module.
  WorkflowId workflow;
  /// For composite modules: the workflow defining it; invalid otherwise.
  WorkflowId expansion;
  /// Search keywords. Defaults to the word tokens of `name`.
  std::vector<std::string> keywords;
};

/// \brief A labelled dataflow edge between two modules of one workflow.
struct DataflowEdge {
  ModuleId src;
  ModuleId dst;
  /// Names of the data passed along this edge, e.g. {"SNPs", "ethnicity"}.
  std::vector<std::string> labels;
};

/// \brief One level of a hierarchical specification: a simple DAG.
struct Workflow {
  WorkflowId id;
  /// Short code such as "W1"; unique within the specification.
  std::string code;
  std::string name;
  /// Minimum access level required to expand (see) the inside of this
  /// workflow. The root workflow must be level 0.
  AccessLevel required_level = 0;
  /// Modules in insertion order.
  std::vector<ModuleId> modules;
  /// Edges in insertion order (the executor's deterministic schedule
  /// follows this order).
  std::vector<DataflowEdge> edges;
};

/// \brief A complete hierarchical workflow specification.
///
/// Instances are produced by `SpecBuilder` (builder.h) which enforces the
/// structural invariants; the accessors here assume a validated spec.
class Specification {
 public:
  /// \brief Human-readable specification name.
  const std::string& name() const { return name_; }

  /// \brief The root workflow (the top-most dotted box, W1 in Fig. 1).
  WorkflowId root() const { return root_; }

  /// \brief Number of workflows.
  int num_workflows() const { return static_cast<int>(workflows_.size()); }

  /// \brief Number of modules across all workflows.
  int num_modules() const { return static_cast<int>(modules_.size()); }

  /// \brief Workflow accessor; id must be valid.
  const Workflow& workflow(WorkflowId id) const {
    return workflows_[static_cast<size_t>(id.value())];
  }

  /// \brief Module accessor; id must be valid.
  const Module& module(ModuleId id) const {
    return modules_[static_cast<size_t>(id.value())];
  }

  /// \brief All workflows in id order.
  const std::vector<Workflow>& workflows() const { return workflows_; }

  /// \brief All modules in id order.
  const std::vector<Module>& modules() const { return modules_; }

  /// \brief Module lookup by code ("M1"); NotFound if absent.
  Result<ModuleId> FindModule(std::string_view code) const;

  /// \brief Workflow lookup by code ("W2"); NotFound if absent.
  Result<WorkflowId> FindWorkflow(std::string_view code) const;

  /// \brief In-workflow dataflow edges leaving `m`, insertion order.
  std::vector<const DataflowEdge*> OutEdges(ModuleId m) const;

  /// \brief In-workflow dataflow edges entering `m`, insertion order.
  std::vector<const DataflowEdge*> InEdges(ModuleId m) const;

  /// \brief Modules of workflow `w` with no incoming in-workflow edge.
  std::vector<ModuleId> EntryModules(WorkflowId w) const;

  /// \brief Modules of workflow `w` with no outgoing in-workflow edge.
  std::vector<ModuleId> ExitModules(WorkflowId w) const;

  /// \brief The digraph of one workflow level over local indices.
  ///
  /// `local_of[i]` gives the ModuleId of local node `i` (the order of
  /// `Workflow::modules`).
  struct LocalGraph {
    Digraph graph;
    std::vector<ModuleId> local_to_module;
    std::unordered_map<ModuleId, NodeIndex> module_to_local;
  };
  LocalGraph BuildLocalGraph(WorkflowId w) const;

  /// \brief The composite module that `w` expands, or invalid for the root.
  ModuleId ParentModuleOf(WorkflowId w) const;

  /// \brief Total label-count of all dataflow edges (diagnostics).
  int64_t TotalEdgeLabels() const;

 private:
  friend class SpecBuilder;
  friend class SpecParser;

  std::string name_;
  WorkflowId root_;
  std::vector<Workflow> workflows_;
  std::vector<Module> modules_;
};

}  // namespace paw

#endif  // PAW_WORKFLOW_SPEC_H_

#include "src/workflow/serialize.h"

#include <map>
#include <sstream>
#include <vector>

#include "src/common/strings.h"
#include "src/workflow/builder.h"

namespace paw {
namespace {

std::string JoinSemis(const std::vector<std::string>& parts) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += ";";
    out += parts[i];
  }
  return out;
}

}  // namespace

std::string Serialize(const Specification& spec) {
  std::ostringstream os;
  os << "spec " << QuoteField(spec.name()) << "\n";
  for (const Workflow& w : spec.workflows()) {
    os << "workflow " << w.code << " " << QuoteField(w.name)
       << " level=" << w.required_level;
    if (w.id == spec.root()) os << " root";
    os << "\n";
  }
  for (const Workflow& w : spec.workflows()) {
    for (ModuleId mid : w.modules) {
      const Module& m = spec.module(mid);
      os << "module " << m.code << " " << w.code << " "
         << ModuleKindName(m.kind) << " " << QuoteField(m.name);
      if (m.kind == ModuleKind::kComposite) {
        os << " expands=" << spec.workflow(m.expansion).code;
      }
      if (!m.keywords.empty()) {
        os << " keywords=" << QuoteField(JoinSemis(m.keywords));
      }
      os << "\n";
    }
  }
  for (const Workflow& w : spec.workflows()) {
    for (const DataflowEdge& e : w.edges) {
      os << "edge " << spec.module(e.src).code << " "
         << spec.module(e.dst).code << " labels="
         << QuoteField(JoinSemis(e.labels)) << "\n";
    }
  }
  return os.str();
}

Result<Specification> ParseSpecification(const std::string& text) {
  struct ModuleLine {
    std::string code, wf, kind, name, expands;
    std::vector<std::string> keywords;
  };
  struct EdgeLine {
    std::string src, dst;
    std::vector<std::string> labels;
  };
  std::string spec_name;
  struct WorkflowLine {
    std::string code, name;
    AccessLevel level = 0;
    bool root = false;
  };
  std::vector<WorkflowLine> wf_lines;
  std::vector<ModuleLine> mod_lines;
  std::vector<EdgeLine> edge_lines;

  for (const std::string& raw : Split(text, '\n')) {
    std::string line(Trim(raw));
    if (line.empty() || line[0] == '#') continue;
    PAW_ASSIGN_OR_RETURN(std::vector<std::string> f, SplitFields(line));
    if (f.empty()) continue;
    const std::string& tag = f[0];
    if (tag == "spec") {
      if (f.size() < 2) return Status::InvalidArgument("spec: missing name");
      spec_name = f[1];
    } else if (tag == "workflow") {
      if (f.size() < 3) {
        return Status::InvalidArgument("workflow: need code and name");
      }
      WorkflowLine w;
      w.code = f[1];
      w.name = f[2];
      for (size_t i = 3; i < f.size(); ++i) {
        std::string v;
        if (KeyValueField(f[i], "level", &v)) {
          w.level = std::atoi(v.c_str());
        } else if (f[i] == "root") {
          w.root = true;
        } else {
          return Status::InvalidArgument("workflow: bad field " + f[i]);
        }
      }
      wf_lines.push_back(std::move(w));
    } else if (tag == "module") {
      if (f.size() < 5) {
        return Status::InvalidArgument(
            "module: need code, workflow, kind, name");
      }
      ModuleLine m;
      m.code = f[1];
      m.wf = f[2];
      m.kind = f[3];
      m.name = f[4];
      for (size_t i = 5; i < f.size(); ++i) {
        std::string v;
        if (KeyValueField(f[i], "expands", &v)) {
          m.expands = v;
        } else if (KeyValueField(f[i], "keywords", &v)) {
          if (!v.empty()) m.keywords = Split(v, ';');
        } else {
          return Status::InvalidArgument("module: bad field " + f[i]);
        }
      }
      mod_lines.push_back(std::move(m));
    } else if (tag == "edge") {
      if (f.size() < 4) {
        return Status::InvalidArgument("edge: need src, dst, labels");
      }
      EdgeLine e;
      e.src = f[1];
      e.dst = f[2];
      std::string v;
      if (!KeyValueField(f[3], "labels", &v)) {
        return Status::InvalidArgument("edge: missing labels=");
      }
      if (!v.empty()) e.labels = Split(v, ';');
      edge_lines.push_back(std::move(e));
    } else {
      return Status::InvalidArgument("unknown directive: " + tag);
    }
  }

  SpecBuilder builder(spec_name);
  std::map<std::string, WorkflowId> wf_ids;
  for (const auto& w : wf_lines) {
    if (wf_ids.count(w.code)) {
      return Status::InvalidArgument("duplicate workflow " + w.code);
    }
    wf_ids[w.code] = builder.AddWorkflow(w.code, w.name, w.level);
  }
  for (const auto& w : wf_lines) {
    if (w.root) PAW_RETURN_NOT_OK(builder.SetRoot(wf_ids.at(w.code)));
  }
  std::map<std::string, ModuleId> mod_ids;
  for (const auto& m : mod_lines) {
    auto wit = wf_ids.find(m.wf);
    if (wit == wf_ids.end()) {
      return Status::InvalidArgument("module " + m.code +
                                     ": unknown workflow " + m.wf);
    }
    if (mod_ids.count(m.code)) {
      return Status::InvalidArgument("duplicate module " + m.code);
    }
    ModuleId id;
    if (m.kind == "input") {
      id = builder.AddInput(wit->second, m.code);
    } else if (m.kind == "output") {
      id = builder.AddOutput(wit->second, m.code);
    } else if (m.kind == "atomic" || m.kind == "composite") {
      id = builder.AddModule(wit->second, m.code, m.name, m.keywords);
    } else {
      return Status::InvalidArgument("module " + m.code + ": bad kind " +
                                     m.kind);
    }
    mod_ids[m.code] = id;
  }
  for (const auto& m : mod_lines) {
    if (m.kind == "composite") {
      auto wit = wf_ids.find(m.expands);
      if (wit == wf_ids.end()) {
        return Status::InvalidArgument("module " + m.code +
                                       ": unknown expansion " + m.expands);
      }
      PAW_RETURN_NOT_OK(builder.MakeComposite(mod_ids.at(m.code),
                                              wit->second));
    }
  }
  for (const auto& e : edge_lines) {
    auto sit = mod_ids.find(e.src);
    auto dit = mod_ids.find(e.dst);
    if (sit == mod_ids.end() || dit == mod_ids.end()) {
      return Status::InvalidArgument("edge references unknown module: " +
                                     e.src + "->" + e.dst);
    }
    PAW_RETURN_NOT_OK(builder.Connect(sit->second, dit->second, e.labels));
  }
  return std::move(builder).Build();
}

}  // namespace paw

#ifndef PAW_WORKFLOW_BUILDER_H_
#define PAW_WORKFLOW_BUILDER_H_

/// \file builder.h
/// \brief Fluent construction of validated workflow specifications.
///
/// Example (a two-level specification):
/// \code
///   SpecBuilder b("demo");
///   WorkflowId w1 = b.AddWorkflow("W1", "top", /*required_level=*/0);
///   ModuleId in = b.AddInput(w1);
///   ModuleId m1 = b.AddModule(w1, "M1", "Align Reads");
///   ModuleId out = b.AddOutput(w1);
///   WorkflowId w2 = b.AddWorkflow("W2", "align internals", 1);
///   b.MakeComposite(m1, w2);
///   ModuleId m2 = b.AddModule(w2, "M2", "Trim");
///   b.Connect(in, m1, {"reads"});
///   b.Connect(m1, out, {"alignment"});
///   Result<Specification> spec = std::move(b).Build();
/// \endcode

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/workflow/spec.h"

namespace paw {

/// \brief Incrementally builds a `Specification`; `Build()` validates.
class SpecBuilder {
 public:
  /// Creates a builder for a specification with the given name.
  explicit SpecBuilder(std::string name);

  /// \brief Adds a workflow level. The first workflow added becomes the
  /// root unless `SetRoot` overrides it.
  WorkflowId AddWorkflow(std::string code, std::string name = "",
                         AccessLevel required_level = 0);

  /// \brief Chooses the root workflow.
  Status SetRoot(WorkflowId w);

  /// \brief Adds an atomic module to `w`.
  ///
  /// `keywords` defaults to the word tokens of `name` when empty.
  ModuleId AddModule(WorkflowId w, std::string code, std::string name,
                     std::vector<std::string> keywords = {});

  /// \brief Adds the distinguished input node (code "I").
  ModuleId AddInput(WorkflowId w, std::string code = "I");

  /// \brief Adds the distinguished output node (code "O").
  ModuleId AddOutput(WorkflowId w, std::string code = "O");

  /// \brief Declares `m` composite, defined by workflow `expansion`
  /// (the tau edge of Fig. 1).
  Status MakeComposite(ModuleId m, WorkflowId expansion);

  /// \brief Adds dataflow edge `src -> dst` carrying `labels`.
  ///
  /// Both endpoints must belong to the same workflow; `labels` must be
  /// non-empty.
  Status Connect(ModuleId src, ModuleId dst, std::vector<std::string> labels);

  /// \brief Appends extra search keywords to module `m`.
  Status AddKeywords(ModuleId m, const std::vector<std::string>& keywords);

  /// \brief Finishes construction. Runs `ValidateSpecification`; on error
  /// the builder's partial state is discarded.
  Result<Specification> Build() &&;

 private:
  Specification spec_;
  std::vector<Status> deferred_errors_;
};

}  // namespace paw

#endif  // PAW_WORKFLOW_BUILDER_H_

#ifndef PAW_WORKFLOW_HIERARCHY_H_
#define PAW_WORKFLOW_HIERARCHY_H_

/// \file hierarchy.h
/// \brief The expansion hierarchy (paper Fig. 3) and its prefixes.
///
/// Tau expansions arrange the workflows of a specification into a rooted
/// tree. A *prefix* of that tree (a subtree containing the root, closed
/// under parents) defines a view of the specification: workflows inside the
/// prefix are expanded, everything below stays collapsed inside composite
/// modules. Access views (paper Sec. 2) are level-maximal prefixes.

#include <set>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/workflow/spec.h"

namespace paw {

/// \brief A prefix of the expansion hierarchy: the set of expanded
/// workflows. Always contains the root of a valid hierarchy.
using Prefix = std::set<WorkflowId>;

/// \brief Rooted tree over the workflows of a specification.
class ExpansionHierarchy {
 public:
  /// \brief Builds the hierarchy of a validated specification.
  static ExpansionHierarchy Build(const Specification& spec);

  /// \brief The root workflow.
  WorkflowId root() const { return root_; }

  /// \brief Parent workflow (invalid for the root).
  WorkflowId Parent(WorkflowId w) const;

  /// \brief Child workflows in module-insertion order.
  const std::vector<WorkflowId>& Children(WorkflowId w) const;

  /// \brief Depth of `w` (root = 0).
  int Depth(WorkflowId w) const;

  /// \brief Height of the whole tree (single workflow = 0).
  int Height() const;

  /// \brief Number of workflows.
  int size() const { return static_cast<int>(parent_.size()); }

  /// \brief True iff `prefix` contains the root and is parent-closed.
  bool IsValidPrefix(const Prefix& prefix) const;

  /// \brief Adds all ancestors of the members of `prefix` (and the root),
  /// producing the smallest valid prefix containing `prefix`.
  Prefix Close(const Prefix& prefix) const;

  /// \brief The trivial prefix `{root}`.
  Prefix RootPrefix() const { return Prefix{root_}; }

  /// \brief The full prefix containing every workflow.
  Prefix FullPrefix() const;

  /// \brief Every valid prefix, smallest first (by size, then lexicographic).
  ///
  /// Exponential in the number of workflows; intended for the small
  /// hierarchies of specifications (the keyword-search lattice). Returns
  /// FailedPrecondition when the hierarchy has more than `max_workflows`
  /// nodes.
  Result<std::vector<Prefix>> EnumeratePrefixes(int max_workflows = 20) const;

  /// \brief The maximal prefix all of whose workflows have
  /// `required_level <= level`: the access view of a principal (Sec. 2).
  Prefix AccessPrefix(const Specification& spec, AccessLevel level) const;

 private:
  WorkflowId root_;
  std::vector<WorkflowId> parent_;                 // by workflow id
  std::vector<std::vector<WorkflowId>> children_;  // by workflow id
  std::vector<int> depth_;                         // by workflow id
};

}  // namespace paw

#endif  // PAW_WORKFLOW_HIERARCHY_H_

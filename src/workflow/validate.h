#ifndef PAW_WORKFLOW_VALIDATE_H_
#define PAW_WORKFLOW_VALIDATE_H_

/// \file validate.h
/// \brief Structural invariants of a hierarchical specification.
///
/// Checked invariants:
///  - a valid root exists; its required level is 0;
///  - every workflow graph is a DAG with at least one module;
///  - I/O nodes appear only in the root; the root has exactly one of each;
///  - tau expansions form a tree rooted at the root workflow (every
///    non-root workflow is the expansion of exactly one composite module,
///    and no workflow is its own ancestor);
///  - every composite module has a valid expansion;
///  - edges stay within one workflow, carry at least one label, and do not
///    enter inputs or leave outputs;
///  - module/workflow codes are unique.

#include "src/common/status.h"
#include "src/workflow/spec.h"

namespace paw {

/// \brief Verifies all invariants above; OK when `spec` is well-formed.
Status ValidateSpecification(const Specification& spec);

}  // namespace paw

#endif  // PAW_WORKFLOW_VALIDATE_H_

#include "src/server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/common/thread_pool.h"
#include "src/common/timer.h"
#include "src/privacy/access_control.h"
#include "src/privacy/data_privacy.h"
#include "src/privacy/policy_text.h"
#include "src/provenance/serialize.h"
#include "src/query/engine.h"
#include "src/server/replication.h"
#include "src/server/wire.h"
#include "src/store/sharded_repository.h"
#include "src/workflow/serialize.h"

namespace paw {
namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string FormatMs(int64_t us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(us) / 1e3);
  return buf;
}

// ---- Metrics ---------------------------------------------------------------

constexpr size_t kNumOpcodes =
    static_cast<size_t>(wire::Opcode::kTraceDump) + 1;

std::string OpcodeMetricName(const char* family, size_t op) {
  return std::string(family) + "{opcode=\"" +
         std::string(wire::OpcodeName(static_cast<wire::Opcode>(op))) +
         "\"}";
}

/// Per-opcode counter family: the full array registers on first use so
/// the per-request path is an index + relaxed add, never the registry
/// mutex.
Counter& RequestsTotal(wire::Opcode op) {
  static std::array<Counter*, kNumOpcodes>& counters = *[] {
    auto* a = new std::array<Counter*, kNumOpcodes>();
    for (size_t i = 0; i < kNumOpcodes; ++i) {
      (*a)[i] = &MetricsRegistry::Global().GetCounter(
          OpcodeMetricName("paw_server_requests_total", i));
    }
    return a;
  }();
  const size_t i = static_cast<size_t>(op);
  return *counters[i < kNumOpcodes ? i : 0];
}

Counter& RequestErrorsTotal(wire::Opcode op) {
  static std::array<Counter*, kNumOpcodes>& counters = *[] {
    auto* a = new std::array<Counter*, kNumOpcodes>();
    for (size_t i = 0; i < kNumOpcodes; ++i) {
      (*a)[i] = &MetricsRegistry::Global().GetCounter(
          OpcodeMetricName("paw_server_errors_total", i));
    }
    return a;
  }();
  const size_t i = static_cast<size_t>(op);
  return *counters[i < kNumOpcodes ? i : 0];
}

Histogram& RequestSeconds(wire::Opcode op) {
  static std::array<Histogram*, kNumOpcodes>& hists = *[] {
    auto* a = new std::array<Histogram*, kNumOpcodes>();
    for (size_t i = 0; i < kNumOpcodes; ++i) {
      (*a)[i] = &MetricsRegistry::Global().GetLatencyHistogram(
          OpcodeMetricName("paw_server_request_seconds", i));
    }
    return a;
  }();
  const size_t i = static_cast<size_t>(op);
  return *hists[i < kNumOpcodes ? i : 0];
}

Counter& BytesInTotal() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("paw_server_bytes_in_total");
  return c;
}

Counter& BytesOutTotal() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("paw_server_bytes_out_total");
  return c;
}

Gauge& ConnectionsGauge() {
  static Gauge& g =
      MetricsRegistry::Global().GetGauge("paw_server_connections");
  return g;
}

Counter& ConnectionsTotal() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("paw_server_connections_total");
  return c;
}

Counter& BackpressureDropsTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "paw_server_backpressure_drops_total");
  return c;
}

Counter& AuthSessionsTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "paw_server_auth_sessions_total");
  return c;
}

Counter& AuthFailuresTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "paw_server_auth_failures_total");
  return c;
}

Counter& BadFramesTotal() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("paw_server_bad_frames_total");
  return c;
}

Counter& IdleClosedTotal() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("paw_server_idle_closed_total");
  return c;
}

Counter& SlowQueriesTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "paw_server_slow_queries_total");
  return c;
}

Counter& EngineRebuildsTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "paw_query_engine_rebuilds_total");
  return c;
}

Histogram& EngineRebuildSeconds() {
  static Histogram& h = MetricsRegistry::Global().GetLatencyHistogram(
      "paw_query_engine_rebuild_seconds");
  return h;
}

/// Lease accounting: E12 and the concurrent server test assert that the
/// exclusive counter stays flat across a query-only phase — the proof
/// that reads no longer serialize against ingest.
Counter& LeaseSharedTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "paw_server_lease_shared_total");
  return c;
}

Counter& LeaseExclusiveTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "paw_server_lease_exclusive_total");
  return c;
}

Histogram& LeaseWaitSeconds() {
  static Histogram& h = MetricsRegistry::Global().GetLatencyHistogram(
      "paw_server_lease_wait_seconds");
  return h;
}

Status ErrnoStatus(const std::string& op) {
  return Status::Internal(op + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl O_NONBLOCK");
  }
  return Status::OK();
}

// ---- Poller ----------------------------------------------------------------

/// One readiness event; read interest is always on.
struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;
};

/// Minimal readiness-multiplexer interface so the event loop runs
/// unchanged over epoll (Linux default) and poll(2) (portable
/// fallback, also selectable for tests via `ServerOptions::use_poll`).
class Poller {
 public:
  virtual ~Poller() = default;
  virtual Status Add(int fd, bool want_write) = 0;
  virtual Status Mod(int fd, bool want_write) = 0;
  virtual void Del(int fd) = 0;
  virtual Result<std::vector<PollEvent>> Wait(int timeout_ms) = 0;
};

class PollPoller : public Poller {
 public:
  Status Add(int fd, bool want_write) override {
    interest_[fd] = want_write;
    return Status::OK();
  }
  Status Mod(int fd, bool want_write) override {
    interest_[fd] = want_write;
    return Status::OK();
  }
  void Del(int fd) override { interest_.erase(fd); }

  Result<std::vector<PollEvent>> Wait(int timeout_ms) override {
    fds_.clear();
    for (const auto& [fd, want_write] : interest_) {
      short events = POLLIN;
      if (want_write) events |= POLLOUT;
      fds_.push_back(pollfd{fd, events, 0});
    }
    const int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return std::vector<PollEvent>{};
      return ErrnoStatus("poll");
    }
    std::vector<PollEvent> out;
    for (const pollfd& p : fds_) {
      if (p.revents == 0) continue;
      PollEvent e;
      e.fd = p.fd;
      e.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
      e.writable = (p.revents & POLLOUT) != 0;
      e.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
      out.push_back(e);
    }
    return out;
  }

 private:
  std::unordered_map<int, bool> interest_;
  std::vector<pollfd> fds_;
};

#ifdef __linux__
class EpollPoller : public Poller {
 public:
  static Result<std::unique_ptr<EpollPoller>> Create() {
    int fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (fd < 0) return ErrnoStatus("epoll_create1");
    return std::unique_ptr<EpollPoller>(new EpollPoller(fd));
  }
  ~EpollPoller() override { ::close(epfd_); }

  Status Add(int fd, bool want_write) override {
    return Ctl(EPOLL_CTL_ADD, fd, want_write);
  }
  Status Mod(int fd, bool want_write) override {
    return Ctl(EPOLL_CTL_MOD, fd, want_write);
  }
  void Del(int fd) override {
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  }

  Result<std::vector<PollEvent>> Wait(int timeout_ms) override {
    epoll_event events[128];
    const int n = ::epoll_wait(epfd_, events, 128, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return std::vector<PollEvent>{};
      return ErrnoStatus("epoll_wait");
    }
    std::vector<PollEvent> out;
    out.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      PollEvent e;
      e.fd = events[i].data.fd;
      e.readable = (events[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      e.writable = (events[i].events & EPOLLOUT) != 0;
      e.error = (events[i].events & EPOLLERR) != 0;
      out.push_back(e);
    }
    return out;
  }

 private:
  explicit EpollPoller(int fd) : epfd_(fd) {}
  Status Ctl(int op, int fd, bool want_write) {
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    if (::epoll_ctl(epfd_, op, fd, &ev) != 0) {
      return ErrnoStatus("epoll_ctl");
    }
    return Status::OK();
  }
  int epfd_;
};
#endif  // __linux__

/// Backpressure limits: a client that pipelines without ever reading
/// responses (or floods frames faster than the store drains them)
/// would otherwise grow the connection's queues without bound. Beyond
/// these caps the connection is dropped — protocol abuse, not load.
constexpr size_t kMaxQueuedFrames = 16384;
constexpr size_t kMaxOutputBacklogBytes = 64u << 20;

Result<std::unique_ptr<Poller>> MakePoller(bool use_poll) {
#ifdef __linux__
  if (!use_poll) {
    auto poller = EpollPoller::Create();
    if (!poller.ok()) return poller.status();
    return std::unique_ptr<Poller>(std::move(poller).value());
  }
#else
  (void)use_poll;
#endif
  return std::unique_ptr<Poller>(std::make_unique<PollPoller>());
}

// ---- Store abstraction ------------------------------------------------------

/// Where a stored spec lives (store-layout-neutral).
struct SpecLoc {
  int shard = 0;
  int id = -1;
};

/// Uniform server-side facade over the two store layouts. The server's
/// lease discipline (see server.h) supplies the concurrency contract:
/// `AddExecutionAsync` may be called concurrently (shared lease), and
/// `repo()` reads are safe concurrently with appends when they go
/// through pinned `RepositoryView`s (which is how the query engines
/// read); `AddSpec`/`Compact` run only under the exclusive lease after
/// `Drain`.
class ServerStore {
 public:
  virtual ~ServerStore() = default;
  virtual int num_shards() const = 0;
  virtual const Repository& repo(int shard) const = 0;
  /// Exclusive lease only.
  virtual Result<SpecLoc> AddSpec(Specification spec, PolicySet policy) = 0;
  /// Shared lease; ack implies the store's durability mode.
  virtual StoreFuture<ExecutionId> AddExecutionAsync(const SpecLoc& loc,
                                                     Execution exec) = 0;
  virtual void Drain() = 0;
  virtual Status Sync() = 0;
  virtual Status Compact() = 0;
  /// Shard LSN rendered globally (epoch-prefixed for sharded stores).
  /// An atomic read — safe to call concurrently with appends.
  virtual uint64_t GlobalLsn(int shard) const = 0;
  /// Raw per-shard WAL LSN — the unit replication speaks (never
  /// epoch-prefixed). An atomic read.
  virtual uint64_t ShardLsn(int shard) const = 0;
  /// One shard's WAL, for commit-sink installation and retention-floor
  /// moves (replication only).
  virtual WriteAheadLog* ShardWal(int shard) = 0;
  /// Follower apply path: appends one replicated record to the shard's
  /// own WAL with identical framing and replays it (see
  /// `PersistentRepository::ApplyReplicated`). Caller is the single
  /// replication apply thread under the server's lease discipline.
  virtual Result<uint64_t> ApplyReplicated(int shard, RecordType type,
                                           std::string_view payload) = 0;
};

/// Single-directory store: appends are serialized on an internal
/// mutex (the underlying repository is single-writer); with
/// `sync_each_append` the WAL's own group commit still collapses the
/// fsyncs of concurrently blocked callers.
class SingleServerStore : public ServerStore {
 public:
  explicit SingleServerStore(PersistentRepository store)
      : store_(std::move(store)) {}

  int num_shards() const override { return 1; }
  const Repository& repo(int) const override { return store_.repo(); }

  Result<SpecLoc> AddSpec(Specification spec, PolicySet policy) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto id = store_.AddSpecification(std::move(spec), std::move(policy));
    if (!id.ok()) return id.status();
    return SpecLoc{0, id.value()};
  }

  StoreFuture<ExecutionId> AddExecutionAsync(const SpecLoc& loc,
                                             Execution exec) override {
    std::lock_guard<std::mutex> lock(mu_);
    return MakeReadyFuture<ExecutionId>(
        store_.AddExecution(loc.id, std::move(exec)));
  }

  void Drain() override {}
  Status Sync() override {
    std::lock_guard<std::mutex> lock(mu_);
    return store_.Sync();
  }
  Status Compact() override {
    std::lock_guard<std::mutex> lock(mu_);
    return store_.Compact();
  }
  uint64_t GlobalLsn(int) const override { return store_.lsn(); }
  uint64_t ShardLsn(int) const override { return store_.lsn(); }
  WriteAheadLog* ShardWal(int) override { return store_.mutable_wal(); }
  Result<uint64_t> ApplyReplicated(int, RecordType type,
                                   std::string_view payload) override {
    std::lock_guard<std::mutex> lock(mu_);
    return store_.ApplyReplicated(type, payload);
  }

 private:
  std::mutex mu_;
  PersistentRepository store_;
};

/// Sharded store: appends ride the per-shard writer queues, so many
/// connections' requests batch into one group commit per shard drain.
class ShardedServerStore : public ServerStore {
 public:
  explicit ShardedServerStore(ShardedRepository store)
      : store_(std::move(store)) {}

  int num_shards() const override { return store_.num_shards(); }
  const Repository& repo(int shard) const override {
    return store_.shard(shard).repo();
  }

  Result<SpecLoc> AddSpec(Specification spec, PolicySet policy) override {
    auto ref = store_.AddSpecification(std::move(spec), std::move(policy));
    if (!ref.ok()) return ref.status();
    return SpecLoc{ref.value().shard, ref.value().id};
  }

  StoreFuture<ExecutionId> AddExecutionAsync(const SpecLoc& loc,
                                             Execution exec) override {
    return store_.AddExecutionAsync({loc.shard, loc.id}, std::move(exec));
  }

  void Drain() override { store_.Drain(); }
  Status Sync() override { return store_.Sync(); }
  Status Compact() override {
    PAW_RETURN_NOT_OK(store_.CompactAsync());
    return store_.WaitForCompaction();
  }
  uint64_t GlobalLsn(int shard) const override {
    return ShardedRepository::EpochLsn(store_.epoch(),
                                       store_.shard(shard).lsn());
  }
  uint64_t ShardLsn(int shard) const override {
    return store_.shard(shard).lsn();
  }
  WriteAheadLog* ShardWal(int shard) override {
    return store_.shard(shard).mutable_wal();
  }
  Result<uint64_t> ApplyReplicated(int shard, RecordType type,
                                   std::string_view payload) override {
    // The replication apply thread is the only writer on a follower
    // (write opcodes are rejected), so bypassing the writer queues
    // preserves the per-shard single-writer contract.
    return store_.shard(shard).ApplyReplicated(type, payload);
  }

 private:
  ShardedRepository store_;
};

// ---- Connection ------------------------------------------------------------

/// A parsed frame plus the monotonic microsecond stamp of when the
/// event loop finished parsing it — the start of the request's
/// latency span (queueing behind earlier frames counts as latency).
struct PendingFrame {
  wire::Frame frame;
  int64_t recv_us = 0;
};

/// Timestamps of the current request's milestones, carried on the
/// connection (frames of one connection are processed serially by one
/// worker, so a single slot suffices). `recv_us` is always stamped;
/// handlers that take the store lease stamp `lease_us`, engine-backed
/// handlers stamp `engine_us` after the engine returned, and
/// `Respond` stamps `reply_us` and closes the span.
struct RequestTrace {
  int64_t recv_us = 0;
  int64_t lease_us = 0;
  int64_t engine_us = 0;
  int64_t reply_us = 0;
};

/// Per-connection state. The event loop owns `fd`, `in`, `out`, and
/// `want_write`; everything under `mu` is shared with the worker that
/// processes this connection's frames.
struct Connection : std::enable_shared_from_this<Connection> {
  int fd = -1;
  int64_t last_active_ms = 0;
  /// Monotonic stamp of the accept(2), for connection-age traces.
  int64_t accept_us = 0;
  /// Server-unique id; doubles as the replication subscriber token.
  uint64_t id = 0;
  /// Set once this connection SUBSCRIBEd as a replication follower:
  /// its incoming kReplicate frames are acks (not requests), and the
  /// idle timeout is waived — a caught-up follower is quiet by design.
  std::atomic<bool> subscriber{false};

  // Event-loop-only:
  std::string in;
  std::string out;
  bool want_write = false;

  std::mutex mu;
  /// Parsed frames awaiting processing (FIFO).
  std::deque<PendingFrame> frames;
  /// True while a worker task owns this connection's frame queue —
  /// frames of one connection are processed serially, in order.
  bool processing = false;
  /// Responses produced by the worker, awaiting the event loop.
  std::string pending_out;
  /// Set by the event loop when it drops the connection; the worker
  /// then discards output instead of queueing it.
  bool closed = false;
  /// Set by the worker on fatal protocol errors: flush, then close.
  /// Atomic because the worker writes it outside `mu` while the event
  /// loop polls it.
  std::atomic<bool> close_after_flush{false};

  // Session state (worker-only once handshake frames are serialized).
  bool hello_done = false;
  uint8_t version = wire::kProtocolVersion;
  bool authed = false;
  PrincipalId principal;
  AccessLevel level = 0;
  /// Principal name from the AUTH request (slow-query log attribution).
  std::string principal_name;
  /// Principal's cache/sharing group (audit-event attribution).
  std::string group;
  /// Milestones of the request currently being handled.
  RequestTrace trace;
  /// Trace context of the request currently being handled: the
  /// client's wire-propagated context, or a server-rooted one when the
  /// peer sent none (v1 connection).
  TraceContext trace_ctx;
};

}  // namespace

// ---- PawServer::Impl --------------------------------------------------------

struct PawServer::Impl {
  std::string dir;
  ServerOptions options;

  std::unique_ptr<ServerStore> store;
  AccessControl acl;
  AccessLevel admin_level = 100;
  /// Effective slow-query threshold (ms); < 0 disables the log.
  int slow_query_ms = 100;
  /// Slow-query log rate limit, keyed on (opcode, principal): micros
  /// timestamp of the last emitted line for the key (0 = never), and
  /// how many slow requests of that key were counted but not logged
  /// since then. A deep pipelined burst makes every queued request
  /// "slow" at once; logging each one would flood stderr and distort
  /// the very latencies being reported. Keying on the principal too
  /// means one tenant's burst cannot silence another tenant's slow
  /// queries (and the suppressed= carry stays per-key). Keys hash into
  /// a fixed table; a collision just makes two keys share one limiter,
  /// which is benign for a log rate limit.
  struct SlowLogSlot {
    std::atomic<int64_t> last_us{0};
    std::atomic<uint64_t> suppressed{0};
  };
  static constexpr size_t kSlowLogSlots = 128;
  std::array<SlowLogSlot, kSlowLogSlots> slow_log_slots;

  static size_t SlowLogSlotIndex(wire::Opcode op,
                                 const std::string& principal) {
    size_t h = std::hash<std::string>{}(principal);
    h ^= (static_cast<size_t>(op) + 1) * size_t{0x9e3779b97f4a7c15ULL};
    return h % kSlowLogSlots;
  }

  /// The "g=<group>@<level>" attribution every audit event carries.
  static std::string AuditWho(const Connection* conn) {
    return "g=" + (conn->group.empty() ? std::string("-") : conn->group) +
           "@" + std::to_string(conn->level);
  }

  /// The store lease: appends AND queries take it shared — queries
  /// serve from per-engine pinned MVCC views, so they need no quiescent
  /// store. Only spec ingest and compaction take it exclusive (and
  /// drain first): ADD_SPEC because the registry pin requires a settled
  /// entry vector, COMPACT because it folds store files under readers.
  std::shared_mutex lease;

  /// name -> location + pinned entry pointer (entries are immutable
  /// and address-stable, so a registry hit never touches the shard's
  /// entry vector — the part that races with appends).
  std::mutex reg_mu;
  struct SpecInfo {
    SpecLoc loc;
    const SpecEntry* entry = nullptr;
  };
  std::unordered_map<std::string, SpecInfo> registry;

  /// Per-shard query engines, built once at startup. Each engine pins
  /// its own MVCC view of the shard and catches up incrementally (by
  /// the repository mutation epoch) inside its query entry points, so
  /// the server never rebuilds or swaps engines while serving.
  std::vector<std::unique_ptr<QueryEngine>> engines;

  /// Leader-side replication stream manager (null on followers).
  std::unique_ptr<ReplicationManager> repl;
  /// Follower-side connect/subscribe/apply loop (null on leaders).
  std::unique_ptr<ReplicationFollower> follower;
  /// True when `options.follow_host` is set: this pawd is a read-only
  /// replica and rejects write opcodes.
  bool is_follower = false;
  std::atomic<uint64_t> next_conn_id{1};

  int listen_fd = -1;
  int port = 0;
  int wake_read = -1;
  int wake_write = -1;
  /// Reserved descriptor sacrificed to accept-and-close when the
  /// process runs out of fds (see AcceptAll).
  int reserve_fd = -1;
  std::unique_ptr<Poller> poller;
  std::unordered_map<int, std::shared_ptr<Connection>> conns;
  std::atomic<int> live_conns{0};

  std::atomic<bool> stopping{false};
  std::atomic<bool> stopped{false};
  Stats stats;

  /// Workers before loop_thread: the loop must still be alive while
  /// workers run; destruction order (reverse) tears the loop down
  /// after the pool drained.
  std::unique_ptr<ThreadPool> workers;
  std::thread loop_thread;

  ~Impl() { StopInternal(); }

  // ---- lifecycle ----

  Status Listen() {
    listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd < 0) return ErrnoStatus("socket");
    int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(options.port));
    if (::inet_pton(AF_INET, options.bind_address.c_str(),
                    &addr.sin_addr) != 1) {
      return Status::InvalidArgument("bad bind address " +
                                     options.bind_address);
    }
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return ErrnoStatus("bind " + options.bind_address + ":" +
                         std::to_string(options.port));
    }
    if (::listen(listen_fd, 128) != 0) return ErrnoStatus("listen");
    PAW_RETURN_NOT_OK(SetNonBlocking(listen_fd));
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0) {
      return ErrnoStatus("getsockname");
    }
    port = ntohs(bound.sin_port);
    return Status::OK();
  }

  void StopInternal() {
    if (stopped.exchange(true)) return;
    // Follower first: its apply thread takes the lease and writes the
    // store, so it must be quiet before teardown.
    if (follower != nullptr) follower->Stop();
    stopping.store(true, std::memory_order_release);
    Wake();
    if (loop_thread.joinable()) loop_thread.join();
    // The sender thread only appends to (now dead) connections; stop
    // it before the WAL sinks' owner goes away.
    if (repl != nullptr) repl->Stop();
    // Drain workers (their output goes nowhere now, but queued writer
    // ops must land before the store closes).
    workers.reset();
    if (store != nullptr) {
      store->Drain();
      (void)store->Sync();
    }
    if (listen_fd >= 0) ::close(listen_fd);
    if (wake_read >= 0) ::close(wake_read);
    if (wake_write >= 0) ::close(wake_write);
    if (reserve_fd >= 0) ::close(reserve_fd);
    listen_fd = wake_read = wake_write = reserve_fd = -1;
  }

  void Wake() {
    if (wake_write < 0) return;
    const char byte = 1;
    (void)!::write(wake_write, &byte, 1);
  }

  // ---- registry / engines ----

  void BuildRegistry() {
    std::lock_guard<std::mutex> lock(reg_mu);
    registry.clear();
    for (int s = 0; s < store->num_shards(); ++s) {
      const Repository& r = repo(s);
      for (int id = 0; id < r.num_specs(); ++id) {
        const SpecEntry& entry = r.entry(id);
        registry[entry.spec.name()] = SpecInfo{{s, id}, &entry};
      }
    }
  }

  const Repository& repo(int shard) const { return store->repo(shard); }

  Result<SpecInfo> FindSpec(const std::string& name) {
    std::lock_guard<std::mutex> lock(reg_mu);
    auto it = registry.find(name);
    if (it == registry.end()) {
      return Status::NotFound("no spec named \"" + name + "\"");
    }
    return it->second;
  }

  /// Builds the per-shard engines once, at startup (store quiescent).
  /// From then on engines maintain themselves with view/index deltas;
  /// there is no rebuild-on-dirty path (and no count heuristic to get
  /// it wrong) on the serving side.
  void BuildEngines() {
    if (options.view_cache_bytes > 0) {
      PrivacyViewCache::Global().set_byte_budget(options.view_cache_bytes);
    }
    EngineOptions engine_options;
    engine_options.view_cache = options.enable_view_cache;
    engines.resize(static_cast<size_t>(store->num_shards()));
    for (int s = 0; s < store->num_shards(); ++s) {
      Timer rebuild_timer;
      engines[static_cast<size_t>(s)] =
          std::make_unique<QueryEngine>(repo(s), acl, engine_options);
      EngineRebuildSeconds().Observe(rebuild_timer.ElapsedMicros() / 1e6);
      EngineRebuildsTotal().Add();
    }
  }

  /// Lease acquisition helpers: count by kind and record the wait, so
  /// the exclusive-counter delta proves which paths take which lease.
  std::shared_lock<std::shared_mutex> SharedLease() {
    const int64_t start = NowMicros();
    std::shared_lock<std::shared_mutex> lock(lease);
    LeaseSharedTotal().Add();
    LeaseWaitSeconds().Observe(
        static_cast<double>(NowMicros() - start) / 1e6);
    return lock;
  }

  std::unique_lock<std::shared_mutex> ExclusiveLease() {
    const int64_t start = NowMicros();
    std::unique_lock<std::shared_mutex> lock(lease);
    LeaseExclusiveTotal().Add();
    LeaseWaitSeconds().Observe(
        static_cast<double>(NowMicros() - start) / 1e6);
    return lock;
  }

  // ---- event loop ----

  void Loop() {
    while (!stopping.load(std::memory_order_acquire)) {
      const int timeout = options.idle_timeout_ms > 0
                              ? std::min(options.idle_timeout_ms, 250)
                              : 500;
      auto events = poller->Wait(timeout);
      if (!events.ok()) {
        PAW_LOG(kError) << "pawd poller: " << events.status().ToString();
        break;
      }
      for (const PollEvent& e : events.value()) {
        if (e.fd == listen_fd) {
          AcceptAll();
        } else if (e.fd == wake_read) {
          char buf[256];
          while (::read(wake_read, buf, sizeof(buf)) > 0) {
          }
        } else {
          auto it = conns.find(e.fd);
          if (it == conns.end()) continue;
          std::shared_ptr<Connection> conn = it->second;
          if (e.error) {
            Close(conn);
            continue;
          }
          bool alive = true;
          if (e.readable) alive = ReadConn(conn);
          if (alive && e.writable) WriteConn(conn);
        }
      }
      FlushPending();
      if (options.idle_timeout_ms > 0) CloseIdle();
    }
    // Shutdown: best-effort flush of completed responses, then close.
    FlushPending();
    for (auto& [fd, conn] : conns) {
      (void)fd;
      if (!conn->out.empty()) {
        (void)!::write(conn->fd, conn->out.data(), conn->out.size());
      }
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->closed = true;
      ::close(conn->fd);
    }
    conns.clear();
  }

  void AcceptAll() {
    for (;;) {
      int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EMFILE || errno == ENFILE) {
          // Out of descriptors with a connection still pending: under
          // level-triggered polling the listen fd would stay readable
          // and spin the loop. Briefly close the reserve fd, accept
          // the connection, and close it — the peer sees a reset
          // instead of the server burning a core.
          if (reserve_fd >= 0) {
            ::close(reserve_fd);
            reserve_fd = -1;
            const int victim = ::accept(listen_fd, nullptr, nullptr);
            if (victim >= 0) ::close(victim);
            reserve_fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
            continue;
          }
        }
        return;
      }
      if (!SetNonBlocking(fd).ok()) {
        ::close(fd);
        continue;
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto conn = std::make_shared<Connection>();
      conn->fd = fd;
      conn->id = next_conn_id.fetch_add(1, std::memory_order_relaxed);
      conn->last_active_ms = NowMs();
      conn->accept_us = NowMicros();
      if (!poller->Add(fd, false).ok()) {
        ::close(fd);
        continue;
      }
      conns[fd] = std::move(conn);
      live_conns.fetch_add(1, std::memory_order_relaxed);
      stats.connections_accepted.fetch_add(1, std::memory_order_relaxed);
      ConnectionsTotal().Add();
      ConnectionsGauge().Add(1);
    }
  }

  /// Returns false when the connection was closed.
  bool ReadConn(const std::shared_ptr<Connection>& conn) {
    char buf[64 << 10];
    for (;;) {
      const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
      if (n > 0) {
        conn->in.append(buf, static_cast<size_t>(n));
        conn->last_active_ms = NowMs();
        BytesInTotal().Add(static_cast<uint64_t>(n));
        continue;
      }
      if (n == 0) {  // peer closed
        Close(conn);
        return false;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      Close(conn);
      return false;
    }
    // Parse as many whole frames as arrived.
    bool dispatched = false;
    size_t parsed = 0;
    for (;;) {
      wire::Frame frame;
      size_t consumed = 0;
      std::string error;
      const wire::ParseResult result = wire::ParseFrame(
          std::string_view(conn->in).substr(parsed), &frame, &consumed,
          &error);
      if (result == wire::ParseResult::kNeedMore) break;
      if (result == wire::ParseResult::kBad) {
        stats.bad_frames.fetch_add(1, std::memory_order_relaxed);
        BadFramesTotal().Add();
        PAW_LOG(kWarning) << "pawd: closing connection on bad frame: "
                          << error;
        Close(conn);
        return false;
      }
      parsed += consumed;
      stats.frames_received.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->frames.push_back(PendingFrame{std::move(frame), NowMicros()});
      if (!conn->processing) {
        conn->processing = true;
        dispatched = true;
      }
    }
    if (parsed > 0) conn->in.erase(0, parsed);
    // Backpressure: a peer that floods requests or never reads its
    // responses does not get to grow our queues without bound.
    {
      size_t queued, backlog;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        queued = conn->frames.size();
        backlog = conn->pending_out.size();
      }
      backlog += conn->out.size() + conn->in.size();
      if (queued > kMaxQueuedFrames || backlog > kMaxOutputBacklogBytes) {
        BackpressureDropsTotal().Add();
        PAW_LOG(kWarning)
            << "pawd: dropping connection over backpressure limits ("
            << queued << " queued frames, " << backlog
            << " backlog bytes)";
        Close(conn);
        return false;
      }
    }
    if (dispatched) {
      std::shared_ptr<Connection> c = conn;
      workers->Submit([this, c] { ProcessConnection(c); });
    }
    return true;
  }

  void WriteConn(const std::shared_ptr<Connection>& conn) {
    while (!conn->out.empty()) {
      const ssize_t n =
          ::write(conn->fd, conn->out.data(), conn->out.size());
      if (n > 0) {
        conn->out.erase(0, static_cast<size_t>(n));
        conn->last_active_ms = NowMs();
        BytesOutTotal().Add(static_cast<uint64_t>(n));
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      Close(conn);
      return;
    }
    bool close_now = false;
    if (conn->out.empty()) {
      std::lock_guard<std::mutex> lock(conn->mu);
      close_now = conn->close_after_flush && conn->pending_out.empty();
    }
    if (close_now) {
      Close(conn);
      return;
    }
    UpdateInterest(conn);
  }

  /// Moves worker output into the event-loop write buffers.
  void FlushPending() {
    for (auto it = conns.begin(); it != conns.end();) {
      std::shared_ptr<Connection> conn = it->second;
      ++it;
      bool try_write = false;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (!conn->pending_out.empty()) {
          conn->out.append(conn->pending_out);
          conn->pending_out.clear();
          try_write = true;
        } else if (conn->close_after_flush && conn->out.empty()) {
          try_write = true;  // nothing to send; WriteConn will close
        }
      }
      if (try_write) WriteConn(conn);  // may Close(conn)
    }
  }

  void UpdateInterest(const std::shared_ptr<Connection>& conn) {
    const bool want_write = !conn->out.empty();
    if (want_write != conn->want_write) {
      conn->want_write = want_write;
      (void)poller->Mod(conn->fd, want_write);
    }
  }

  void CloseIdle() {
    const int64_t now = NowMs();
    std::vector<std::shared_ptr<Connection>> idle;
    for (auto& [fd, conn] : conns) {
      (void)fd;
      // Replication subscribers are exempt: a fully caught-up follower
      // exchanges no frames, which is success, not idleness.
      if (conn->subscriber.load(std::memory_order_relaxed)) continue;
      bool busy;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        busy = conn->processing || !conn->frames.empty() ||
               !conn->pending_out.empty();
      }
      // `in` non-empty means a partially received frame (e.g. a slow
      // client trickling a pipelined append): the request is in flight
      // even though no parsed frame is queued yet, so the connection
      // is NOT idle — closing here would drop an accepted-but-unacked
      // write mid-upload.
      if (!busy && conn->in.empty() && conn->out.empty() &&
          now - conn->last_active_ms > options.idle_timeout_ms) {
        idle.push_back(conn);
      }
    }
    for (auto& conn : idle) {
      stats.idle_closed.fetch_add(1, std::memory_order_relaxed);
      IdleClosedTotal().Add();
      Close(conn);
    }
  }

  void Close(const std::shared_ptr<Connection>& conn) {
    auto it = conns.find(conn->fd);
    if (it == conns.end()) return;
    conns.erase(it);
    poller->Del(conn->fd);
    if (repl != nullptr &&
        conn->subscriber.load(std::memory_order_relaxed)) {
      repl->RemoveSubscriber(conn->id);
    }
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->closed = true;
    }
    ::close(conn->fd);
    live_conns.fetch_sub(1, std::memory_order_relaxed);
    ConnectionsGauge().Add(-1);
  }

  /// Queues one leader-pushed frame on a subscriber connection; called
  /// from the replication sender thread. Returns false once the
  /// connection is closing — the manager then fails the subscriber.
  bool PushFrame(const std::shared_ptr<Connection>& conn,
                 wire::Frame&& frame) {
    frame.version = conn->version;
    std::string bytes;
    AppendFrame(frame, &bytes);
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->closed || conn->close_after_flush) return false;
      conn->pending_out.append(bytes);
    }
    Wake();
    return true;
  }

  // ---- request processing (worker threads) ----

  void ProcessConnection(const std::shared_ptr<Connection>& conn) {
    for (;;) {
      std::vector<PendingFrame> batch;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (conn->frames.empty() || conn->closed ||
            conn->close_after_flush) {
          conn->processing = false;
          return;
        }
        batch.assign(std::make_move_iterator(conn->frames.begin()),
                     std::make_move_iterator(conn->frames.end()));
        conn->frames.clear();
      }
      std::string out;
      HandleBatch(conn.get(), batch, &out);
      bool fatal;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (!conn->closed) conn->pending_out.append(out);
        fatal = conn->close_after_flush;
      }
      Wake();
      if (fatal) {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->processing = false;
        return;
      }
    }
  }

  void Respond(Connection* conn, const wire::Frame& request,
               const Status& status, std::string body, std::string* out) {
    const size_t result_bytes = body.size();
    wire::Frame resp;
    resp.version = conn->hello_done ? conn->version
                                    : wire::kProtocolVersion;
    resp.opcode = request.opcode;
    resp.request_id = request.request_id;
    // Echo the effective context on v2 responses: a client that sent
    // no explicit id learns which trace the server filed it under.
    resp.trace = conn->trace_ctx;
    wire::AppendResponseStatus(status, &resp.payload);
    if (status.ok()) resp.payload.append(body);
    AppendFrame(resp, out);
    stats.responses_sent.fetch_add(1, std::memory_order_relaxed);
    if (status.IsPermissionDenied()) {
      stats.permission_denied.fetch_add(1, std::memory_order_relaxed);
      // Every outright refusal of an authed principal is a privacy
      // audit event — denial sites are scattered (GET_SPEC coverage,
      // COMPACT/SUBSCRIBE level checks), so record them centrally.
      if (conn->authed) {
        RecordAuditEvent(AuditVerdict::kDenied, conn->principal_name,
                         static_cast<uint8_t>(request.opcode),
                         status.message());
      }
    }
    // Request accounting + slow-query log: the span runs from frame
    // parse (queueing behind earlier pipelined frames included) to
    // the response hitting the output buffer.
    conn->trace.reply_us = NowMicros();
    const int64_t span_us = conn->trace.reply_us - conn->trace.recv_us;
    RequestsTotal(request.opcode).Add();
    if (!status.ok()) RequestErrorsTotal(request.opcode).Add();
    RequestSeconds(request.opcode)
        .Observe(static_cast<double>(span_us) / 1e6);
    const bool is_error = !status.ok();
    const bool is_slow =
        slow_query_ms >= 0 && span_us > int64_t{slow_query_ms} * 1000;
#if !defined(PAW_NO_TRACE)
    // Flight-recorder span family for the request: recorded when the
    // trace is head-sampled, and always for slow/error requests (the
    // coarse request spans can be reconstructed here at Respond time
    // from the RequestTrace stamps; only the sub-layer spans require
    // the trace to have been sampled up front).
    TraceRecorder& recorder = TraceRecorder::Global();
    const TraceContext ctx = conn->trace_ctx;
    if (ctx.valid() &&
        (is_slow || is_error || recorder.Sampled(ctx.trace_id))) {
      const RequestTrace& t = conn->trace;
      Span root;
      root.trace_id = ctx.trace_id;
      root.span_id = recorder.NewSpanId();
      root.parent_span_id = ctx.span_id;
      root.start_us = t.recv_us;
      root.end_us = t.reply_us;
      root.result_bytes = static_cast<uint32_t>(
          std::min<size_t>(result_bytes, UINT32_MAX));
      root.opcode = static_cast<uint8_t>(request.opcode);
      root.status_code = static_cast<uint8_t>(status.code());
      root.flags = static_cast<uint8_t>((is_slow ? kSpanFlagSlow : 0) |
                                        (is_error ? kSpanFlagError : 0));
      root.set_name(std::string("req.") +
                    std::string(wire::OpcodeName(request.opcode)));
      root.set_principal(conn->principal_name);
      recorder.Record(root);
      const auto child = [&](std::string_view name, int64_t from,
                             int64_t to) {
        Span s;
        s.trace_id = ctx.trace_id;
        s.span_id = recorder.NewSpanId();
        s.parent_span_id = root.span_id;
        s.start_us = from;
        s.end_us = to;
        s.opcode = root.opcode;
        s.set_name(name);
        s.set_principal(conn->principal_name);
        recorder.Record(s);
      };
      if (t.lease_us >= t.recv_us && t.lease_us > 0) {
        child("lease.wait", t.recv_us, t.lease_us);
        if (t.engine_us >= t.lease_us) {
          child("engine", t.lease_us, t.engine_us);
          child("reply", t.engine_us, t.reply_us);
        } else {
          child("reply", t.lease_us, t.reply_us);
        }
      }
    }
#endif
    if (is_slow) {
      SlowQueriesTotal().Add();
      // At most one line per (opcode, principal) per second; the
      // counter above still sees every slow request, and the next
      // emitted line for the key carries the number of its lines
      // elided since the last one.
      SlowLogSlot& slot = slow_log_slots[SlowLogSlotIndex(
          request.opcode, conn->principal_name)];
      int64_t last = slot.last_us.load(std::memory_order_relaxed);
      const bool emit =
          (last == 0 || conn->trace.reply_us - last >= 1000000) &&
          slot.last_us.compare_exchange_strong(
              last, conn->trace.reply_us, std::memory_order_relaxed);
      if (!emit) {
        slot.suppressed.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      const uint64_t suppressed =
          slot.suppressed.exchange(0, std::memory_order_relaxed);
      std::string spans;
      if (conn->trace.lease_us >= conn->trace.recv_us &&
          conn->trace.lease_us > 0) {
        spans += " lease_wait_ms=" +
                 FormatMs(conn->trace.lease_us - conn->trace.recv_us);
        if (conn->trace.engine_us >= conn->trace.lease_us) {
          spans += " engine_ms=" + FormatMs(conn->trace.engine_us -
                                            conn->trace.lease_us);
        }
      }
      PAW_LOG(kWarning)
          << "pawd: slow request id=" << request.request_id
          << " opcode=" << wire::OpcodeName(request.opcode)
          << " principal="
          << (conn->principal_name.empty() ? "-" : conn->principal_name)
          << " trace=" << TraceIdHex(conn->trace_ctx.trace_id)
          << " duration_ms=" << FormatMs(span_us)
          << " result_bytes=" << result_bytes << spans
          << (suppressed != 0
                  ? " suppressed=" + std::to_string(suppressed)
                  : "");
    }
  }

  void HandleBatch(Connection* conn,
                   std::vector<PendingFrame>& batch, std::string* out) {
    size_t i = 0;
    while (i < batch.size()) {
      // Gate: handshake and session checks happen in frame order on
      // this (single) worker, so a pipelined HELLO/AUTH prefix is
      // processed before the ops behind it.
      const wire::Frame& frame = batch[i].frame;
      conn->trace = RequestTrace{batch[i].recv_us, 0, 0, 0};
      // Adopt the client's wire-propagated trace context; a v1 peer
      // stamps none, so the server roots a fresh trace (its own spans
      // still group even without client correlation). Subscriber acks
      // keep whatever the follower echoed.
      TraceContext ctx = frame.trace;
      if (!ctx.valid() && frame.opcode != wire::Opcode::kReplicate) {
        ctx.trace_id = TraceRecorder::Global().NewTraceId();
      }
      conn->trace_ctx = ctx;
      ScopedTraceContext scoped_ctx(ctx);
      if (!conn->hello_done && frame.opcode != wire::Opcode::kHello) {
        Respond(conn, frame,
                Status::FailedPrecondition(
                    "first frame on a connection must be HELLO"),
                "", out);
        conn->close_after_flush = true;
        return;
      }
      if (conn->hello_done && frame.version != conn->version) {
        Respond(conn, frame,
                Status::FailedPrecondition(
                    "frame version " + std::to_string(frame.version) +
                    " does not match negotiated version " +
                    std::to_string(conn->version)),
                "", out);
        conn->close_after_flush = true;
        return;
      }
      if (conn->subscriber.load(std::memory_order_relaxed) &&
          frame.opcode == wire::Opcode::kReplicate) {
        // Inverted connection: this is the follower's ack to a pushed
        // batch, not a request — route it, emit no response.
        HandleReplicateAck(conn, frame);
        ++i;
        continue;
      }
      if (frame.opcode == wire::Opcode::kAddExecution && conn->authed &&
          !is_follower) {
        // Batch the whole pipelined run of appends: enqueue all, then
        // await acks in order — one shared lease acquisition, and the
        // store's group commit amortizes the fsyncs.
        size_t j = i;
        while (j < batch.size() &&
               batch[j].frame.opcode == wire::Opcode::kAddExecution &&
               batch[j].frame.version == conn->version) {
          ++j;
        }
        HandleAddExecutionRun(conn, batch, i, j, out);
        i = j;
        continue;
      }
      HandleFrame(conn, frame, out);
      ++i;
    }
  }

  void HandleFrame(Connection* conn, const wire::Frame& frame,
                   std::string* out) {
    switch (frame.opcode) {
      case wire::Opcode::kHello:
        return HandleHello(conn, frame, out);
      case wire::Opcode::kAuth:
        return HandleAuth(conn, frame, out);
      default:
        break;
    }
    if (!conn->authed) {
      Respond(conn, frame,
              Status::PermissionDenied(
                  std::string(wire::OpcodeName(frame.opcode)) +
                  " requires AUTH"),
              "", out);
      return;
    }
    if (is_follower) {
      switch (frame.opcode) {
        case wire::Opcode::kAddSpec:
        case wire::Opcode::kAddExecution:
        case wire::Opcode::kCompact:
        case wire::Opcode::kSubscribe:
          // Read-only replica: redirect-style rejection naming the
          // leader, so clients (and operators) know where writes go.
          Respond(conn, frame,
                  Status::FailedPrecondition(
                      std::string(wire::OpcodeName(frame.opcode)) +
                      " rejected: this pawd is a read-only follower of " +
                      options.follow_host + ":" +
                      std::to_string(options.follow_port) +
                      "; send writes to the leader"),
                  "", out);
          return;
        default:
          break;
      }
    }
    switch (frame.opcode) {
      case wire::Opcode::kAddSpec:
        return HandleAddSpec(conn, frame, out);
      case wire::Opcode::kAddExecution: {
        std::vector<PendingFrame> one;
        one.push_back(PendingFrame{frame, conn->trace.recv_us});
        return HandleAddExecutionRun(conn, one, 0, 1, out);
      }
      case wire::Opcode::kGetSpec:
        return HandleGetSpec(conn, frame, out);
      case wire::Opcode::kGetExecution:
        return HandleGetExecution(conn, frame, out);
      case wire::Opcode::kKeywordSearch:
        return HandleSearch(conn, frame, out);
      case wire::Opcode::kStructuralQuery:
        return HandleStructural(conn, frame, out);
      case wire::Opcode::kLineage:
        return HandleLineage(conn, frame, out);
      case wire::Opcode::kStatus:
        return HandleStatus(conn, frame, out);
      case wire::Opcode::kCompact:
        return HandleCompact(conn, frame, out);
      case wire::Opcode::kMetrics:
        return HandleMetrics(conn, frame, out);
      case wire::Opcode::kTraceDump:
        return HandleTraceDump(conn, frame, out);
      case wire::Opcode::kSubscribe:
        return HandleSubscribe(conn, frame, out);
      case wire::Opcode::kReplicate:
        // Only valid as an ack on a subscribed connection (routed in
        // HandleBatch before it gets here).
        Respond(conn, frame,
                Status::FailedPrecondition(
                    "REPLICATE is only valid on a connection that "
                    "SUBSCRIBEd as a replication follower"),
                "", out);
        return;
      default:
        Respond(conn, frame,
                Status::Unimplemented("unhandled opcode"), "", out);
    }
  }

  /// SUBSCRIBE: registers the connection as a replication follower.
  /// The subscriber starts paused in the manager; the response is
  /// queued on the wire *before* activation, so the first REPLICATE
  /// push can never overtake the SUBSCRIBE response.
  void HandleSubscribe(Connection* conn, const wire::Frame& frame,
                       std::string* out) {
    if (conn->level < admin_level) {
      Respond(conn, frame,
              Status::PermissionDenied(
                  "SUBSCRIBE requires level >= " +
                  std::to_string(admin_level) + " (session level " +
                  std::to_string(conn->level) + ")"),
              "", out);
      return;
    }
    auto req = wire::DecodeSubscribeRequest(frame.payload);
    if (!req.ok()) {
      Respond(conn, frame, req.status(), "", out);
      return;
    }
    wire::SubscribeRequest sreq = std::move(req).value();
    std::weak_ptr<Connection> weak = conn->shared_from_this();
    auto resp = repl->AddSubscriber(
        conn->id, sreq.follower_name, std::move(sreq.last_lsns),
        [this, weak](wire::Frame&& f) {
          std::shared_ptr<Connection> c = weak.lock();
          return c != nullptr && PushFrame(c, std::move(f));
        });
    if (!resp.ok()) {
      Respond(conn, frame, resp.status(), "", out);
      return;
    }
    conn->subscriber.store(true, std::memory_order_relaxed);
    std::string resp_bytes;
    Respond(conn, frame, Status::OK(),
            EncodeSubscribeResponse(resp.value()), &resp_bytes);
    {
      // Flush this batch's earlier responses plus ours straight to the
      // connection, preserving order, then activate — from that point
      // the sender thread may append pushes behind them.
      std::lock_guard<std::mutex> lock(conn->mu);
      if (!conn->closed) {
        conn->pending_out.append(*out);
        out->clear();
        conn->pending_out.append(resp_bytes);
      }
    }
    Wake();
    repl->ActivateSubscriber(conn->id);
  }

  /// A follower's REPLICATE response riding the inverted subscriber
  /// connection: decode, route to the manager. No response is emitted
  /// (pushes are leader-initiated).
  void HandleReplicateAck(Connection* conn, const wire::Frame& frame) {
    size_t offset = 0;
    Status status;
    if (!wire::ReadResponseStatus(frame.payload, &offset, &status) ||
        !status.ok()) {
      return;  // follower failed the batch; it will drop and resubscribe
    }
    auto ack = wire::DecodeReplicateResponse(frame.payload, offset);
    if (ack.ok() && repl != nullptr) {
      {
        // The follower echoed the pushed batch's trace context on its
        // ack (installed as the thread-local by HandleBatch), so this
        // span lands in the same trace as the client write it
        // acknowledges. A point event, recorded BEFORE the ack is
        // routed: HandleAck may wake a quorum-blocked client, and an
        // acked client must already find the whole span family in the
        // flight recorder.
        ScopedSpan span("repl.ack_recv");
        span.set_detail("shard=" + std::to_string(ack.value().shard) +
                        " lsn=" +
                        std::to_string(ack.value().durable_lsn));
      }
      repl->HandleAck(conn->id, ack.value());
    }
  }

  /// Follower apply path: one pushed batch → the store, under the same
  /// lease discipline the leader's own write path uses. Returns the
  /// shard's durable LSN to ack.
  Result<uint64_t> ApplyReplicatedBatch(const wire::ReplicateRequest& req) {
    if (req.shard < 0 || req.shard >= store->num_shards()) {
      return Status::InvalidArgument(
          "replicated batch for unknown shard " +
          std::to_string(req.shard));
    }
    const uint64_t have = store->ShardLsn(req.shard);
    // A reconnect can replay records the follower already applied (the
    // leader streams from segment boundaries): skip the known prefix.
    size_t skip = 0;
    if (req.base_lsn <= have) {
      skip = static_cast<size_t>(have - req.base_lsn) + 1;
      if (skip >= req.records.size()) return have;
    } else if (req.base_lsn != have + 1) {
      return Status::FailedPrecondition(
          "replication gap: follower at lsn " + std::to_string(have) +
          ", batch starts at lsn " + std::to_string(req.base_lsn));
    }
    for (size_t k = skip; k < req.records.size(); ++k) {
      const auto& rec = req.records[k];
      const RecordType type = static_cast<RecordType>(rec.type);
      if (type == RecordType::kSpec || type == RecordType::kSpecV2) {
        // Spec appends pin registry entries from the shard's entry
        // vector — exclusive + drained, exactly like ADD_SPEC.
        std::unique_lock<std::shared_mutex> exclusive = ExclusiveLease();
        store->Drain();
        auto lsn = store->ApplyReplicated(req.shard, type, rec.payload);
        PAW_RETURN_NOT_OK(lsn.status());
        const Repository& r = repo(req.shard);
        const int id = r.num_specs() - 1;
        const SpecEntry& entry = r.entry(id);
        {
          std::lock_guard<std::mutex> lock(reg_mu);
          registry[entry.spec.name()] = SpecInfo{{req.shard, id}, &entry};
        }
        engines[static_cast<size_t>(req.shard)]->InvalidateSpecViews(id);
      } else {
        std::shared_lock<std::shared_mutex> shared = SharedLease();
        auto lsn = store->ApplyReplicated(req.shard, type, rec.payload);
        PAW_RETURN_NOT_OK(lsn.status());
      }
    }
    // The ack promises durability: force the batch down when the store
    // is not already syncing each append.
    if (!options.store.sync_each_append) {
      PAW_RETURN_NOT_OK(store->Sync());
    }
    return store->ShardLsn(req.shard);
  }

  void HandleHello(Connection* conn, const wire::Frame& frame,
                   std::string* out) {
    if (conn->hello_done) {
      Respond(conn, frame,
              Status::FailedPrecondition("duplicate HELLO"), "", out);
      conn->close_after_flush = true;
      return;
    }
    auto req = wire::DecodeHelloRequest(frame.payload);
    if (!req.ok()) {
      Respond(conn, frame, req.status(), "", out);
      conn->close_after_flush = true;
      return;
    }
    const uint8_t lo =
        std::max(req.value().min_version, wire::kMinProtocolVersion);
    const uint8_t hi =
        std::min(req.value().max_version, wire::kProtocolVersion);
    if (lo > hi) {
      Respond(conn, frame,
              Status::FailedPrecondition(
                  "no common protocol version: server speaks [" +
                  std::to_string(wire::kMinProtocolVersion) + ", " +
                  std::to_string(wire::kProtocolVersion) +
                  "], client offered [" +
                  std::to_string(req.value().min_version) + ", " +
                  std::to_string(req.value().max_version) + "]"),
              "", out);
      conn->close_after_flush = true;
      return;
    }
    conn->hello_done = true;
    conn->version = hi;
    wire::HelloResponse resp;
    resp.version = hi;
    resp.server_name = options.server_name;
    Respond(conn, frame, Status::OK(), EncodeHelloResponse(resp), out);
  }

  void HandleAuth(Connection* conn, const wire::Frame& frame,
                  std::string* out) {
    auto req = wire::DecodeAuthRequest(frame.payload);
    if (!req.ok()) {
      Respond(conn, frame, req.status(), "", out);
      return;
    }
    auto principal = acl.Find(req.value().principal);
    if (!principal.ok()) {
      stats.auth_failures.fetch_add(1, std::memory_order_relaxed);
      AuthFailuresTotal().Add();
      Respond(conn, frame,
              Status::PermissionDenied("unknown principal \"" +
                                       req.value().principal + "\""),
              "", out);
      return;
    }
    conn->authed = true;
    conn->principal = principal.value().id;
    conn->level = principal.value().level;
    conn->principal_name = req.value().principal;
    conn->group = principal.value().group;
    AuthSessionsTotal().Add();
    wire::AuthResponse resp;
    resp.principal_id = principal.value().id.value();
    resp.level = principal.value().level;
    Respond(conn, frame, Status::OK(), EncodeAuthResponse(resp), out);
  }

  void HandleAddSpec(Connection* conn, const wire::Frame& frame,
                     std::string* out) {
    auto req = wire::DecodeAddSpecRequest(frame.payload);
    if (!req.ok()) {
      Respond(conn, frame, req.status(), "", out);
      return;
    }
    auto spec = ParseSpecification(req.value().spec_text);
    if (!spec.ok()) {
      Respond(conn, frame, spec.status(), "", out);
      return;
    }
    PolicySet policy;
    if (!req.value().policy_text.empty()) {
      auto parsed = ParsePolicy(req.value().policy_text, spec.value());
      if (!parsed.ok()) {
        Respond(conn, frame, parsed.status(), "", out);
        return;
      }
      policy = std::move(parsed).value();
    }
    const std::string name = spec.value().name();
    // Exclusive: the registry pin below indexes the shard's entry
    // vector, which must not race concurrent appends.
    std::unique_lock<std::shared_mutex> exclusive = ExclusiveLease();
    store->Drain();
    conn->trace.lease_us = NowMicros();
    if (FindSpec(name).ok()) {
      exclusive.unlock();
      Respond(conn, frame,
              Status::AlreadyExists("spec \"" + name +
                                    "\" is already stored"),
              "", out);
      return;
    }
    auto loc = store->AddSpec(std::move(spec).value(), std::move(policy));
    if (!loc.ok()) {
      exclusive.unlock();
      Respond(conn, frame, loc.status(), "", out);
      return;
    }
    const SpecEntry& entry = repo(loc.value().shard).entry(loc.value().id);
    {
      std::lock_guard<std::mutex> lock(reg_mu);
      registry[name] = SpecInfo{loc.value(), &entry};
    }
    // Epoch-floor discipline: a spec-affecting append drops any memoized
    // views keyed by this spec id (defensive — ids are append-only, so
    // the slot should be empty) while every other spec's views stay hot.
    engines[static_cast<size_t>(loc.value().shard)]->InvalidateSpecViews(
        loc.value().id);
    wire::AddSpecResponse resp;
    resp.shard = loc.value().shard;
    resp.spec_id = loc.value().id;
    resp.global_lsn = store->GlobalLsn(loc.value().shard);
    exclusive.unlock();
    Respond(conn, frame, Status::OK(), EncodeAddSpecResponse(resp), out);
  }

  /// Handles frames [begin, end) of `batch`, all kAddExecution: parse
  /// and enqueue every append first (one shared lease hold), then
  /// await and emit the acknowledgments in order.
  void HandleAddExecutionRun(Connection* conn,
                             std::vector<PendingFrame>& batch, size_t begin,
                             size_t end, std::string* out) {
    struct Prepared {
      size_t index;
      SpecLoc loc;
      int shard = 0;
      Execution exec;
      TraceContext ctx;
      StoreFuture<ExecutionId> future;
    };
    std::vector<Prepared> run;
    run.reserve(end - begin);
    // Per-frame trace contexts, fixed up front so the enqueue below
    // and the response emission agree on each frame's trace id (a v1
    // frame gets a server-rooted one here, exactly once).
    std::vector<TraceContext> ctxs(end - begin);
    for (size_t i = begin; i < end; ++i) {
      ctxs[i - begin] = batch[i].frame.trace;
      if (!ctxs[i - begin].valid()) {
        ctxs[i - begin].trace_id = TraceRecorder::Global().NewTraceId();
      }
    }
    // Parse off-lock: registry entries are address-stable and specs
    // immutable, so execution texts resolve without touching the
    // store's entry vectors.
    std::vector<std::pair<size_t, Status>> failures;
    for (size_t i = begin; i < end; ++i) {
      auto req = wire::DecodeAddExecutionRequest(batch[i].frame.payload);
      if (!req.ok()) {
        failures.emplace_back(i, req.status());
        continue;
      }
      auto info = FindSpec(req.value().spec_name);
      if (!info.ok()) {
        failures.emplace_back(i, info.status());
        continue;
      }
      auto exec =
          ParseExecution(req.value().exec_text, info.value().entry->spec);
      if (!exec.ok()) {
        failures.emplace_back(i, exec.status());
        continue;
      }
      Prepared p{i, info.value().loc, info.value().loc.shard,
                 std::move(exec).value(), ctxs[i - begin], {}};
      run.push_back(std::move(p));
    }
    int64_t lease_us = 0;
    {
      std::shared_lock<std::shared_mutex> shared = SharedLease();
      lease_us = NowMicros();
      for (Prepared& p : run) {
        // The writer queue captures the thread-local context at
        // enqueue, so the shard's commit (and the replication stream
        // behind it) carries this frame's trace id.
        ScopedTraceContext op_ctx(p.ctx);
        p.future = store->AddExecutionAsync(p.loc, std::move(p.exec));
      }
    }
    // Emit responses in request order (failures interleaved). Each
    // frame gets its own latency span (its parse stamp to its ack).
    size_t fi = 0, ri = 0;
    for (size_t i = begin; i < end; ++i) {
      conn->trace = RequestTrace{batch[i].recv_us, lease_us, 0, 0};
      conn->trace_ctx = ctxs[i - begin];
      if (fi < failures.size() && failures[fi].first == i) {
        Respond(conn, batch[i].frame, failures[fi].second, "", out);
        ++fi;
        continue;
      }
      Prepared& p = run[ri++];
      auto id = p.future.get();
      if (!id.ok()) {
        Respond(conn, batch[i].frame, id.status(), "", out);
        continue;
      }
      if (options.quorum_acks && repl != nullptr) {
        // acks=quorum: the ack additionally means "a follower has this
        // durable". Waiting on the shard's current tail is conservative
        // (it may cover later writes too) but always covers this one.
        const uint64_t lsn = store->ShardLsn(p.shard);
        bool quorum_ok;
        {
          ScopedTraceContext tl(p.ctx);
          ScopedSpan qspan("quorum.wait");
          qspan.set_detail("shard=" + std::to_string(p.shard) +
                           " lsn=" + std::to_string(lsn));
          quorum_ok = repl->WaitForQuorum(p.shard, lsn,
                                          options.quorum_timeout_ms);
        }
        if (!quorum_ok) {
          Respond(conn, batch[i].frame,
                  Status::FailedPrecondition(
                      "quorum ack timeout: the write is durable on the "
                      "leader, but no follower confirmed shard " +
                      std::to_string(p.shard) + " lsn " +
                      std::to_string(lsn) + " within " +
                      std::to_string(options.quorum_timeout_ms) + " ms"),
                  "", out);
          continue;
        }
      }
      wire::AddExecutionResponse resp;
      resp.shard = p.shard;
      resp.exec_id = id.value().value();
      resp.global_lsn = store->GlobalLsn(p.shard);
      Respond(conn, batch[i].frame, Status::OK(),
              EncodeAddExecutionResponse(resp), out);
    }
  }

  void HandleGetSpec(Connection* conn, const wire::Frame& frame,
                     std::string* out) {
    auto req = wire::DecodeGetSpecRequest(frame.payload);
    if (!req.ok()) {
      Respond(conn, frame, req.status(), "", out);
      return;
    }
    auto info = FindSpec(req.value().spec_name);
    if (!info.ok()) {
      Respond(conn, frame, info.status(), "", out);
      return;
    }
    const SpecEntry& entry = *info.value().entry;
    // A spec's full text reveals every level of the hierarchy, so it
    // is only served to principals whose access view covers all of it.
    auto view = acl.AccessViewFor(conn->principal, entry.spec,
                                  entry.hierarchy);
    if (!view.ok()) {
      Respond(conn, frame, view.status(), "", out);
      return;
    }
    if (view.value() != entry.hierarchy.FullPrefix()) {
      Respond(conn, frame,
              Status::PermissionDenied(
                  "access view at level " + std::to_string(conn->level) +
                  " does not cover the full specification"),
              "", out);
      return;
    }
    wire::GetSpecResponse resp;
    resp.spec_text = Serialize(entry.spec);
    resp.policy_text = SerializePolicy(entry.policy);
    RecordAuditEvent(AuditVerdict::kServed, conn->principal_name,
                     static_cast<uint8_t>(frame.opcode),
                     "spec=" + req.value().spec_name + " " +
                         AuditWho(conn) + " view=full");
    Respond(conn, frame, Status::OK(), EncodeGetSpecResponse(resp), out);
  }

  void HandleGetExecution(Connection* conn, const wire::Frame& frame,
                          std::string* out) {
    auto req = wire::DecodeGetExecutionRequest(frame.payload);
    if (!req.ok()) {
      Respond(conn, frame, req.status(), "", out);
      return;
    }
    auto info = FindSpec(req.value().spec_name);
    if (!info.ok()) {
      Respond(conn, frame, info.status(), "", out);
      return;
    }
    // Shared lease: the lookup runs on the engine's pinned cut, and the
    // returned entry is immutable/address-stable, so the lease drops as
    // soon as the pointer is in hand.
    std::shared_lock<std::shared_mutex> shared = SharedLease();
    conn->trace.lease_us = NowMicros();
    QueryEngine* engine =
        engines[static_cast<size_t>(info.value().loc.shard)].get();
    auto found = engine->ExecutionByOrdinal(info.value().loc.id,
                                            req.value().ordinal);
    if (!found.ok()) {
      shared.unlock();
      Respond(conn, frame,
              Status(found.status().code(),
                     "spec \"" + req.value().spec_name + "\" " +
                         found.status().message()),
              "", out);
      return;
    }
    const ExecutionEntry& ee = *found.value();
    // Per-item visibility from the privacy-view cache: the mask set
    // depends only on the immutable execution entry and the
    // principal's cache group, so repeated GET_EXECUTIONs skip
    // ComputeMasking entirely.
    auto mask = engine->ExecutionMask(conn->principal, ee.id);
    shared.unlock();
    if (!mask.ok()) {
      Respond(conn, frame, mask.status(), "", out);
      return;
    }
    // use_count > 1 means the privacy-view cache also holds this
    // report — i.e. the mask was served memoized, not recomputed.
    const bool cache_hit = mask.value().use_count() > 1;
    // Re-render the execution with every item value the principal may
    // not see replaced by the mask — identity and structure stay
    // queryable, contents stay hidden (data privacy, paper Sec. 3).
    const MaskingReport& report = *mask.value();
    Execution masked(info.value().entry->spec);
    for (const ExecNode& node : ee.exec.nodes()) {
      masked.AddNode(node.kind, node.module, node.process_id,
                     node.enclosing);
    }
    for (const DataItem& item : ee.exec.items()) {
      const bool visible =
          report.visible[static_cast<size_t>(item.id.value())];
      masked.AddItem(item.label, item.producer,
                     visible ? item.value : std::string(kMaskedValue));
    }
    const Digraph& g = ee.exec.graph();
    for (NodeIndex u = 0; u < g.num_nodes(); ++u) {
      for (NodeIndex v : g.OutNeighbors(u)) {
        (void)masked.AddFlow(ExecNodeId(u), ExecNodeId(v),
                             ee.exec.ItemsOn(ExecNodeId(u),
                                             ExecNodeId(v)));
      }
    }
    wire::GetExecutionResponse resp;
    resp.exec_text = SerializeExecution(masked);
    resp.num_masked = report.num_masked;
    RecordAuditEvent(
        report.num_masked > 0 ? AuditVerdict::kMasked
                              : AuditVerdict::kServed,
        conn->principal_name, static_cast<uint8_t>(frame.opcode),
        // Verdict-relevant fields first: the detail buffer is capped,
        // and a long spec name must not push `masked=` off the end.
        "masked=" + std::to_string(report.num_masked) +
            (cache_hit ? " cache=hit " : " cache=miss ") +
            AuditWho(conn) + " exec=" + req.value().spec_name + "#" +
            std::to_string(req.value().ordinal));
    Respond(conn, frame, Status::OK(), EncodeGetExecutionResponse(resp),
            out);
  }

  void HandleSearch(Connection* conn, const wire::Frame& frame,
                    std::string* out) {
    auto req = wire::DecodeSearchRequest(frame.payload);
    if (!req.ok()) {
      Respond(conn, frame, req.status(), "", out);
      return;
    }
    // Shared lease: each shard's engine serves from its pinned cut and
    // catches up to the current epoch itself — searches run concurrently
    // with pipelined ingest and with each other.
    std::shared_lock<std::shared_mutex> shared = SharedLease();
    conn->trace.lease_us = NowMicros();
    std::vector<wire::SearchHit> hits;
    for (int s = 0; s < store->num_shards(); ++s) {
      QueryEngine* engine = engines[static_cast<size_t>(s)].get();
      auto answers = engine->Search(conn->principal, req.value().terms);
      if (!answers.ok()) {
        shared.unlock();
        Respond(conn, frame, answers.status(), "", out);
        return;
      }
      for (const KeywordAnswer& answer : answers.value()) {
        // Answers come from the engine's cut, so the entry is always
        // within it; render via the cut, never the live vectors.
        const SpecEntry* entry = engine->SpecEntryAt(answer.spec_id);
        if (entry == nullptr) continue;
        wire::SearchHit hit;
        const Specification& spec = entry->spec;
        hit.spec_name = spec.name();
        hit.score = answer.score;
        hit.view_size = answer.view_size;
        for (ModuleId m : answer.matched) {
          hit.matched.push_back(spec.module(m).code);
        }
        hits.push_back(std::move(hit));
      }
    }
    conn->trace.engine_us = NowMicros();
    shared.unlock();
    // Merge across shards: scores share one TF-IDF scale per shard, so
    // the cross-shard order is approximate; ties break toward smaller
    // views exactly as the per-shard ranking does.
    std::stable_sort(hits.begin(), hits.end(),
                     [](const wire::SearchHit& a, const wire::SearchHit& b) {
                       if (a.score != b.score) return a.score > b.score;
                       return a.view_size < b.view_size;
                     });
    wire::SearchResponse resp;
    resp.hits = std::move(hits);
    // Searches are confined to the principal's access views by
    // construction — served, never masked.
    RecordAuditEvent(AuditVerdict::kServed, conn->principal_name,
                     static_cast<uint8_t>(frame.opcode),
                     "terms=" + std::to_string(req.value().terms.size()) +
                         " hits=" + std::to_string(resp.hits.size()) +
                         " " + AuditWho(conn));
    Respond(conn, frame, Status::OK(), EncodeSearchResponse(resp), out);
  }

  void HandleStructural(Connection* conn, const wire::Frame& frame,
                        std::string* out) {
    auto req = wire::DecodeStructuralRequest(frame.payload);
    if (!req.ok()) {
      Respond(conn, frame, req.status(), "", out);
      return;
    }
    auto info = FindSpec(req.value().spec_name);
    if (!info.ok()) {
      Respond(conn, frame, info.status(), "", out);
      return;
    }
    StructuralPattern pattern;
    for (const std::string& term : req.value().var_terms) {
      pattern.vars.push_back(NodePredicate{term});
    }
    const int n_vars = static_cast<int>(pattern.vars.size());
    for (const wire::StructuralRequest::Edge& edge : req.value().edges) {
      if (edge.from >= n_vars || edge.to >= n_vars) {
        Respond(conn, frame,
                Status::InvalidArgument("pattern edge references an "
                                        "unknown variable"),
                "", out);
        return;
      }
      pattern.edges.push_back(
          PatternEdge{edge.from, edge.to, edge.transitive});
    }
    std::shared_lock<std::shared_mutex> shared = SharedLease();
    conn->trace.lease_us = NowMicros();
    auto matches =
        engines[static_cast<size_t>(info.value().loc.shard)]->Structural(
            conn->principal, info.value().loc.id, pattern);
    conn->trace.engine_us = NowMicros();
    shared.unlock();
    if (!matches.ok()) {
      Respond(conn, frame, matches.status(), "", out);
      return;
    }
    wire::StructuralResponse resp;
    const Specification& spec = info.value().entry->spec;
    for (const PatternMatch& match : matches.value()) {
      std::vector<std::string> codes;
      for (ModuleId m : match.binding) {
        codes.push_back(spec.module(m).code);
      }
      resp.matches.push_back(std::move(codes));
    }
    RecordAuditEvent(AuditVerdict::kServed, conn->principal_name,
                     static_cast<uint8_t>(frame.opcode),
                     "spec=" + req.value().spec_name + " matches=" +
                         std::to_string(resp.matches.size()) + " " +
                         AuditWho(conn));
    Respond(conn, frame, Status::OK(), EncodeStructuralResponse(resp),
            out);
  }

  void HandleLineage(Connection* conn, const wire::Frame& frame,
                     std::string* out) {
    auto req = wire::DecodeLineageRequest(frame.payload);
    if (!req.ok()) {
      Respond(conn, frame, req.status(), "", out);
      return;
    }
    auto info = FindSpec(req.value().spec_name);
    if (!info.ok()) {
      Respond(conn, frame, info.status(), "", out);
      return;
    }
    std::shared_lock<std::shared_mutex> shared = SharedLease();
    conn->trace.lease_us = NowMicros();
    QueryEngine* engine =
        engines[static_cast<size_t>(info.value().loc.shard)].get();
    auto found = engine->ExecutionByOrdinal(info.value().loc.id,
                                            req.value().ordinal);
    if (!found.ok()) {
      shared.unlock();
      Respond(conn, frame,
              Status::NotFound("no execution #" +
                               std::to_string(req.value().ordinal) +
                               " of \"" + req.value().spec_name + "\""),
              "", out);
      return;
    }
    auto answer = engine->Lineage(conn->principal, found.value()->id,
                                  DataItemId(req.value().item));
    conn->trace.engine_us = NowMicros();
    shared.unlock();
    if (!answer.ok()) {
      Respond(conn, frame, answer.status(), "", out);
      return;
    }
    wire::LineageResponse resp;
    resp.zoom_steps = answer.value().zoom_steps;
    const Specification& spec = info.value().entry->spec;
    for (WorkflowId w : answer.value().prefix) {
      resp.prefix_codes.push_back(spec.workflow(w).code);
    }
    resp.rows = std::move(answer.value().rows);
    // A zoomed-out lineage is the structural analogue of masking: the
    // principal got an answer coarsened to their level.
    RecordAuditEvent(
        resp.zoom_steps > 0 ? AuditVerdict::kMasked
                            : AuditVerdict::kServed,
        conn->principal_name, static_cast<uint8_t>(frame.opcode),
        // Verdict-relevant fields first: the detail buffer is capped,
        // and a long spec name must not push `zoom=` off the end.
        "zoom=" + std::to_string(resp.zoom_steps) +
            " rows=" + std::to_string(resp.rows.size()) + " " +
            AuditWho(conn) + " exec=" + req.value().spec_name + "#" +
            std::to_string(req.value().ordinal) +
            " item=" + std::to_string(req.value().item));
    Respond(conn, frame, Status::OK(), EncodeLineageResponse(resp), out);
  }

  void HandleStatus(Connection* conn, const wire::Frame& frame,
                    std::string* out) {
    // Shared lease; counts are atomic reads. Ops still queued behind
    // the writers are not counted yet — acked appends always are.
    std::shared_lock<std::shared_mutex> shared = SharedLease();
    conn->trace.lease_us = NowMicros();
    wire::StatusResponse resp;
    resp.shards = store->num_shards();
    for (int s = 0; s < store->num_shards(); ++s) {
      resp.specs += repo(s).num_specs();
      resp.executions += repo(s).num_executions();
    }
    resp.principals = acl.size();
    resp.connections = live_conns.load(std::memory_order_relaxed);
    std::string text = options.server_name + ": " +
                       std::to_string(resp.shards) + " shard(s), " +
                       std::to_string(resp.specs) + " spec(s), " +
                       std::to_string(resp.executions) +
                       " execution(s)";
    for (int s = 0; s < store->num_shards(); ++s) {
      text += "\nshard " + std::to_string(s) + ": lsn " +
              std::to_string(store->GlobalLsn(s));
    }
    if (is_follower) {
      text += "\nfollower of " + options.follow_host + ":" +
              std::to_string(options.follow_port) +
              (follower != nullptr && follower->connected()
                   ? " (connected)"
                   : " (connecting)");
    } else if (repl != nullptr) {
      text += "\nreplication: " +
              std::to_string(repl->num_subscribers()) + " subscriber(s)" +
              (options.quorum_acks ? ", acks=quorum" : ", acks=local");
    }
    resp.text = std::move(text);
    shared.unlock();
    Respond(conn, frame, Status::OK(), EncodeStatusResponse(resp), out);
  }

  void HandleCompact(Connection* conn, const wire::Frame& frame,
                     std::string* out) {
    if (conn->level < admin_level) {
      Respond(conn, frame,
              Status::PermissionDenied(
                  "COMPACT requires level >= " +
                  std::to_string(admin_level) + " (session level " +
                  std::to_string(conn->level) + ")"),
              "", out);
      return;
    }
    // Exclusive: compaction folds store files and must not run under
    // concurrent readers or writers.
    std::unique_lock<std::shared_mutex> exclusive = ExclusiveLease();
    store->Drain();
    conn->trace.lease_us = NowMicros();
    const Status status = store->Compact();
    exclusive.unlock();
    Respond(conn, frame, status, "", out);
  }

  /// METRICS: a registry snapshot. Reads only relaxed atomics, so it
  /// deliberately skips the lease — observability must stay cheap and
  /// must work while the store is busy.
  void HandleMetrics(Connection* conn, const wire::Frame& frame,
                     std::string* out) {
    wire::MetricsResponse resp;
    resp.snapshot = MetricsRegistry::Global().Snapshot();
    Respond(conn, frame, Status::OK(), EncodeMetricsResponse(resp), out);
  }

  /// TRACE_DUMP: a flight-recorder snapshot. Lease-free like METRICS
  /// (the ring is safe under any store state); requires `admin_level`
  /// because spans and audit events expose other principals' activity.
  void HandleTraceDump(Connection* conn, const wire::Frame& frame,
                       std::string* out) {
    if (conn->level < admin_level) {
      Respond(conn, frame,
              Status::PermissionDenied(
                  "TRACE_DUMP requires level >= " +
                  std::to_string(admin_level) + " (session level " +
                  std::to_string(conn->level) + ")"),
              "", out);
      return;
    }
    auto req = wire::DecodeTraceDumpRequest(frame.payload);
    if (!req.ok()) {
      Respond(conn, frame, req.status(), "", out);
      return;
    }
    const wire::TraceDumpRequest& q = req.value();
    const std::vector<Span> all = TraceRecorder::Global().Collect();
    std::vector<Span> matched;
    switch (q.mode) {
      case wire::TraceDumpMode::kAll:
        for (const Span& s : all) {
          if (s.kind == SpanKind::kSpan) matched.push_back(s);
        }
        break;
      case wire::TraceDumpMode::kAudit:
        for (const Span& s : all) {
          if (s.kind == SpanKind::kAudit) matched.push_back(s);
        }
        break;
      case wire::TraceDumpMode::kById:
        // By id, everything of the trace rides along — spans from any
        // layer plus the audit events it triggered.
        for (const Span& s : all) {
          if (s.trace_id == q.trace_id) matched.push_back(s);
        }
        break;
      case wire::TraceDumpMode::kSlow:
      case wire::TraceDumpMode::kErrors: {
        // Two passes: find trace ids carrying the flag, then keep
        // every span of those traces (the whole tree, not just roots).
        const uint8_t want = q.mode == wire::TraceDumpMode::kSlow
                                 ? kSpanFlagSlow
                                 : kSpanFlagError;
        std::unordered_set<uint64_t> ids;
        for (const Span& s : all) {
          if ((s.flags & want) != 0) ids.insert(s.trace_id);
        }
        for (const Span& s : all) {
          if (ids.count(s.trace_id) != 0) matched.push_back(s);
        }
        break;
      }
    }
    wire::TraceDumpResponse resp;
    const size_t cap = q.max_spans != 0 ? q.max_spans : 4096;
    if (matched.size() > cap) {
      // Keep the newest spans — a flight recorder's tail is the part
      // that explains what just happened.
      resp.dropped = static_cast<uint32_t>(matched.size() - cap);
      matched.erase(matched.begin(),
                    matched.end() - static_cast<ptrdiff_t>(cap));
    }
    resp.spans = std::move(matched);
    Respond(conn, frame, Status::OK(), EncodeTraceDumpResponse(resp),
            out);
  }
};

// ---- PawServer --------------------------------------------------------------

PawServer::PawServer(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}

PawServer::~PawServer() { Stop(); }

void PawServer::Stop() { impl_->StopInternal(); }

int PawServer::port() const { return impl_->port; }

int PawServer::connections() const {
  return impl_->live_conns.load(std::memory_order_relaxed);
}

const PawServer::Stats& PawServer::stats() const { return impl_->stats; }

Result<std::unique_ptr<PawServer>> PawServer::Start(const std::string& dir,
                                                    ServerOptions options) {
  auto impl = std::make_unique<Impl>();
  impl->dir = dir;
  impl->admin_level = options.admin_level;

  // Open (and lock) the store; layout auto-detected.
  if (ShardedRepository::IsShardedStore(dir)) {
    auto store = ShardedRepository::Open(dir, options.store,
                                         options.open_threads);
    if (!store.ok()) return store.status();
    impl->store =
        std::make_unique<ShardedServerStore>(std::move(store).value());
  } else {
    auto store = PersistentRepository::Open(dir, options.store);
    if (!store.ok()) return store.status();
    impl->store =
        std::make_unique<SingleServerStore>(std::move(store).value());
  }

  // Principal registry.
  if (options.principals.empty()) {
    options.principals.push_back(
        ServerPrincipal{"admin", options.admin_level, ""});
  }
  for (const ServerPrincipal& p : options.principals) {
    auto id = impl->acl.AddPrincipal(p.name, p.level, p.group);
    if (!id.ok()) return id.status();
  }

  // One knob for both layers: a non-default store threshold wins when
  // the server-level one was left alone.
  impl->slow_query_ms = options.slow_query_ms != 100
                            ? options.slow_query_ms
                            : options.store.slow_query_ms;

  if (options.trace_sample_n > 0) {
    TraceRecorder::Global().set_sample_n(options.trace_sample_n);
  }

  impl->options = std::move(options);
  impl->BuildRegistry();
  impl->BuildEngines();

  PAW_RETURN_NOT_OK(impl->Listen());
  impl->reserve_fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return ErrnoStatus("pipe");
  impl->wake_read = pipe_fds[0];
  impl->wake_write = pipe_fds[1];
  PAW_RETURN_NOT_OK(SetNonBlocking(impl->wake_read));
  PAW_RETURN_NOT_OK(SetNonBlocking(impl->wake_write));

  PAW_ASSIGN_OR_RETURN(impl->poller, MakePoller(impl->options.use_poll));
  PAW_RETURN_NOT_OK(impl->poller->Add(impl->listen_fd, false));
  PAW_RETURN_NOT_OK(impl->poller->Add(impl->wake_read, false));

  impl->workers = std::make_unique<ThreadPool>(
      std::max(1, impl->options.worker_threads));
  Impl* raw = impl.get();

  // Replication role. A leader always runs the stream manager (its
  // commit sinks are cheap with zero subscribers), so followers can
  // attach at any time; a follower starts the connect/apply loop and
  // flips the server read-only.
  impl->is_follower = !impl->options.follow_host.empty();
  if (impl->is_follower) {
    ReplicationFollowerOptions fopts;
    fopts.leader_host = impl->options.follow_host;
    fopts.leader_port = impl->options.follow_port;
    fopts.principal = impl->options.follow_principal;
    fopts.follower_name = impl->options.server_name;
    impl->follower = std::make_unique<ReplicationFollower>(
        std::move(fopts),
        [raw] {
          std::vector<uint64_t> lsns;
          for (int s = 0; s < raw->store->num_shards(); ++s) {
            lsns.push_back(raw->store->ShardLsn(s));
          }
          return lsns;
        },
        [raw](const wire::ReplicateRequest& batch) {
          return raw->ApplyReplicatedBatch(batch);
        });
  } else {
    std::vector<WriteAheadLog*> wals;
    for (int s = 0; s < impl->store->num_shards(); ++s) {
      wals.push_back(impl->store->ShardWal(s));
    }
    impl->repl = std::make_unique<ReplicationManager>(std::move(wals));
    impl->repl->Start();
  }

  impl->loop_thread = std::thread([raw] { raw->Loop(); });
  if (impl->follower != nullptr) impl->follower->Start();

  return std::unique_ptr<PawServer>(new PawServer(std::move(impl)));
}

}  // namespace paw

#include "src/server/wire.h"

#include "src/common/crc32.h"
#include "src/store/record.h"

namespace paw {
namespace wire {
namespace {

/// Reads a `str` (varint length + raw bytes) into an owning string.
bool GetString(std::string_view buf, size_t* offset, std::string* out) {
  std::string_view v;
  if (!GetLengthPrefixed(buf, offset, &v)) return false;
  out->assign(v);
  return true;
}

/// Reads a varint that must fit a non-negative int.
bool GetCount(std::string_view buf, size_t* offset, int* out) {
  uint32_t v = 0;
  if (!GetVarint32(buf, offset, &v)) return false;
  if (v > static_cast<uint32_t>(INT32_MAX)) return false;
  *out = static_cast<int>(v);
  return true;
}

Status Malformed(std::string_view what) {
  return Status::InvalidArgument("malformed " + std::string(what) +
                                 " payload");
}

/// A list length must be plausible against the remaining bytes (each
/// element costs at least one byte) — rejects absurd counts before any
/// allocation.
bool PlausibleCount(std::string_view buf, size_t offset, int n) {
  return n >= 0 && static_cast<size_t>(n) <= buf.size() - offset + 1;
}

}  // namespace

bool IsValidOpcode(uint8_t op) {
  return op >= static_cast<uint8_t>(Opcode::kHello) &&
         op <= static_cast<uint8_t>(Opcode::kTraceDump);
}

namespace {

/// True iff a frame of this (version, opcode) carries the 16-byte
/// trace-context trailer after its body. HELLO is exempt: it travels
/// before the version is agreed.
bool FrameHasTraceTrailer(uint8_t version, Opcode opcode) {
  return version >= 2 && opcode != Opcode::kHello;
}

}  // namespace

std::string_view OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kHello: return "hello";
    case Opcode::kAuth: return "auth";
    case Opcode::kAddSpec: return "add_spec";
    case Opcode::kAddExecution: return "add_execution";
    case Opcode::kGetSpec: return "get_spec";
    case Opcode::kGetExecution: return "get_execution";
    case Opcode::kKeywordSearch: return "keyword_search";
    case Opcode::kStructuralQuery: return "structural_query";
    case Opcode::kLineage: return "lineage";
    case Opcode::kStatus: return "status";
    case Opcode::kCompact: return "compact";
    case Opcode::kMetrics: return "metrics";
    case Opcode::kSubscribe: return "subscribe";
    case Opcode::kReplicate: return "replicate";
    case Opcode::kTraceDump: return "trace_dump";
  }
  return "unknown";
}

void AppendFrame(const Frame& frame, std::string* out) {
  // CRC covers version..payload; build that region once, checksum it,
  // then splice the prefix in front. On v2 non-HELLO frames the
  // trace-context trailer rides inside the payload region (counted and
  // checksummed like body bytes).
  const bool trailer = FrameHasTraceTrailer(frame.version, frame.opcode);
  std::string covered;
  covered.reserve(1 + 1 + 8 + frame.payload.size() +
                  (trailer ? kTraceContextBytes : 0));
  covered.push_back(static_cast<char>(frame.version));
  covered.push_back(static_cast<char>(frame.opcode));
  PutFixed64(&covered, frame.request_id);
  covered.append(frame.payload);
  if (trailer) AppendTraceContext(frame.trace, &covered);

  PutFixed32(out, kMagic);
  PutFixed32(out, static_cast<uint32_t>(covered.size() - 10));
  PutFixed32(out, Crc32(covered));
  out->append(covered);
}

ParseResult ParseFrame(std::string_view buf, Frame* frame,
                       size_t* consumed, std::string* error) {
  *consumed = 0;
  // The fixed prefix (magic + payload_len + crc) is enough to validate
  // framing before waiting for the body.
  if (buf.size() < 4) {
    // A partial magic must still be a prefix of the real magic.
    std::string magic_bytes;
    PutFixed32(&magic_bytes, kMagic);
    if (buf != std::string_view(magic_bytes).substr(0, buf.size())) {
      *error = "bad frame magic";
      return ParseResult::kBad;
    }
    return ParseResult::kNeedMore;
  }
  size_t offset = 0;
  uint32_t magic = 0, payload_len = 0, crc = 0;
  GetFixed32(buf, &offset, &magic);
  if (magic != kMagic) {
    *error = "bad frame magic";
    return ParseResult::kBad;
  }
  if (buf.size() < 12) return ParseResult::kNeedMore;
  GetFixed32(buf, &offset, &payload_len);
  GetFixed32(buf, &offset, &crc);
  if (payload_len > kMaxFramePayload) {
    *error = "frame payload length " + std::to_string(payload_len) +
             " exceeds cap";
    return ParseResult::kBad;
  }
  const size_t total = kFrameHeaderSize + payload_len;
  if (buf.size() < total) return ParseResult::kNeedMore;

  const std::string_view covered = buf.substr(12, 1 + 1 + 8 + payload_len);
  if (Crc32(covered) != crc) {
    *error = "frame checksum mismatch";
    return ParseResult::kBad;
  }
  const uint8_t version = static_cast<uint8_t>(covered[0]);
  const uint8_t opcode = static_cast<uint8_t>(covered[1]);
  if (!IsValidOpcode(opcode)) {
    *error = "unknown opcode " + std::to_string(opcode);
    return ParseResult::kBad;
  }
  frame->version = version;
  frame->opcode = static_cast<Opcode>(opcode);
  size_t id_offset = 2;
  GetFixed64(covered, &id_offset, &frame->request_id);
  std::string_view body = covered.substr(10);
  frame->trace = TraceContext{};
  if (FrameHasTraceTrailer(version, frame->opcode)) {
    if (body.size() < kTraceContextBytes) {
      *error = "v2 frame too short for trace trailer";
      return ParseResult::kBad;
    }
    ParseTraceContext(body.substr(body.size() - kTraceContextBytes),
                      &frame->trace);
    body.remove_suffix(kTraceContextBytes);
  }
  frame->payload.assign(body);
  *consumed = total;
  return ParseResult::kFrame;
}

void AppendResponseStatus(const Status& status, std::string* out) {
  PutVarint32(out, static_cast<uint32_t>(status.code()));
  PutLengthPrefixed(out, status.message());
}

bool ReadResponseStatus(std::string_view payload, size_t* offset,
                        Status* out) {
  uint32_t code = 0;
  std::string message;
  if (!GetVarint32(payload, offset, &code) ||
      !GetString(payload, offset, &message) ||
      code > static_cast<uint32_t>(StatusCode::kInternal)) {
    return false;
  }
  *out = code == 0 ? Status::OK()
                   : Status(static_cast<StatusCode>(code),
                            std::move(message));
  return true;
}

// ---- Hello ------------------------------------------------------------------

std::string EncodeHelloRequest(const HelloRequest& req) {
  std::string out;
  PutVarint32(&out, req.min_version);
  PutVarint32(&out, req.max_version);
  PutLengthPrefixed(&out, req.client_name);
  return out;
}

Result<HelloRequest> DecodeHelloRequest(std::string_view payload) {
  HelloRequest req;
  size_t offset = 0;
  uint32_t min_v = 0, max_v = 0;
  if (!GetVarint32(payload, &offset, &min_v) ||
      !GetVarint32(payload, &offset, &max_v) ||
      !GetString(payload, &offset, &req.client_name) ||
      offset != payload.size() || min_v > 255 || max_v > 255) {
    return Malformed("hello request");
  }
  req.min_version = static_cast<uint8_t>(min_v);
  req.max_version = static_cast<uint8_t>(max_v);
  return req;
}

std::string EncodeHelloResponse(const HelloResponse& resp) {
  std::string out;
  PutVarint32(&out, resp.version);
  PutLengthPrefixed(&out, resp.server_name);
  return out;
}

Result<HelloResponse> DecodeHelloResponse(std::string_view payload,
                                          size_t offset) {
  HelloResponse resp;
  uint32_t version = 0;
  if (!GetVarint32(payload, &offset, &version) ||
      !GetString(payload, &offset, &resp.server_name) ||
      offset != payload.size() || version > 255) {
    return Malformed("hello response");
  }
  resp.version = static_cast<uint8_t>(version);
  return resp;
}

// ---- Auth -------------------------------------------------------------------

std::string EncodeAuthRequest(const AuthRequest& req) {
  std::string out;
  PutLengthPrefixed(&out, req.principal);
  return out;
}

Result<AuthRequest> DecodeAuthRequest(std::string_view payload) {
  AuthRequest req;
  size_t offset = 0;
  if (!GetString(payload, &offset, &req.principal) ||
      offset != payload.size()) {
    return Malformed("auth request");
  }
  return req;
}

std::string EncodeAuthResponse(const AuthResponse& resp) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(resp.principal_id));
  PutVarint32(&out, ZigZag32(resp.level));
  return out;
}

Result<AuthResponse> DecodeAuthResponse(std::string_view payload,
                                        size_t offset) {
  AuthResponse resp;
  uint32_t id = 0, level = 0;
  if (!GetVarint32(payload, &offset, &id) ||
      !GetVarint32(payload, &offset, &level) ||
      offset != payload.size() ||
      id > static_cast<uint32_t>(INT32_MAX)) {
    return Malformed("auth response");
  }
  resp.principal_id = static_cast<int>(id);
  resp.level = UnZigZag32(level);
  return resp;
}

// ---- AddSpec ----------------------------------------------------------------

std::string EncodeAddSpecRequest(const AddSpecRequest& req) {
  std::string out;
  PutLengthPrefixed(&out, req.spec_text);
  PutLengthPrefixed(&out, req.policy_text);
  return out;
}

Result<AddSpecRequest> DecodeAddSpecRequest(std::string_view payload) {
  AddSpecRequest req;
  size_t offset = 0;
  if (!GetString(payload, &offset, &req.spec_text) ||
      !GetString(payload, &offset, &req.policy_text) ||
      offset != payload.size()) {
    return Malformed("add_spec request");
  }
  return req;
}

namespace {

/// Shared layout of the AddSpec / AddExecution response bodies:
/// `varint shard | varint id | varint global_lsn`.
std::string EncodeAddResponse(int shard, int id, uint64_t global_lsn) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(shard));
  PutVarint32(&out, static_cast<uint32_t>(id));
  PutVarint64(&out, global_lsn);
  return out;
}

bool DecodeAddResponse(std::string_view payload, size_t offset, int* shard,
                       int* id, uint64_t* global_lsn) {
  uint32_t s = 0, i = 0;
  if (!GetVarint32(payload, &offset, &s) ||
      !GetVarint32(payload, &offset, &i) ||
      !GetVarint64(payload, &offset, global_lsn) ||
      offset != payload.size() ||
      s > static_cast<uint32_t>(INT32_MAX) ||
      i > static_cast<uint32_t>(INT32_MAX)) {
    return false;
  }
  *shard = static_cast<int>(s);
  *id = static_cast<int>(i);
  return true;
}

}  // namespace

std::string EncodeAddSpecResponse(const AddSpecResponse& resp) {
  return EncodeAddResponse(resp.shard, resp.spec_id, resp.global_lsn);
}

Result<AddSpecResponse> DecodeAddSpecResponse(std::string_view payload,
                                              size_t offset) {
  AddSpecResponse resp;
  if (!DecodeAddResponse(payload, offset, &resp.shard, &resp.spec_id,
                         &resp.global_lsn)) {
    return Malformed("add_spec response");
  }
  return resp;
}

// ---- AddExecution -----------------------------------------------------------

std::string EncodeAddExecutionRequest(const AddExecutionRequest& req) {
  std::string out;
  PutLengthPrefixed(&out, req.spec_name);
  PutLengthPrefixed(&out, req.exec_text);
  return out;
}

Result<AddExecutionRequest> DecodeAddExecutionRequest(
    std::string_view payload) {
  AddExecutionRequest req;
  size_t offset = 0;
  if (!GetString(payload, &offset, &req.spec_name) ||
      !GetString(payload, &offset, &req.exec_text) ||
      offset != payload.size()) {
    return Malformed("add_execution request");
  }
  return req;
}

std::string EncodeAddExecutionResponse(const AddExecutionResponse& resp) {
  return EncodeAddResponse(resp.shard, resp.exec_id, resp.global_lsn);
}

Result<AddExecutionResponse> DecodeAddExecutionResponse(
    std::string_view payload, size_t offset) {
  AddExecutionResponse resp;
  if (!DecodeAddResponse(payload, offset, &resp.shard, &resp.exec_id,
                         &resp.global_lsn)) {
    return Malformed("add_execution response");
  }
  return resp;
}

// ---- GetSpec ----------------------------------------------------------------

std::string EncodeGetSpecRequest(const GetSpecRequest& req) {
  std::string out;
  PutLengthPrefixed(&out, req.spec_name);
  return out;
}

Result<GetSpecRequest> DecodeGetSpecRequest(std::string_view payload) {
  GetSpecRequest req;
  size_t offset = 0;
  if (!GetString(payload, &offset, &req.spec_name) ||
      offset != payload.size()) {
    return Malformed("get_spec request");
  }
  return req;
}

std::string EncodeGetSpecResponse(const GetSpecResponse& resp) {
  std::string out;
  PutLengthPrefixed(&out, resp.spec_text);
  PutLengthPrefixed(&out, resp.policy_text);
  return out;
}

Result<GetSpecResponse> DecodeGetSpecResponse(std::string_view payload,
                                              size_t offset) {
  GetSpecResponse resp;
  if (!GetString(payload, &offset, &resp.spec_text) ||
      !GetString(payload, &offset, &resp.policy_text) ||
      offset != payload.size()) {
    return Malformed("get_spec response");
  }
  return resp;
}

// ---- GetExecution -----------------------------------------------------------

std::string EncodeGetExecutionRequest(const GetExecutionRequest& req) {
  std::string out;
  PutLengthPrefixed(&out, req.spec_name);
  PutVarint32(&out, static_cast<uint32_t>(req.ordinal));
  return out;
}

Result<GetExecutionRequest> DecodeGetExecutionRequest(
    std::string_view payload) {
  GetExecutionRequest req;
  size_t offset = 0;
  if (!GetString(payload, &offset, &req.spec_name) ||
      !GetCount(payload, &offset, &req.ordinal) ||
      offset != payload.size()) {
    return Malformed("get_execution request");
  }
  return req;
}

std::string EncodeGetExecutionResponse(const GetExecutionResponse& resp) {
  std::string out;
  PutLengthPrefixed(&out, resp.exec_text);
  PutVarint32(&out, static_cast<uint32_t>(resp.num_masked));
  return out;
}

Result<GetExecutionResponse> DecodeGetExecutionResponse(
    std::string_view payload, size_t offset) {
  GetExecutionResponse resp;
  if (!GetString(payload, &offset, &resp.exec_text) ||
      !GetCount(payload, &offset, &resp.num_masked) ||
      offset != payload.size()) {
    return Malformed("get_execution response");
  }
  return resp;
}

// ---- KeywordSearch ----------------------------------------------------------

std::string EncodeSearchRequest(const SearchRequest& req) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(req.terms.size()));
  for (const std::string& term : req.terms) {
    PutLengthPrefixed(&out, term);
  }
  return out;
}

Result<SearchRequest> DecodeSearchRequest(std::string_view payload) {
  SearchRequest req;
  size_t offset = 0;
  int n = 0;
  if (!GetCount(payload, &offset, &n) ||
      !PlausibleCount(payload, offset, n)) {
    return Malformed("search request");
  }
  req.terms.resize(static_cast<size_t>(n));
  for (std::string& term : req.terms) {
    if (!GetString(payload, &offset, &term)) {
      return Malformed("search request");
    }
  }
  if (offset != payload.size()) return Malformed("search request");
  return req;
}

namespace {

void EncodeSearchHit(const SearchHit& hit, std::string* out) {
  PutLengthPrefixed(out, hit.spec_name);
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(hit.score));
  __builtin_memcpy(&bits, &hit.score, sizeof(bits));
  PutFixed64(out, bits);
  PutVarint32(out, static_cast<uint32_t>(hit.view_size));
  PutVarint32(out, static_cast<uint32_t>(hit.matched.size()));
  for (const std::string& code : hit.matched) {
    PutLengthPrefixed(out, code);
  }
}

bool DecodeSearchHit(std::string_view payload, size_t* offset,
                     SearchHit* hit) {
  uint64_t bits = 0;
  int n = 0;
  if (!GetString(payload, offset, &hit->spec_name) ||
      !GetFixed64(payload, offset, &bits) ||
      !GetCount(payload, offset, &hit->view_size) ||
      !GetCount(payload, offset, &n) ||
      !PlausibleCount(payload, *offset, n)) {
    return false;
  }
  __builtin_memcpy(&hit->score, &bits, sizeof(bits));
  hit->matched.resize(static_cast<size_t>(n));
  for (std::string& code : hit->matched) {
    if (!GetString(payload, offset, &code)) return false;
  }
  return true;
}

}  // namespace

std::string EncodeSearchResponse(const SearchResponse& resp) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(resp.hits.size()));
  for (const SearchHit& hit : resp.hits) EncodeSearchHit(hit, &out);
  return out;
}

Result<SearchResponse> DecodeSearchResponse(std::string_view payload,
                                            size_t offset) {
  SearchResponse resp;
  int n = 0;
  if (!GetCount(payload, &offset, &n) ||
      !PlausibleCount(payload, offset, n)) {
    return Malformed("search response");
  }
  resp.hits.resize(static_cast<size_t>(n));
  for (SearchHit& hit : resp.hits) {
    if (!DecodeSearchHit(payload, &offset, &hit)) {
      return Malformed("search response");
    }
  }
  if (offset != payload.size()) return Malformed("search response");
  return resp;
}

// ---- StructuralQuery --------------------------------------------------------

std::string EncodeStructuralRequest(const StructuralRequest& req) {
  std::string out;
  PutLengthPrefixed(&out, req.spec_name);
  PutVarint32(&out, static_cast<uint32_t>(req.var_terms.size()));
  for (const std::string& term : req.var_terms) {
    PutLengthPrefixed(&out, term);
  }
  PutVarint32(&out, static_cast<uint32_t>(req.edges.size()));
  for (const StructuralRequest::Edge& edge : req.edges) {
    PutVarint32(&out, static_cast<uint32_t>(edge.from));
    PutVarint32(&out, static_cast<uint32_t>(edge.to));
    out.push_back(edge.transitive ? 1 : 0);
  }
  return out;
}

Result<StructuralRequest> DecodeStructuralRequest(
    std::string_view payload) {
  StructuralRequest req;
  size_t offset = 0;
  int n_vars = 0;
  if (!GetString(payload, &offset, &req.spec_name) ||
      !GetCount(payload, &offset, &n_vars) ||
      !PlausibleCount(payload, offset, n_vars)) {
    return Malformed("structural request");
  }
  req.var_terms.resize(static_cast<size_t>(n_vars));
  for (std::string& term : req.var_terms) {
    if (!GetString(payload, &offset, &term)) {
      return Malformed("structural request");
    }
  }
  int n_edges = 0;
  if (!GetCount(payload, &offset, &n_edges) ||
      !PlausibleCount(payload, offset, n_edges)) {
    return Malformed("structural request");
  }
  req.edges.resize(static_cast<size_t>(n_edges));
  for (StructuralRequest::Edge& edge : req.edges) {
    std::string_view flag;
    if (!GetCount(payload, &offset, &edge.from) ||
        !GetCount(payload, &offset, &edge.to) ||
        !GetBytes(payload, &offset, 1, &flag)) {
      return Malformed("structural request");
    }
    edge.transitive = flag[0] != 0;
  }
  if (offset != payload.size()) return Malformed("structural request");
  return req;
}

std::string EncodeStructuralResponse(const StructuralResponse& resp) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(resp.matches.size()));
  for (const std::vector<std::string>& match : resp.matches) {
    PutVarint32(&out, static_cast<uint32_t>(match.size()));
    for (const std::string& code : match) PutLengthPrefixed(&out, code);
  }
  return out;
}

Result<StructuralResponse> DecodeStructuralResponse(
    std::string_view payload, size_t offset) {
  StructuralResponse resp;
  int n = 0;
  if (!GetCount(payload, &offset, &n) ||
      !PlausibleCount(payload, offset, n)) {
    return Malformed("structural response");
  }
  resp.matches.resize(static_cast<size_t>(n));
  for (std::vector<std::string>& match : resp.matches) {
    int k = 0;
    if (!GetCount(payload, &offset, &k) ||
        !PlausibleCount(payload, offset, k)) {
      return Malformed("structural response");
    }
    match.resize(static_cast<size_t>(k));
    for (std::string& code : match) {
      if (!GetString(payload, &offset, &code)) {
        return Malformed("structural response");
      }
    }
  }
  if (offset != payload.size()) return Malformed("structural response");
  return resp;
}

// ---- Lineage ----------------------------------------------------------------

std::string EncodeLineageRequest(const LineageRequest& req) {
  std::string out;
  PutLengthPrefixed(&out, req.spec_name);
  PutVarint32(&out, static_cast<uint32_t>(req.ordinal));
  PutVarint32(&out, static_cast<uint32_t>(req.item));
  return out;
}

Result<LineageRequest> DecodeLineageRequest(std::string_view payload) {
  LineageRequest req;
  size_t offset = 0;
  if (!GetString(payload, &offset, &req.spec_name) ||
      !GetCount(payload, &offset, &req.ordinal) ||
      !GetCount(payload, &offset, &req.item) ||
      offset != payload.size()) {
    return Malformed("lineage request");
  }
  return req;
}

std::string EncodeLineageResponse(const LineageResponse& resp) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(resp.zoom_steps));
  PutVarint32(&out, static_cast<uint32_t>(resp.prefix_codes.size()));
  for (const std::string& code : resp.prefix_codes) {
    PutLengthPrefixed(&out, code);
  }
  PutVarint32(&out, static_cast<uint32_t>(resp.rows.size()));
  for (const std::string& row : resp.rows) PutLengthPrefixed(&out, row);
  return out;
}

Result<LineageResponse> DecodeLineageResponse(std::string_view payload,
                                              size_t offset) {
  LineageResponse resp;
  int n = 0;
  if (!GetCount(payload, &offset, &resp.zoom_steps) ||
      !GetCount(payload, &offset, &n) ||
      !PlausibleCount(payload, offset, n)) {
    return Malformed("lineage response");
  }
  resp.prefix_codes.resize(static_cast<size_t>(n));
  for (std::string& code : resp.prefix_codes) {
    if (!GetString(payload, &offset, &code)) {
      return Malformed("lineage response");
    }
  }
  if (!GetCount(payload, &offset, &n) ||
      !PlausibleCount(payload, offset, n)) {
    return Malformed("lineage response");
  }
  resp.rows.resize(static_cast<size_t>(n));
  for (std::string& row : resp.rows) {
    if (!GetString(payload, &offset, &row)) {
      return Malformed("lineage response");
    }
  }
  if (offset != payload.size()) return Malformed("lineage response");
  return resp;
}

// ---- Status -----------------------------------------------------------------

std::string EncodeStatusResponse(const StatusResponse& resp) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(resp.shards));
  PutVarint32(&out, static_cast<uint32_t>(resp.specs));
  PutVarint32(&out, static_cast<uint32_t>(resp.executions));
  PutVarint32(&out, static_cast<uint32_t>(resp.principals));
  PutVarint32(&out, static_cast<uint32_t>(resp.connections));
  PutLengthPrefixed(&out, resp.text);
  return out;
}

Result<StatusResponse> DecodeStatusResponse(std::string_view payload,
                                            size_t offset) {
  StatusResponse resp;
  if (!GetCount(payload, &offset, &resp.shards) ||
      !GetCount(payload, &offset, &resp.specs) ||
      !GetCount(payload, &offset, &resp.executions) ||
      !GetCount(payload, &offset, &resp.principals) ||
      !GetCount(payload, &offset, &resp.connections) ||
      !GetString(payload, &offset, &resp.text) ||
      offset != payload.size()) {
    return Malformed("status response");
  }
  return resp;
}

// ---- Metrics ----------------------------------------------------------------

std::string EncodeMetricsResponse(const MetricsResponse& resp) {
  return EncodeMetricsSnapshot(resp.snapshot);
}

Result<MetricsResponse> DecodeMetricsResponse(std::string_view payload,
                                              size_t offset) {
  MetricsResponse resp;
  auto snapshot = DecodeMetricsSnapshot(payload, &offset);
  if (!snapshot.ok() || offset != payload.size()) {
    return Malformed("metrics response");
  }
  resp.snapshot = std::move(snapshot).value();
  return resp;
}

// ---- Subscribe --------------------------------------------------------------

std::string EncodeSubscribeRequest(const SubscribeRequest& req) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(req.last_lsns.size()));
  for (uint64_t lsn : req.last_lsns) PutVarint64(&out, lsn);
  PutLengthPrefixed(&out, req.follower_name);
  return out;
}

Result<SubscribeRequest> DecodeSubscribeRequest(std::string_view payload) {
  SubscribeRequest req;
  size_t offset = 0;
  int n = 0;
  if (!GetCount(payload, &offset, &n) ||
      !PlausibleCount(payload, offset, n)) {
    return Malformed("subscribe request");
  }
  req.last_lsns.resize(static_cast<size_t>(n));
  for (uint64_t& lsn : req.last_lsns) {
    if (!GetVarint64(payload, &offset, &lsn)) {
      return Malformed("subscribe request");
    }
  }
  if (!GetString(payload, &offset, &req.follower_name) ||
      offset != payload.size()) {
    return Malformed("subscribe request");
  }
  return req;
}

std::string EncodeSubscribeResponse(const SubscribeResponse& resp) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(resp.leader_lsns.size()));
  for (uint64_t lsn : resp.leader_lsns) PutVarint64(&out, lsn);
  return out;
}

Result<SubscribeResponse> DecodeSubscribeResponse(std::string_view payload,
                                                  size_t offset) {
  SubscribeResponse resp;
  int n = 0;
  if (!GetCount(payload, &offset, &n) ||
      !PlausibleCount(payload, offset, n)) {
    return Malformed("subscribe response");
  }
  resp.leader_lsns.resize(static_cast<size_t>(n));
  for (uint64_t& lsn : resp.leader_lsns) {
    if (!GetVarint64(payload, &offset, &lsn)) {
      return Malformed("subscribe response");
    }
  }
  if (offset != payload.size()) return Malformed("subscribe response");
  return resp;
}

// ---- Replicate --------------------------------------------------------------

std::string EncodeReplicateRequest(const ReplicateRequest& req) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(req.shard));
  PutVarint64(&out, req.base_lsn);
  PutVarint32(&out, static_cast<uint32_t>(req.records.size()));
  for (const ReplicateRequest::Rec& rec : req.records) {
    out.push_back(static_cast<char>(rec.type));
    PutLengthPrefixed(&out, rec.payload);
  }
  return out;
}

Result<ReplicateRequest> DecodeReplicateRequest(std::string_view payload) {
  ReplicateRequest req;
  size_t offset = 0;
  int n = 0;
  if (!GetCount(payload, &offset, &req.shard) ||
      !GetVarint64(payload, &offset, &req.base_lsn) ||
      !GetCount(payload, &offset, &n) ||
      !PlausibleCount(payload, offset, n)) {
    return Malformed("replicate request");
  }
  req.records.resize(static_cast<size_t>(n));
  for (ReplicateRequest::Rec& rec : req.records) {
    std::string_view type_byte;
    if (!GetBytes(payload, &offset, 1, &type_byte) ||
        !GetString(payload, &offset, &rec.payload)) {
      return Malformed("replicate request");
    }
    rec.type = static_cast<uint8_t>(type_byte[0]);
  }
  if (offset != payload.size()) return Malformed("replicate request");
  return req;
}

std::string EncodeReplicateResponse(const ReplicateResponse& resp) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(resp.shard));
  PutVarint64(&out, resp.durable_lsn);
  return out;
}

Result<ReplicateResponse> DecodeReplicateResponse(std::string_view payload,
                                                  size_t offset) {
  ReplicateResponse resp;
  if (!GetCount(payload, &offset, &resp.shard) ||
      !GetVarint64(payload, &offset, &resp.durable_lsn) ||
      offset != payload.size()) {
    return Malformed("replicate response");
  }
  return resp;
}

// ---- TraceDump --------------------------------------------------------------

std::string EncodeTraceDumpRequest(const TraceDumpRequest& req) {
  std::string out;
  out.push_back(static_cast<char>(req.mode));
  PutFixed64(&out, req.trace_id);
  PutVarint32(&out, req.max_spans);
  return out;
}

Result<TraceDumpRequest> DecodeTraceDumpRequest(std::string_view payload) {
  TraceDumpRequest req;
  size_t offset = 0;
  std::string_view mode_byte;
  if (!GetBytes(payload, &offset, 1, &mode_byte) ||
      !GetFixed64(payload, &offset, &req.trace_id) ||
      !GetVarint32(payload, &offset, &req.max_spans) ||
      offset != payload.size()) {
    return Malformed("trace_dump request");
  }
  const uint8_t mode = static_cast<uint8_t>(mode_byte[0]);
  if (mode > static_cast<uint8_t>(TraceDumpMode::kAudit)) {
    return Malformed("trace_dump request");
  }
  req.mode = static_cast<TraceDumpMode>(mode);
  return req;
}

std::string EncodeTraceDumpResponse(const TraceDumpResponse& resp) {
  std::string out;
  PutVarint64(&out, resp.dropped);
  out += EncodeSpans(resp.spans);
  return out;
}

Result<TraceDumpResponse> DecodeTraceDumpResponse(std::string_view payload,
                                                  size_t offset) {
  TraceDumpResponse resp;
  if (!GetVarint64(payload, &offset, &resp.dropped)) {
    return Malformed("trace_dump response");
  }
  auto spans = DecodeSpans(payload, &offset);
  if (!spans.ok()) return spans.status();
  if (offset != payload.size()) return Malformed("trace_dump response");
  resp.spans = std::move(spans).value();
  return resp;
}

}  // namespace wire
}  // namespace paw

#ifndef PAW_SERVER_REPLICATION_H_
#define PAW_SERVER_REPLICATION_H_

/// \file replication.h
/// \brief WAL-shipping replication: leader-side stream manager and
/// follower-side apply loop.
///
/// A follower pawd is a read-capacity replica: it connects to the
/// leader like any client, authenticates as an admin-level principal,
/// and sends one SUBSCRIBE frame carrying its per-shard last-applied
/// WAL LSNs. From then on the connection *inverts*: the leader pushes
/// REPLICATE request frames — contiguous per-shard record batches —
/// and the follower acks each with the shard's durable LSN. The
/// follower re-appends every record to its own WAL through
/// `PersistentRepository::ApplyReplicated`, whose framing is
/// deterministic, so the follower's segment chain is byte-identical
/// to the leader's and *promotion is just a restart*: point a new
/// leader process at the follower's store directory.
///
/// **Leader feed.** Two sources, stitched per subscriber:
///
///  - *Live*: a `WriteAheadLog::CommitSink` forks every group-commit
///    batch (post-fsync) into a bounded in-memory ring per shard.
///  - *Catch-up*: when a subscriber's cursor trails the ring, the
///    sender streams sealed + active segment files straight from
///    disk (commit order == file order, and commits flush before the
///    sink fires, so disk never lags the ring).
///
/// A subscriber whose cursor predates the oldest on-disk segment is
/// *too far behind* — those records exist only inside a snapshot —
/// and the SUBSCRIBE is refused (re-seed by copying the store dir).
/// To keep that window from racing compaction, subscribers pin a
/// *retention floor* (`WriteAheadLog::SetRetainFloor`): sealed
/// segments at or above the floor survive compaction cleanup until
/// every subscriber's ack passes them.
///
/// **Ack modes.** `acks=local` (default) acknowledges clients after
/// the leader's own WAL commit. `acks=quorum` additionally blocks
/// each ADD_EXECUTION ack until at least one subscriber has confirmed
/// the record durable (`WaitForQuorum`), so a quorum-acked write
/// survives the leader's disk dying with the leader.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/server/wire.h"
#include "src/store/wal.h"

namespace paw {

/// \brief Knobs of the leader-side stream manager.
struct ReplicationManagerOptions {
  /// Bytes of recent commit batches buffered in memory per shard; a
  /// subscriber that falls further behind is fed from segment files.
  size_t live_buffer_bytes = 8u << 20;
  /// Caps on one REPLICATE push (records / encoded payload bytes).
  size_t max_batch_records = 512;
  size_t max_batch_bytes = 2u << 20;
  /// Per-subscriber cap on pushed-but-unacked batches; the sender
  /// stalls that subscriber (not the others) when it is reached.
  size_t max_unacked_batches = 8;
};

/// \brief Leader-side replication: subscriber registry, live ring,
/// disk catch-up, retention-floor management, and quorum waits.
///
/// Owned by the server. `AddSubscriber`/`RemoveSubscriber`/`HandleAck`
/// are called from server worker threads; one internal sender thread
/// builds and pushes batches through each subscriber's `SendFn`.
class ReplicationManager {
 public:
  /// Enqueues one encoded frame on the subscriber's connection (any
  /// thread); returns false once the connection is gone, which fails
  /// the subscriber.
  using SendFn = std::function<bool(wire::Frame&&)>;

  /// `wals[i]` is shard `i`'s log; pointers must outlive the manager.
  ReplicationManager(std::vector<WriteAheadLog*> wals,
                     ReplicationManagerOptions options = {});
  ~ReplicationManager();

  ReplicationManager(const ReplicationManager&) = delete;
  ReplicationManager& operator=(const ReplicationManager&) = delete;

  /// \brief Installs the commit sinks and starts the sender thread.
  void Start();

  /// \brief Clears the sinks, fails every subscriber, joins the
  /// sender. Idempotent; the destructor calls it.
  void Stop();

  /// \brief Registers a subscriber (its SUBSCRIBE handler). `token`
  /// identifies the connection in later `HandleAck`/`RemoveSubscriber`
  /// calls; `last_lsns[i]` is the highest LSN the follower already has
  /// for shard `i`. Pins the retention floor before validating, so the
  /// returned cursor cannot be compacted away underneath the stream.
  /// Fails when the shard count mismatches or the cursor predates the
  /// oldest on-disk segment. The subscriber starts *paused*: no push
  /// is emitted until `ActivateSubscriber`, so the caller can queue
  /// its SUBSCRIBE response first and keep the wire FIFO.
  Result<wire::SubscribeResponse> AddSubscriber(
      uint64_t token, const std::string& name,
      std::vector<uint64_t> last_lsns, SendFn send);

  /// \brief Starts pushing to a subscriber registered by
  /// `AddSubscriber` (call after the SUBSCRIBE response is queued on
  /// the connection).
  void ActivateSubscriber(uint64_t token);

  /// \brief Drops a subscriber (connection closed); recomputes the
  /// retention floor. No-op for unknown tokens.
  void RemoveSubscriber(uint64_t token);

  /// \brief Routes a follower's REPLICATE ack: advances its cursor
  /// window, observes replication lag, wakes quorum waiters, and
  /// releases retention floor the ack no longer needs.
  void HandleAck(uint64_t token, const wire::ReplicateResponse& ack);

  /// \brief Blocks until some subscriber has acked `lsn` on `shard`
  /// durable, or `timeout_ms` elapses. Returns true on quorum.
  bool WaitForQuorum(int shard, uint64_t lsn, int timeout_ms);

  /// \brief Live subscriber count (the `paw_repl_subscribers` gauge).
  size_t num_subscribers() const;

 private:
  struct Shard;
  struct Subscriber;
  struct Rep;

  void SenderLoop();
  /// One push for `sub` on `shard` if work + window allow; returns
  /// true when a batch was sent (the loop re-scans until idle).
  bool MaybeSendLocked(std::unique_lock<std::mutex>& lock,
                       Subscriber* sub, int shard);
  /// Re-derives each shard's retention floor from subscriber cursors
  /// and persists changes. Caller holds the rep mutex.
  void UpdateFloorsLocked();

  std::unique_ptr<Rep> rep_;
};

/// \brief Knobs of the follower-side apply loop.
struct ReplicationFollowerOptions {
  std::string leader_host;
  int leader_port = 0;
  /// Admin-level principal the follower authenticates as.
  std::string principal = "admin";
  /// Reported in HELLO and SUBSCRIBE (diagnostics).
  std::string follower_name = "paw-follower";
  /// Reconnect back-off after a failed connect or a dropped stream.
  int retry_ms = 500;
};

/// \brief Follower-side replication: one background thread that
/// connects to the leader, subscribes, applies pushed batches via the
/// injected callback, and acks durable LSNs. Reconnects with back-off
/// until `Stop`.
class ReplicationFollower {
 public:
  /// Applies one pushed batch under the server's lease discipline and
  /// returns the shard's durable LSN to ack; an error drops the
  /// connection (divergence is not retried silently — it reconnects
  /// and re-subscribes from the follower's own cursor).
  using ApplyFn =
      std::function<Result<uint64_t>(const wire::ReplicateRequest&)>;
  /// Supplies the per-shard last-applied LSNs for each (re)subscribe.
  using LsnsFn = std::function<std::vector<uint64_t>()>;

  ReplicationFollower(ReplicationFollowerOptions options, LsnsFn lsns,
                      ApplyFn apply);
  ~ReplicationFollower();

  ReplicationFollower(const ReplicationFollower&) = delete;
  ReplicationFollower& operator=(const ReplicationFollower&) = delete;

  void Start();
  void Stop();

  /// \brief True while subscribed to a live stream.
  bool connected() const;
  /// \brief Last connection/stream error (empty when none yet).
  std::string last_error() const;

 private:
  struct Rep;
  void Loop();
  /// One connect → subscribe → apply-until-drop cycle.
  Status RunOnce();

  std::unique_ptr<Rep> rep_;
};

}  // namespace paw

#endif  // PAW_SERVER_REPLICATION_H_

#ifndef PAW_SERVER_SERVER_H_
#define PAW_SERVER_SERVER_H_

/// \file server.h
/// \brief `pawd` — the multi-user provenance server.
///
/// Fronts a persistent store (single-directory or sharded, auto-
/// detected) and the privacy-aware query engine over the binary wire
/// protocol of `src/server/wire.h`. The design is a classic reactor:
///
///  - One *event-loop thread* owns the listening socket and every
///    connection fd, multiplexed through epoll (default on Linux) or
///    a portable `poll` fallback (`ServerOptions::use_poll`). It
///    reads bytes, parses frames, flushes responses, enforces idle
///    timeouts, and closes connections on protocol corruption (a bad
///    magic/CRC poisons the stream — there is no way to resync).
///  - A fixed *worker pool* executes requests. Frames of one
///    connection are processed serially and in order (so a pipelined
///    ADD_SPEC → ADD_EXECUTION sequence works), while different
///    connections run in parallel.
///
/// **Sessions and privacy.** A connection must HELLO (version
/// negotiation) and then AUTH as a registered principal before any
/// other opcode is accepted. Every query runs through the privacy
/// engine *as that principal*: keyword search and structural matching
/// are confined to the principal's access views, lineage rows are
/// masked and zoomed per policy, GET_SPEC requires the principal's
/// access view to cover the whole specification, and GET_EXECUTION
/// masks item values above the principal's level. COMPACT requires
/// `admin_level`.
///
/// **Write path.** ADD_EXECUTION requests are parsed off-lock and
/// enqueued onto the store's per-shard writer queues, so many
/// connections ride one group commit; when the store was opened with
/// `sync_each_append`, a request is acknowledged only after its batch
/// fdatasync'd — an acked write survives `kill -9`. Consecutive
/// pipelined ADD_EXECUTIONs of one connection are enqueued as a batch
/// before the first acknowledgment is awaited, which is what makes
/// pipelining >> sync round trips (bench/bench_server.cc, E11).
///
/// **Concurrency model (MVCC read path).** Appends AND queries hold a
/// *shared* store lease: each shard's query engine pins an MVCC read
/// view of the repository and serves from that cut, catching up to the
/// repository's mutation epoch with view/index deltas before each
/// query — searches never drain writer queues and run concurrently
/// with pipelined ingest (bench/bench_server.cc, E12). A query
/// observes a cut at least as fresh as every append acknowledged
/// before it was issued (read-your-writes per connection). Only
/// ADD_SPEC and COMPACT take the lease *exclusively* and drain first:
/// spec ingestion pins registry entries from the live entry vectors,
/// and compaction folds store files under the readers' feet. See
/// tools/README.md for the per-opcode lease table.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/store/persistent_repository.h"
#include "src/workflow/spec.h"

namespace paw {

/// \brief One principal the server will accept AUTH for.
struct ServerPrincipal {
  std::string name;
  AccessLevel level = 0;
  /// Cache/sharing group (two principals share cached answers only
  /// within one group + level).
  std::string group;
};

/// \brief Knobs of a `PawServer`.
struct ServerOptions {
  /// Address to bind; loopback by default.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (see `PawServer::port`).
  int port = 0;
  /// Request worker threads.
  int worker_threads = 4;
  /// Threads used to recover the store on startup.
  int open_threads = 4;
  /// Store knobs. `sync_each_append` decides whether an ADD ack
  /// implies durability (pawctl serve turns it on by default);
  /// `writer_threads` sizes the sharded store's writer pool.
  StoreOptions store;
  /// Principals accepted by AUTH. When empty, a single "admin" at
  /// `admin_level` is registered so a fresh server is reachable.
  std::vector<ServerPrincipal> principals;
  /// Close connections idle longer than this; 0 disables.
  int idle_timeout_ms = 0;
  /// Slow-query log threshold: requests whose parse-to-reply span
  /// exceeds this many milliseconds are logged at warning level with
  /// request id, opcode, principal, duration, and result size (plus
  /// the lease/engine trace spans when the handler stamped them).
  /// < 0 disables. Left at the default, `Start` mirrors
  /// `store.slow_query_ms` here so one knob configures both layers.
  int slow_query_ms = 100;
  /// Force the portable poll(2) backend instead of epoll.
  bool use_poll = false;
  /// Minimum level for COMPACT.
  AccessLevel admin_level = 100;
  /// Reported in the HELLO response.
  std::string server_name = "pawd";
  /// Memoize computed privacy views (zoom-outs, access views, mask
  /// sets) in the process-wide `PrivacyViewCache`. Off = recompute per
  /// query (bench_server --no-view-cache measures the difference).
  bool enable_view_cache = true;
  /// Span flight-recorder head sampling: record full sub-layer span
  /// detail for 1-in-N traces (deterministic by trace id, so leader
  /// and follower agree); 1 records every trace, 0 keeps the
  /// recorder's current setting. Slow/error requests always get their
  /// request-family spans regardless. Applied to
  /// `TraceRecorder::Global()` at `Start`.
  uint32_t trace_sample_n = 0;
  /// Byte budget for the privacy-view cache; 0 keeps the cache's
  /// current budget (default 64 MiB).
  size_t view_cache_bytes = 0;

  // ---- Replication (src/server/replication.h) ----

  /// When non-empty, this server starts as a *follower*: it connects
  /// to the leader at `follow_host:follow_port`, subscribes to its
  /// WAL stream, applies records into its own store, and serves
  /// read-only privacy-enforced queries. Write opcodes are rejected
  /// with a FailedPrecondition naming the leader ("redirect"). Leave
  /// empty (default) to run as a leader; a leader accepts SUBSCRIBE
  /// from followers whose principal is at `admin_level`.
  std::string follow_host;
  int follow_port = 0;
  /// Principal the follower authenticates as on the leader (must be
  /// registered there at `admin_level` or above).
  std::string follow_principal = "admin";
  /// Leader ack mode: false = acknowledge ADD_EXECUTION after the
  /// local WAL commit ("acks=local"); true = additionally wait until
  /// at least one subscribed follower confirms the record durable
  /// ("acks=quorum") — a quorum-acked write survives losing the
  /// leader machine entirely.
  bool quorum_acks = false;
  /// Upper bound on one quorum wait; on timeout the ADD_EXECUTION is
  /// failed back to the client (the record is still durable locally).
  int quorum_timeout_ms = 5000;
};

/// \brief The provenance server. Start it, read `port()`, connect
/// `PawClient`s; destruction (or `Stop`) shuts down gracefully —
/// in-flight requests finish, acknowledged writes are durable per the
/// store's sync mode, and the store closes cleanly (releasing the
/// store-dir lock).
class PawServer {
 public:
  /// \brief Observability counters (monotonic; read with `stats`).
  struct Stats {
    std::atomic<uint64_t> connections_accepted{0};
    std::atomic<uint64_t> frames_received{0};
    std::atomic<uint64_t> bad_frames{0};
    std::atomic<uint64_t> responses_sent{0};
    std::atomic<uint64_t> auth_failures{0};
    std::atomic<uint64_t> permission_denied{0};
    std::atomic<uint64_t> idle_closed{0};
  };

  /// \brief Opens (and locks) the store under `dir`, binds the
  /// socket, and spawns the event loop + workers. The store layout
  /// (single vs sharded) is auto-detected.
  static Result<std::unique_ptr<PawServer>> Start(const std::string& dir,
                                                  ServerOptions options);

  ~PawServer();
  PawServer(const PawServer&) = delete;
  PawServer& operator=(const PawServer&) = delete;

  /// \brief Stops accepting, flushes what can be flushed, joins the
  /// loop and the workers. Idempotent.
  void Stop();

  /// \brief The bound TCP port (the actual one when `options.port` was 0).
  int port() const;

  /// \brief Live connection count.
  int connections() const;

  const Stats& stats() const;

 private:
  struct Impl;
  explicit PawServer(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace paw

#endif  // PAW_SERVER_SERVER_H_

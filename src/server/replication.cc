#include "src/server/replication.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "src/client/paw_client.h"
#include "src/common/file_io.h"
#include "src/common/metrics.h"
#include "src/store/record.h"

namespace paw {
namespace {

Counter& ReplBatchesSent() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "paw_repl_batches_sent_total");
  return c;
}
Counter& ReplRecordsSent() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "paw_repl_records_sent_total");
  return c;
}
Counter& ReplAcks() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("paw_repl_acks_total");
  return c;
}
Counter& ReplQuorumTimeouts() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "paw_repl_quorum_timeouts_total");
  return c;
}
Gauge& ReplSubscribers() {
  static Gauge& g =
      MetricsRegistry::Global().GetGauge("paw_repl_subscribers");
  return g;
}
/// Commit-to-follower-durable latency, observed on the leader as the
/// fastest subscriber's ack passes each commit batch.
Histogram& ReplLagSeconds() {
  static Histogram& h = MetricsRegistry::Global().GetLatencyHistogram(
      "paw_repl_lag_seconds");
  return h;
}
/// Per-subscriber replication lag, in committed-but-unacked records.
/// Name-keyed (not a function-local static): one gauge per follower,
/// registered on its first ack and *unregistered* when the subscriber
/// drops, so a departed follower cannot leave a stale series behind
/// (the aggregate `paw_repl_lag_seconds` histogram had exactly that
/// bug — it kept reporting the last observation forever).
std::string SubscriberLagMetricName(const std::string& follower) {
  std::string label;
  label.reserve(follower.size());
  for (const char c : follower) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                      c == '.' || c == ':';
    label.push_back(safe ? c : '_');
  }
  return "paw_repl_subscriber_lag_records{follower=\"" + label + "\"}";
}

Counter& ReplBatchesApplied() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "paw_repl_batches_applied_total");
  return c;
}
Counter& ReplRecordsApplied() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "paw_repl_records_applied_total");
  return c;
}
Counter& ReplReconnects() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "paw_repl_reconnects_total");
  return c;
}

using Clock = std::chrono::steady_clock;

/// Reads the base LSN out of a segment file's kWalHeader record
/// without loading the whole file: frame = u32 len | u32 crc | u8
/// type | fixed64 base.
Result<uint64_t> ReadSegmentBase(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Internal("open " + path + ": " + std::strerror(errno));
  }
  char buf[kRecordHeaderSize + 8];
  ssize_t got = 0;
  while (got < static_cast<ssize_t>(sizeof(buf))) {
    const ssize_t n =
        ::pread(fd, buf + got, sizeof(buf) - static_cast<size_t>(got),
                static_cast<off_t>(got));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    got += n;
  }
  ::close(fd);
  if (got < static_cast<ssize_t>(sizeof(buf))) {
    return Status::FailedPrecondition("segment " + path +
                                      " too short for a WAL header");
  }
  const std::string_view view(buf, sizeof(buf));
  size_t offset = 0;
  uint32_t len = 0;
  uint32_t crc = 0;
  uint64_t base = 0;
  if (!GetFixed32(view, &offset, &len) ||
      !GetFixed32(view, &offset, &crc) || len != 8 ||
      static_cast<RecordType>(buf[offset]) != RecordType::kWalHeader) {
    return Status::FailedPrecondition("segment " + path +
                                      " does not start with a WAL header");
  }
  ++offset;  // type byte
  if (!GetFixed64(view, &offset, &base)) {
    return Status::FailedPrecondition("segment " + path +
                                      " holds a truncated WAL header");
  }
  return base;
}

/// One leader→follower push, pre-encoded.
struct PendingPush {
  ReplicationManager::SendFn send;
  wire::Frame frame;
};

}  // namespace

// ---- ReplicationManager -----------------------------------------------------

struct ReplicationManager::Subscriber {
  uint64_t token = 0;
  std::string name;
  SendFn send;
  bool failed = false;
  /// False until ActivateSubscriber: the SUBSCRIBE response must hit
  /// the connection's output queue before the first push does.
  bool active = false;
  /// Per shard: next LSN to push.
  std::vector<uint64_t> next;
  /// Per shard: highest LSN the follower acked durable.
  std::vector<uint64_t> acked;
  /// Per shard: end LSNs of pushed-but-unacked batches (the window).
  std::vector<std::deque<uint64_t>> inflight;
  /// Per shard: segment seq this subscriber pins (retention floor
  /// contribution); advanced as acks pass rotation points.
  std::vector<uint64_t> pin;
};

struct ReplicationManager::Shard {
  WriteAheadLog* wal = nullptr;
  /// Highest LSN the commit sink has seen on disk.
  uint64_t committed = 0;
  /// Live ring of recent commit batches (raw record.h frames),
  /// contiguous; `ring[i]` covers [base, base + count - 1].
  struct RingEntry {
    uint64_t base = 0;
    uint64_t count = 0;
    std::string frames;
    /// Trace context of the first traced record in the batch; stamped
    /// onto the push frame so follower apply/ack spans join the
    /// leader-side trace of the write that led the commit batch.
    TraceContext ctx;
  };
  std::deque<RingEntry> ring;
  size_t ring_bytes = 0;
  /// (batch end LSN, commit instant) for the lag histogram; popped as
  /// the fastest subscriber's ack passes each entry.
  std::deque<std::pair<uint64_t, Clock::time_point>> commit_times;
  /// Highest LSN any subscriber acked (quorum waits watch this).
  uint64_t max_acked = 0;
};

struct ReplicationManager::Rep {
  ReplicationManagerOptions options;
  std::vector<Shard> shards;

  mutable std::mutex mu;
  /// Wakes the sender (new commits, acks freeing window, new subs).
  std::condition_variable work_cv;
  /// Wakes quorum waiters (max_acked advanced).
  std::condition_variable quorum_cv;
  std::unordered_map<uint64_t, std::unique_ptr<Subscriber>> subscribers;
  uint64_t next_push_id = 1;
  bool started = false;
  bool stop = false;
  std::thread sender;
};

ReplicationManager::ReplicationManager(std::vector<WriteAheadLog*> wals,
                                       ReplicationManagerOptions options)
    : rep_(std::make_unique<Rep>()) {
  rep_->options = options;
  rep_->shards.resize(wals.size());
  for (size_t i = 0; i < wals.size(); ++i) {
    rep_->shards[i].wal = wals[i];
    rep_->shards[i].committed = wals[i]->last_lsn();
    rep_->shards[i].max_acked = 0;
  }
}

ReplicationManager::~ReplicationManager() { Stop(); }

void ReplicationManager::Start() {
  Rep* r = rep_.get();
  {
    std::lock_guard<std::mutex> lock(r->mu);
    if (r->started) return;
    r->started = true;
    r->stop = false;
  }
  for (size_t i = 0; i < r->shards.size(); ++i) {
    r->shards[i].wal->SetCommitSink(
        [this, i](uint64_t first_lsn, uint64_t num_records,
                  std::string_view frames,
                  const std::vector<TraceContext>& traces) {
          Rep* rr = rep_.get();
          const Clock::time_point now = Clock::now();
          {
            std::lock_guard<std::mutex> lock(rr->mu);
            Shard& sh = rr->shards[i];
            Shard::RingEntry entry;
            entry.base = first_lsn;
            entry.count = num_records;
            entry.frames.assign(frames.data(), frames.size());
            for (const TraceContext& t : traces) {
              if (t.valid()) {
                entry.ctx = t;
                break;
              }
            }
            sh.ring_bytes += entry.frames.size();
            sh.ring.push_back(std::move(entry));
            while (sh.ring_bytes > rr->options.live_buffer_bytes &&
                   sh.ring.size() > 1) {
              sh.ring_bytes -= sh.ring.front().frames.size();
              sh.ring.pop_front();
            }
            sh.committed = first_lsn + num_records - 1;
            sh.commit_times.emplace_back(sh.committed, now);
            if (sh.commit_times.size() > 4096) sh.commit_times.pop_front();
          }
          rr->work_cv.notify_all();
        });
  }
  r->sender = std::thread([this] { SenderLoop(); });
}

void ReplicationManager::Stop() {
  Rep* r = rep_.get();
  {
    std::lock_guard<std::mutex> lock(r->mu);
    if (!r->started) return;
    r->stop = true;
  }
  for (Shard& sh : r->shards) sh.wal->SetCommitSink(nullptr);
  r->work_cv.notify_all();
  r->quorum_cv.notify_all();
  if (r->sender.joinable()) r->sender.join();
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(r->mu);
    for (const auto& [token, sub] : r->subscribers) {
      names.push_back(sub->name);
    }
    r->subscribers.clear();
    r->started = false;
  }
  for (const std::string& name : names) {
    MetricsRegistry::Global().Remove(SubscriberLagMetricName(name));
  }
  ReplSubscribers().Set(0);
}

Result<wire::SubscribeResponse> ReplicationManager::AddSubscriber(
    uint64_t token, const std::string& name,
    std::vector<uint64_t> last_lsns, SendFn send) {
  Rep* r = rep_.get();
  const size_t num_shards = r->shards.size();
  if (last_lsns.size() != num_shards) {
    return Status::InvalidArgument(
        "subscriber reports " + std::to_string(last_lsns.size()) +
        " shards, leader has " + std::to_string(num_shards));
  }

  // Pin the retention floor *before* validating the cursor, so
  // compaction cannot unlink the segments this stream needs between
  // the check and the first push. Pinning at the oldest segment on
  // disk is conservative; acks release it as the follower catches up.
  auto sub = std::make_unique<Subscriber>();
  sub->token = token;
  sub->name = name;
  sub->send = std::move(send);
  sub->next.resize(num_shards);
  sub->acked.resize(num_shards);
  sub->inflight.resize(num_shards);
  sub->pin.resize(num_shards, WriteAheadLog::kNoRetainFloor);

  wire::SubscribeResponse resp;
  resp.leader_lsns.resize(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    WriteAheadLog* wal = r->shards[i].wal;
    PAW_ASSIGN_OR_RETURN(const auto segments,
                         ListWalSegments(wal->dir()));
    if (segments.empty()) {
      return Status::Internal("shard " + std::to_string(i) +
                              " has no WAL segments");
    }
    sub->pin[i] = segments.front().seq;
    PAW_RETURN_NOT_OK(wal->SetRetainFloor(
        std::min(wal->retain_floor(), segments.front().seq)));
    PAW_ASSIGN_OR_RETURN(const uint64_t oldest_base,
                         ReadSegmentBase(segments.front().path));
    const uint64_t last = last_lsns[i];
    const uint64_t tail = wal->last_lsn();
    if (last > tail) {
      return Status::InvalidArgument(
          "follower is ahead of the leader on shard " +
          std::to_string(i) + " (follower " + std::to_string(last) +
          ", leader " + std::to_string(tail) +
          "); refusing to diverge");
    }
    if (last < oldest_base) {
      return Status::FailedPrecondition(
          "follower too far behind on shard " + std::to_string(i) +
          " (needs LSN " + std::to_string(last + 1) +
          ", oldest on disk is " + std::to_string(oldest_base + 1) +
          "); re-seed from a copy of the leader store");
    }
    sub->next[i] = last + 1;
    sub->acked[i] = last;
    resp.leader_lsns[i] = tail;
  }

  size_t count = 0;
  {
    std::lock_guard<std::mutex> lock(r->mu);
    if (r->stop) return Status::FailedPrecondition("server stopping");
    r->subscribers[token] = std::move(sub);
    count = r->subscribers.size();
    UpdateFloorsLocked();
  }
  ReplSubscribers().Set(static_cast<int64_t>(count));
  r->work_cv.notify_all();
  return resp;
}

void ReplicationManager::ActivateSubscriber(uint64_t token) {
  Rep* r = rep_.get();
  {
    std::lock_guard<std::mutex> lock(r->mu);
    auto it = r->subscribers.find(token);
    if (it == r->subscribers.end()) return;
    it->second->active = true;
  }
  r->work_cv.notify_all();
}

void ReplicationManager::RemoveSubscriber(uint64_t token) {
  Rep* r = rep_.get();
  size_t count = 0;
  std::string name;
  {
    std::lock_guard<std::mutex> lock(r->mu);
    auto it = r->subscribers.find(token);
    if (it == r->subscribers.end()) return;
    name = it->second->name;
    r->subscribers.erase(it);
    count = r->subscribers.size();
    UpdateFloorsLocked();
  }
  // Drop the per-subscriber series: a gone follower must not keep
  // exporting its last lag value forever.
  MetricsRegistry::Global().Remove(SubscriberLagMetricName(name));
  ReplSubscribers().Set(static_cast<int64_t>(count));
}

void ReplicationManager::HandleAck(uint64_t token,
                                   const wire::ReplicateResponse& ack) {
  Rep* r = rep_.get();
  const Clock::time_point now = Clock::now();
  {
    std::lock_guard<std::mutex> lock(r->mu);
    auto it = r->subscribers.find(token);
    if (it == r->subscribers.end()) return;
    Subscriber* sub = it->second.get();
    const int shard = ack.shard;
    if (shard < 0 || static_cast<size_t>(shard) >= r->shards.size()) {
      return;
    }
    Shard& sh = r->shards[static_cast<size_t>(shard)];
    if (ack.durable_lsn > sub->acked[static_cast<size_t>(shard)]) {
      sub->acked[static_cast<size_t>(shard)] = ack.durable_lsn;
    }
    std::deque<uint64_t>& window =
        sub->inflight[static_cast<size_t>(shard)];
    while (!window.empty() && window.front() <= ack.durable_lsn) {
      window.pop_front();
    }
    // Once the ack clears the active segment's base, only the active
    // segment can still hold records this subscriber needs.
    if (ack.durable_lsn >= sh.wal->base_lsn()) {
      sub->pin[static_cast<size_t>(shard)] = sh.wal->active_seq();
    }
    // Refresh this follower's own lag series (committed records it
    // has not yet acked, across every shard). The registry mutex is a
    // leaf lock, so taking it under `mu` is safe.
    uint64_t behind = 0;
    for (size_t i = 0; i < r->shards.size(); ++i) {
      const uint64_t committed = r->shards[i].committed;
      if (committed > sub->acked[i]) behind += committed - sub->acked[i];
    }
    MetricsRegistry::Global()
        .GetGauge(SubscriberLagMetricName(sub->name))
        .Set(static_cast<int64_t>(behind));
    if (ack.durable_lsn > sh.max_acked) {
      sh.max_acked = ack.durable_lsn;
      while (!sh.commit_times.empty() &&
             sh.commit_times.front().first <= ack.durable_lsn) {
        ReplLagSeconds().Observe(
            std::chrono::duration<double>(
                now - sh.commit_times.front().second)
                .count());
        sh.commit_times.pop_front();
      }
    }
    UpdateFloorsLocked();
  }
  ReplAcks().Add();
  r->quorum_cv.notify_all();
  r->work_cv.notify_all();
}

bool ReplicationManager::WaitForQuorum(int shard, uint64_t lsn,
                                       int timeout_ms) {
  Rep* r = rep_.get();
  if (shard < 0 || static_cast<size_t>(shard) >= r->shards.size()) {
    return false;
  }
  std::unique_lock<std::mutex> lock(r->mu);
  const bool ok = r->quorum_cv.wait_for(
      lock, std::chrono::milliseconds(timeout_ms), [&] {
        return r->stop ||
               r->shards[static_cast<size_t>(shard)].max_acked >= lsn;
      });
  const bool reached =
      ok && r->shards[static_cast<size_t>(shard)].max_acked >= lsn;
  if (!reached) ReplQuorumTimeouts().Add();
  return reached;
}

size_t ReplicationManager::num_subscribers() const {
  Rep* r = rep_.get();
  std::lock_guard<std::mutex> lock(r->mu);
  return r->subscribers.size();
}

void ReplicationManager::UpdateFloorsLocked() {
  Rep* r = rep_.get();
  for (size_t i = 0; i < r->shards.size(); ++i) {
    uint64_t floor = WriteAheadLog::kNoRetainFloor;
    for (const auto& [token, sub] : r->subscribers) {
      if (sub->failed) continue;
      floor = std::min(floor, sub->pin[i]);
    }
    WriteAheadLog* wal = r->shards[i].wal;
    if (wal->retain_floor() != floor) {
      // Floor moves are advisory for liveness, not correctness: a
      // failed write just retains segments longer.
      (void)wal->SetRetainFloor(floor);
    }
  }
}

bool ReplicationManager::MaybeSendLocked(
    std::unique_lock<std::mutex>& lock, Subscriber* sub, int shard) {
  Rep* r = rep_.get();
  Shard& sh = r->shards[static_cast<size_t>(shard)];
  const size_t si = static_cast<size_t>(shard);
  if (sub->failed || !sub->active) return false;
  if (sub->inflight[si].size() >= r->options.max_unacked_batches) {
    return false;
  }
  const uint64_t next = sub->next[si];
  if (next > sh.committed) return false;  // caught up

  wire::ReplicateRequest req;
  req.shard = shard;
  req.base_lsn = next;
  size_t bytes = 0;
  // Context the push frame carries: the first traced commit batch
  // contributing records. Disk catch-up pushes carry none — those
  // batches predate the follower's subscription.
  TraceContext push_trace;

  const bool ring_covers =
      !sh.ring.empty() && next >= sh.ring.front().base;
  if (ring_covers) {
    // Stream from the in-memory ring: parse the raw commit-batch
    // frames back into records, skipping any below the cursor.
    for (const Shard::RingEntry& entry : sh.ring) {
      if (entry.base + entry.count <= next) continue;
      if (!push_trace.valid()) push_trace = entry.ctx;
      RecordReader reader(entry.frames);
      Record record;
      uint64_t lsn = entry.base - 1;
      while (reader.Next(&record) == ReadOutcome::kRecord) {
        ++lsn;
        if (lsn < next) continue;
        if (lsn != req.base_lsn + req.records.size()) break;  // gap
        bytes += record.payload.size();
        wire::ReplicateRequest::Rec rec;
        rec.type = static_cast<uint8_t>(record.type);
        rec.payload = std::move(record.payload);
        req.records.push_back(std::move(rec));
        if (req.records.size() >= r->options.max_batch_records ||
            bytes >= r->options.max_batch_bytes) {
          break;
        }
      }
      if (req.records.size() >= r->options.max_batch_records ||
          bytes >= r->options.max_batch_bytes) {
        break;
      }
    }
  } else {
    // Catch-up: stream from segment files, off-lock (disk I/O).
    const std::string dir = sh.wal->dir();
    lock.unlock();
    Result<std::vector<WalSegmentFile>> segments = ListWalSegments(dir);
    std::string data;
    uint64_t chosen_base = 0;
    Status status = segments.status();
    if (status.ok()) {
      // The containing segment is the last one whose base is below
      // the cursor (its records span (base, next segment's base]).
      const WalSegmentFile* chosen = nullptr;
      for (const WalSegmentFile& seg : segments.value()) {
        Result<uint64_t> base = ReadSegmentBase(seg.path);
        if (!base.ok()) {
          status = base.status();
          break;
        }
        if (base.value() < next) {
          chosen = &seg;
          chosen_base = base.value();
        } else {
          break;
        }
      }
      if (status.ok() && chosen == nullptr) {
        status = Status::FailedPrecondition(
            "records below LSN " + std::to_string(next) +
            " are no longer on disk");
      }
      if (status.ok()) {
        Result<std::string> read = ReadFileToString(chosen->path);
        if (read.ok()) {
          data = std::move(read.value());
        } else {
          status = read.status();
        }
      }
    }
    if (status.ok()) {
      RecordReader reader(data);
      Record record;
      uint64_t lsn = chosen_base;
      // A torn tail here just means the active segment grew under the
      // read; send the clean prefix and loop.
      while (reader.Next(&record) == ReadOutcome::kRecord) {
        if (record.type == RecordType::kWalHeader) continue;
        ++lsn;
        if (lsn < next) continue;
        bytes += record.payload.size();
        wire::ReplicateRequest::Rec rec;
        rec.type = static_cast<uint8_t>(record.type);
        rec.payload = std::move(record.payload);
        req.records.push_back(std::move(rec));
        if (req.records.size() >= r->options.max_batch_records ||
            bytes >= r->options.max_batch_bytes) {
          break;
        }
      }
    }
    lock.lock();
    // Re-validate: the subscriber may have been dropped mid-read.
    auto it = r->subscribers.find(sub->token);
    if (it == r->subscribers.end() || it->second.get() != sub ||
        sub->failed || r->stop) {
      return false;
    }
    if (!status.ok()) {
      sub->failed = true;
      return false;
    }
    if (req.records.empty()) return false;  // racing rotation; retry
  }

  if (req.records.empty()) return false;

  wire::Frame frame;
  frame.version = wire::kProtocolVersion;
  frame.opcode = wire::Opcode::kReplicate;
  frame.request_id = r->next_push_id++;
  frame.payload = wire::EncodeReplicateRequest(req);
  frame.trace = push_trace;
  const uint64_t end = req.base_lsn + req.records.size() - 1;
  sub->next[si] = end + 1;
  sub->inflight[si].push_back(end);
  SendFn send = sub->send;
  const size_t sent_records = req.records.size();
  const uint64_t sent_base = req.base_lsn;
  const std::string sub_name = sub->name;  // `sub` may die off-lock

  lock.unlock();
  bool delivered;
  {
    // Joins the originating write's trace when the batch has one and
    // that trace is sampled; otherwise records nothing.
    ScopedTraceContext push_tl(push_trace);
    ScopedSpan span("repl.push");
    span.set_detail("shard=" + std::to_string(shard) + " base=" +
                    std::to_string(sent_base) + " n=" +
                    std::to_string(sent_records) + " to=" + sub_name);
    delivered = send(std::move(frame));
  }
  lock.lock();
  if (delivered) {
    ReplBatchesSent().Add();
    ReplRecordsSent().Add(sent_records);
  } else {
    auto it = r->subscribers.find(sub->token);
    if (it != r->subscribers.end() && it->second.get() == sub) {
      sub->failed = true;
    }
  }
  return delivered;
}

void ReplicationManager::SenderLoop() {
  Rep* r = rep_.get();
  std::unique_lock<std::mutex> lock(r->mu);
  for (;;) {
    if (r->stop) return;
    bool sent = false;
    // Round-robin one batch per (subscriber, shard) per pass, so a
    // catching-up follower cannot starve a live one.
    for (auto& [token, sub] : r->subscribers) {
      for (size_t i = 0; i < r->shards.size(); ++i) {
        if (r->stop) return;
        sent |= MaybeSendLocked(lock, sub.get(), static_cast<int>(i));
      }
    }
    if (!sent) {
      // Idle or window-stalled: sleep until a commit or ack wakes us.
      // The timeout bounds the wait against lost wakeups.
      r->work_cv.wait_for(lock, std::chrono::milliseconds(50));
    }
  }
}

// ---- ReplicationFollower ----------------------------------------------------

struct ReplicationFollower::Rep {
  ReplicationFollowerOptions options;
  LsnsFn lsns;
  ApplyFn apply;

  mutable std::mutex mu;
  std::condition_variable cv;
  bool stop = false;
  bool connected = false;
  std::string last_error;
  PawClient* live_client = nullptr;  // for Stop() to shut down
  std::thread thread;
};

ReplicationFollower::ReplicationFollower(
    ReplicationFollowerOptions options, LsnsFn lsns, ApplyFn apply)
    : rep_(std::make_unique<Rep>()) {
  rep_->options = std::move(options);
  rep_->lsns = std::move(lsns);
  rep_->apply = std::move(apply);
}

ReplicationFollower::~ReplicationFollower() { Stop(); }

void ReplicationFollower::Start() {
  rep_->thread = std::thread([this] { Loop(); });
}

void ReplicationFollower::Stop() {
  Rep* r = rep_.get();
  {
    std::lock_guard<std::mutex> lock(r->mu);
    r->stop = true;
    if (r->live_client != nullptr) {
      // Unblocks the reader; the loop exits on the resulting error.
      r->live_client->Shutdown();
    }
  }
  r->cv.notify_all();
  if (r->thread.joinable()) r->thread.join();
}

bool ReplicationFollower::connected() const {
  std::lock_guard<std::mutex> lock(rep_->mu);
  return rep_->connected;
}

std::string ReplicationFollower::last_error() const {
  std::lock_guard<std::mutex> lock(rep_->mu);
  return rep_->last_error;
}

void ReplicationFollower::Loop() {
  Rep* r = rep_.get();
  bool first = true;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(r->mu);
      if (r->stop) return;
      if (!first) {
        r->cv.wait_for(lock,
                       std::chrono::milliseconds(r->options.retry_ms),
                       [&] { return r->stop; });
        if (r->stop) return;
      }
    }
    if (!first) ReplReconnects().Add();
    first = false;
    const Status status = RunOnce();
    {
      std::lock_guard<std::mutex> lock(r->mu);
      r->connected = false;
      if (!status.ok()) r->last_error = status.message();
      if (r->stop) return;
    }
  }
}

Status ReplicationFollower::RunOnce() {
  Rep* r = rep_.get();
  PawClientOptions copts;
  copts.client_name = r->options.follower_name;
  PAW_ASSIGN_OR_RETURN(
      PawClient client,
      PawClient::Connect(r->options.leader_host, r->options.leader_port,
                         copts));
  PAW_RETURN_NOT_OK(client.Auth(r->options.principal));

  wire::SubscribeRequest sub;
  sub.last_lsns = r->lsns();
  sub.follower_name = r->options.follower_name;
  PAW_ASSIGN_OR_RETURN(const wire::SubscribeResponse resp,
                       client.Subscribe(sub));
  (void)resp;

  {
    std::lock_guard<std::mutex> lock(r->mu);
    if (r->stop) return Status::OK();
    r->connected = true;
    r->live_client = &client;
  }
  // From here the connection is inverted: read leader pushes, apply,
  // ack. Any error drops the stream; the outer loop reconnects and
  // re-subscribes from the follower's own durable cursor.
  Status status = Status::OK();
  for (;;) {
    Result<wire::Frame> pushed = client.ReadPushedFrame();
    if (!pushed.ok()) {
      status = pushed.status();
      break;
    }
    if (pushed.value().opcode != wire::Opcode::kReplicate) {
      status = Status::Internal(
          "unexpected push opcode " +
          std::string(wire::OpcodeName(pushed.value().opcode)));
      break;
    }
    Result<wire::ReplicateRequest> batch =
        wire::DecodeReplicateRequest(pushed.value().payload);
    if (!batch.ok()) {
      status = batch.status();
      break;
    }
    // Adopt the leader's trace for the whole apply+ack step: the
    // follower samples by the shared trace id, so a sampled write on
    // the leader yields "repl.apply" spans here under the same id.
    const TraceContext push_trace = pushed.value().trace;
    ScopedTraceContext push_tl(push_trace);
    Result<uint64_t> durable = Status::Internal("apply did not run");
    {
      ScopedSpan span("repl.apply");
      span.set_detail(
          "shard=" + std::to_string(batch.value().shard) + " base=" +
          std::to_string(batch.value().base_lsn) + " n=" +
          std::to_string(batch.value().records.size()));
      durable = r->apply(batch.value());
      if (!durable.ok()) span.set_error();
    }
    if (!durable.ok()) {
      status = durable.status();
      break;
    }
    ReplBatchesApplied().Add();
    ReplRecordsApplied().Add(batch.value().records.size());
    wire::ReplicateResponse ack;
    ack.shard = batch.value().shard;
    ack.durable_lsn = durable.value();
    std::string payload;
    wire::AppendResponseStatus(Status::OK(), &payload);
    payload += wire::EncodeReplicateResponse(ack);
    // Echo the context on the ack so the leader's ack handling (and
    // its "repl.ack_recv" span) joins the same trace.
    status = client.SendRawFrame(wire::Opcode::kReplicate,
                                 pushed.value().request_id,
                                 std::move(payload), push_trace);
    if (!status.ok()) break;
    {
      std::lock_guard<std::mutex> lock(r->mu);
      if (r->stop) break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(r->mu);
    r->live_client = nullptr;
    r->connected = false;
  }
  return status;
}

}  // namespace paw

#ifndef PAW_SERVER_WIRE_H_
#define PAW_SERVER_WIRE_H_

/// \file wire.h
/// \brief The pawd binary wire protocol: frames and message bodies.
///
/// Every request and response travels as one length-prefixed,
/// CRC-checksummed *frame*:
///
/// \code
///   +-----------+-------------+-----------+-----+--------+------------+---------+
///   | magic u32 | payload u32 | crc32 u32 | ver | opcode | req id u64 | payload |
///   +-----------+-------------+-----------+-----+--------+------------+---------+
///     "PAW!" LE   body bytes    see below   u8     u8       LE fixed64
/// \endcode
///
/// The CRC covers everything after itself — version byte, opcode byte,
/// request id, and the payload — so a frame whose length field
/// survived a partial write (or a bit flip anywhere in the covered
/// region) is rejected rather than parsed, exactly like the store's
/// record format (src/store/record.h, whose fixed/varint primitives
/// the payload codecs reuse). Payloads above `kMaxFramePayload` are
/// treated as protocol corruption, never allocated.
///
/// **Version negotiation.** The first frame on a connection must be
/// `kHello`, carrying the client's `[min_version, max_version]` range.
/// The server answers with the highest version both sides support and
/// every later frame on the connection — both directions — must carry
/// it; a disjoint range is a `FailedPrecondition` error response
/// followed by connection close. Frame *layout* is invariant across
/// versions (the version byte gates payload semantics), so a v1 parser
/// can always frame a future-version stream even when it cannot
/// interpret it.
///
/// **Trace-context trailer (v2).** On a connection that negotiated
/// protocol version ≥ 2, every post-HELLO frame — both directions —
/// carries a 16-byte trailer (`fixed64 trace_id | fixed64 span_id`,
/// src/common/trace.h) appended after the body. The trailer is part of
/// the payload for framing purposes (counted by `payload u32`, covered
/// by the CRC) and is stripped by `ParseFrame` into `Frame::trace`, so
/// body codecs are identical across versions. HELLO frames never carry
/// it (negotiation happens before the version is agreed), which is
/// also why a v1 peer — which never sees a v2 frame — interoperates
/// unchanged.
///
/// **Responses** reuse the request's opcode and request id; every
/// response payload begins with `varint status_code | str message`
/// (`str` = varint length + raw bytes, as in the store's v2 codec),
/// followed by the op-specific body only when the status is OK.
///
/// Request/response body layouts are documented next to their structs
/// below; tools/README.md carries the operator-facing summary.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/common/trace.h"

namespace paw {
namespace wire {

/// \brief Frame magic: "PAW!" little-endian.
inline constexpr uint32_t kMagic = 0x21574150u;

/// \brief Newest protocol version this build speaks. v2 = v1 plus the
/// trace-context frame trailer (see file comment); bodies are
/// unchanged.
inline constexpr uint8_t kProtocolVersion = 2;
/// \brief Oldest protocol version this build still accepts.
inline constexpr uint8_t kMinProtocolVersion = 1;

/// \brief Frame header size: magic + payload_len + crc + version +
/// opcode + request id.
inline constexpr size_t kFrameHeaderSize = 4 + 4 + 4 + 1 + 1 + 8;

/// \brief Upper bound on a frame payload; larger lengths are protocol
/// corruption (a spec or execution text this large is rejected at the
/// application layer long before).
inline constexpr uint32_t kMaxFramePayload = 16u << 20;

/// \brief Operation selector of a frame.
enum class Opcode : uint8_t {
  kHello = 1,        ///< version negotiation; first frame, pre-auth
  kAuth = 2,         ///< bind the connection to a principal
  kAddSpec = 3,      ///< durably store a specification + policy
  kAddExecution = 4, ///< durably store one execution of a stored spec
  kGetSpec = 5,      ///< fetch a spec (full access view required)
  kGetExecution = 6, ///< fetch an execution, values masked per policy
  kKeywordSearch = 7,///< repository-wide keyword search
  kStructuralQuery = 8, ///< pattern match inside the principal's view
  kLineage = 9,      ///< provenance of one data item, masked + zoomed
  kStatus = 10,      ///< server / store statistics
  kCompact = 11,     ///< fold WALs into snapshots (admin only)
  kMetrics = 12,     ///< snapshot of the process metrics registry
  kSubscribe = 13,   ///< follower attaches to the replication stream
  kReplicate = 14,   ///< leader→follower WAL batch; reply acks durability
  kTraceDump = 15,   ///< snapshot of the span flight recorder
};

/// \brief True iff `op` names a known opcode.
bool IsValidOpcode(uint8_t op);

/// \brief Short name of an opcode ("hello", "add_spec", ...).
std::string_view OpcodeName(Opcode op);

/// \brief One parsed frame.
struct Frame {
  uint8_t version = kProtocolVersion;
  Opcode opcode = Opcode::kHello;
  uint64_t request_id = 0;
  std::string payload;
  /// Trace-context trailer: filled by `ParseFrame` / consumed by
  /// `AppendFrame` on v2 non-HELLO frames; all zero otherwise.
  TraceContext trace;
};

/// \brief Appends the encoded frame to `out`.
void AppendFrame(const Frame& frame, std::string* out);

/// \brief Outcome of one `ParseFrame` attempt.
enum class ParseResult {
  /// A whole, checksum-valid frame was produced.
  kFrame,
  /// The buffer holds a valid prefix; read more bytes.
  kNeedMore,
  /// The buffer cannot be (a prefix of) a valid frame: bad magic,
  /// implausible length, checksum mismatch, or unknown opcode.
  kBad,
};

/// \brief Tries to parse one frame from the head of `buf`.
///
/// On `kFrame`, `*frame` holds the message and `*consumed` the bytes
/// to drop from the buffer. On `kBad`, `*error` says why (the
/// connection should be closed — framing is unrecoverable once the
/// stream is corrupt).
ParseResult ParseFrame(std::string_view buf, Frame* frame,
                       size_t* consumed, std::string* error);

// ---- Response status preamble ----------------------------------------------

/// \brief Appends the `varint code | str message` preamble every
/// response payload starts with.
void AppendResponseStatus(const Status& status, std::string* out);

/// \brief Reads the response preamble at `*offset`, reconstructing the
/// `Status` (OK when the wire code is 0) into `*out`; returns false on
/// a malformed preamble.
bool ReadResponseStatus(std::string_view payload, size_t* offset,
                        Status* out);

// ---- Message bodies ---------------------------------------------------------
//
// Each body has an Encode* function producing the payload bytes and a
// Decode* function rebuilding the struct; both sides share them, and
// wire_test fuzzes the round trip. `str` is varint length + raw bytes.

/// \brief `kHello` request: `varint min | varint max | str client`.
struct HelloRequest {
  uint8_t min_version = kMinProtocolVersion;
  uint8_t max_version = kProtocolVersion;
  std::string client_name;
};
std::string EncodeHelloRequest(const HelloRequest& req);
Result<HelloRequest> DecodeHelloRequest(std::string_view payload);

/// \brief `kHello` response body: `varint version | str server`.
struct HelloResponse {
  uint8_t version = kProtocolVersion;
  std::string server_name;
};
std::string EncodeHelloResponse(const HelloResponse& resp);
Result<HelloResponse> DecodeHelloResponse(std::string_view payload,
                                          size_t offset);

/// \brief `kAuth` request: `str principal`.
struct AuthRequest {
  std::string principal;
};
std::string EncodeAuthRequest(const AuthRequest& req);
Result<AuthRequest> DecodeAuthRequest(std::string_view payload);

/// \brief `kAuth` response body: `varint principal_id | zigzag level`.
struct AuthResponse {
  int principal_id = -1;
  int level = 0;
};
std::string EncodeAuthResponse(const AuthResponse& resp);
Result<AuthResponse> DecodeAuthResponse(std::string_view payload,
                                        size_t offset);

/// \brief `kAddSpec` request: `str spec_text | str policy_text`.
struct AddSpecRequest {
  std::string spec_text;
  std::string policy_text;
};
std::string EncodeAddSpecRequest(const AddSpecRequest& req);
Result<AddSpecRequest> DecodeAddSpecRequest(std::string_view payload);

/// \brief `kAddSpec` response body:
/// `varint shard | varint spec_id | varint global_lsn`.
struct AddSpecResponse {
  int shard = 0;
  int spec_id = -1;
  uint64_t global_lsn = 0;
};
std::string EncodeAddSpecResponse(const AddSpecResponse& resp);
Result<AddSpecResponse> DecodeAddSpecResponse(std::string_view payload,
                                              size_t offset);

/// \brief `kAddExecution` request: `str spec_name | str exec_text`.
struct AddExecutionRequest {
  std::string spec_name;
  std::string exec_text;
};
std::string EncodeAddExecutionRequest(const AddExecutionRequest& req);
Result<AddExecutionRequest> DecodeAddExecutionRequest(
    std::string_view payload);

/// \brief `kAddExecution` response body:
/// `varint shard | varint exec_id | varint global_lsn`.
struct AddExecutionResponse {
  int shard = 0;
  int exec_id = -1;
  uint64_t global_lsn = 0;
};
std::string EncodeAddExecutionResponse(const AddExecutionResponse& resp);
Result<AddExecutionResponse> DecodeAddExecutionResponse(
    std::string_view payload, size_t offset);

/// \brief `kGetSpec` request: `str spec_name`.
struct GetSpecRequest {
  std::string spec_name;
};
std::string EncodeGetSpecRequest(const GetSpecRequest& req);
Result<GetSpecRequest> DecodeGetSpecRequest(std::string_view payload);

/// \brief `kGetSpec` response body: `str spec_text | str policy_text`.
struct GetSpecResponse {
  std::string spec_text;
  std::string policy_text;
};
std::string EncodeGetSpecResponse(const GetSpecResponse& resp);
Result<GetSpecResponse> DecodeGetSpecResponse(std::string_view payload,
                                              size_t offset);

/// \brief `kGetExecution` request: `str spec_name | varint ordinal`
/// (ordinal = index into the spec's executions, in append order).
struct GetExecutionRequest {
  std::string spec_name;
  int ordinal = 0;
};
std::string EncodeGetExecutionRequest(const GetExecutionRequest& req);
Result<GetExecutionRequest> DecodeGetExecutionRequest(
    std::string_view payload);

/// \brief `kGetExecution` response body:
/// `str exec_text | varint num_masked` — item values above the
/// principal's level arrive masked, and `num_masked` says how many.
struct GetExecutionResponse {
  std::string exec_text;
  int num_masked = 0;
};
std::string EncodeGetExecutionResponse(const GetExecutionResponse& resp);
Result<GetExecutionResponse> DecodeGetExecutionResponse(
    std::string_view payload, size_t offset);

/// \brief `kKeywordSearch` request: `varint n | n x str term`.
struct SearchRequest {
  std::vector<std::string> terms;
};
std::string EncodeSearchRequest(const SearchRequest& req);
Result<SearchRequest> DecodeSearchRequest(std::string_view payload);

/// \brief One keyword hit:
/// `str spec_name | fixed64 score_bits | varint view_size |
///  varint n x str module_code`.
struct SearchHit {
  std::string spec_name;
  double score = 0;
  int view_size = 0;
  std::vector<std::string> matched;
};

/// \brief `kKeywordSearch` response body: `varint n | n x hit`.
struct SearchResponse {
  std::vector<SearchHit> hits;
};
std::string EncodeSearchResponse(const SearchResponse& resp);
Result<SearchResponse> DecodeSearchResponse(std::string_view payload,
                                            size_t offset);

/// \brief `kStructuralQuery` request:
/// `str spec_name | varint n_vars x str term |
///  varint n_edges x { varint from | varint to | u8 transitive }`.
struct StructuralRequest {
  std::string spec_name;
  std::vector<std::string> var_terms;
  struct Edge {
    int from = 0;
    int to = 0;
    bool transitive = true;
  };
  std::vector<Edge> edges;
};
std::string EncodeStructuralRequest(const StructuralRequest& req);
Result<StructuralRequest> DecodeStructuralRequest(std::string_view payload);

/// \brief `kStructuralQuery` response body:
/// `varint n_matches x { varint k x str module_code }`.
struct StructuralResponse {
  std::vector<std::vector<std::string>> matches;
};
std::string EncodeStructuralResponse(const StructuralResponse& resp);
Result<StructuralResponse> DecodeStructuralResponse(
    std::string_view payload, size_t offset);

/// \brief `kLineage` request:
/// `str spec_name | varint ordinal | varint item`.
struct LineageRequest {
  std::string spec_name;
  int ordinal = 0;
  int item = 0;
};
std::string EncodeLineageRequest(const LineageRequest& req);
Result<LineageRequest> DecodeLineageRequest(std::string_view payload);

/// \brief `kLineage` response body:
/// `varint zoom_steps | varint n x str prefix_code |
///  varint n x str row`.
struct LineageResponse {
  int zoom_steps = 0;
  std::vector<std::string> prefix_codes;
  std::vector<std::string> rows;
};
std::string EncodeLineageResponse(const LineageResponse& resp);
Result<LineageResponse> DecodeLineageResponse(std::string_view payload,
                                              size_t offset);

/// \brief `kStatus` response body (request payload is empty):
/// `varint shards | varint specs | varint executions |
///  varint principals | varint connections | str text`.
struct StatusResponse {
  int shards = 0;
  int specs = 0;
  int executions = 0;
  int principals = 0;
  int connections = 0;
  std::string text;
};
std::string EncodeStatusResponse(const StatusResponse& resp);
Result<StatusResponse> DecodeStatusResponse(std::string_view payload,
                                            size_t offset);

/// \brief `kMetrics` response body (request payload is empty): the
/// varint-encoded registry snapshot (src/common/metrics.h codec).
struct MetricsResponse {
  MetricsSnapshot snapshot;
};
std::string EncodeMetricsResponse(const MetricsResponse& resp);
Result<MetricsResponse> DecodeMetricsResponse(std::string_view payload,
                                              size_t offset);

// ---- Replication ------------------------------------------------------------
//
// A follower connects like any client (HELLO, AUTH as an admin-level
// principal), then sends one `kSubscribe` carrying its per-shard
// last-applied WAL LSNs. From the response on, the connection
// *inverts*: the leader pushes `kReplicate` request frames (each one
// shard's contiguous record batch) and the follower answers each with
// a `kReplicate` response frame acking the shard's durable LSN. LSNs
// here are raw per-shard WAL LSNs, never epoch-prefixed global ones.

/// \brief `kSubscribe` request:
/// `varint n_shards | n x varint last_lsn | str follower_name`
/// (`last_lsn` = highest WAL LSN the follower has applied for that
/// shard; 0 means "from the beginning").
struct SubscribeRequest {
  std::vector<uint64_t> last_lsns;
  std::string follower_name;
};
std::string EncodeSubscribeRequest(const SubscribeRequest& req);
Result<SubscribeRequest> DecodeSubscribeRequest(std::string_view payload);

/// \brief `kSubscribe` response body:
/// `varint n_shards | n x varint leader_lsn` — the leader's current
/// per-shard WAL tail, so the follower knows its initial lag.
struct SubscribeResponse {
  std::vector<uint64_t> leader_lsns;
};
std::string EncodeSubscribeResponse(const SubscribeResponse& resp);
Result<SubscribeResponse> DecodeSubscribeResponse(std::string_view payload,
                                                  size_t offset);

/// \brief `kReplicate` request (leader→follower push):
/// `varint shard | varint base_lsn | varint n |
///  n x { u8 record_type | str payload }` — `base_lsn` is the WAL LSN
/// of `records[0]`; the batch is contiguous, so records[i] has LSN
/// `base_lsn + i`.
struct ReplicateRequest {
  struct Rec {
    uint8_t type = 0;
    std::string payload;
  };
  int shard = 0;
  uint64_t base_lsn = 0;
  std::vector<Rec> records;
};
std::string EncodeReplicateRequest(const ReplicateRequest& req);
Result<ReplicateRequest> DecodeReplicateRequest(std::string_view payload);

/// \brief `kReplicate` response body (follower→leader ack):
/// `varint shard | varint durable_lsn` — every record of that shard up
/// to `durable_lsn` is applied and durable in the follower's own WAL.
struct ReplicateResponse {
  int shard = 0;
  uint64_t durable_lsn = 0;
};
std::string EncodeReplicateResponse(const ReplicateResponse& resp);
Result<ReplicateResponse> DecodeReplicateResponse(std::string_view payload,
                                                  size_t offset);

// ---- Tracing ----------------------------------------------------------------

/// \brief Which ring entries a `kTraceDump` request selects.
enum class TraceDumpMode : uint8_t {
  kAll = 0,     ///< every span in the ring
  kSlow = 1,    ///< traces whose root span is flagged slow
  kErrors = 2,  ///< traces whose root span is flagged error
  kById = 3,    ///< spans of `trace_id` only
  kAudit = 4,   ///< audit events only
};

/// \brief `kTraceDump` request:
/// `u8 mode | fixed64 trace_id | varint max_spans` (`trace_id` only
/// meaningful for `kById`; `max_spans` 0 = server default).
struct TraceDumpRequest {
  TraceDumpMode mode = TraceDumpMode::kAll;
  uint64_t trace_id = 0;
  uint32_t max_spans = 0;
};
std::string EncodeTraceDumpRequest(const TraceDumpRequest& req);
Result<TraceDumpRequest> DecodeTraceDumpRequest(std::string_view payload);

/// \brief `kTraceDump` response body: `varint dropped | span list`
/// (src/common/trace.h codec). `dropped` = spans that matched but were
/// cut by `max_spans` (oldest first).
struct TraceDumpResponse {
  uint64_t dropped = 0;
  std::vector<Span> spans;
};
std::string EncodeTraceDumpResponse(const TraceDumpResponse& resp);
Result<TraceDumpResponse> DecodeTraceDumpResponse(std::string_view payload,
                                                  size_t offset);

}  // namespace wire
}  // namespace paw

#endif  // PAW_SERVER_WIRE_H_

#ifndef PAW_REPO_REPOSITORY_H_
#define PAW_REPO_REPOSITORY_H_

/// \file repository.h
/// \brief The provenance-aware workflow repository (paper Sec. 1).
///
/// Stores workflow specifications (with their expansion hierarchies and
/// privacy policies) and provenance graphs of their executions. Address
/// stability: entries live behind unique_ptr, so views and executions may
/// hold pointers to their specifications across insertions.

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/privacy/policy.h"
#include "src/provenance/execution.h"
#include "src/workflow/hierarchy.h"
#include "src/workflow/spec.h"

namespace paw {

/// \brief A stored specification with its derived hierarchy and policy.
struct SpecEntry {
  int id = -1;
  Specification spec;
  ExpansionHierarchy hierarchy;
  PolicySet policy;
};

/// \brief A stored execution.
struct ExecutionEntry {
  ExecutionId id;
  int spec_id = -1;
  Execution exec;
};

/// \brief In-memory repository of specifications and executions.
class Repository {
 public:
  /// \brief Stores a specification (with optional policy); returns its id.
  Result<int> AddSpecification(Specification spec, PolicySet policy = {});

  /// \brief Stores an execution of spec `spec_id`.
  Result<ExecutionId> AddExecution(int spec_id, Execution exec);

  int num_specs() const { return static_cast<int>(specs_.size()); }
  int num_executions() const { return static_cast<int>(execs_.size()); }

  /// \brief Entry accessor; id must be in range.
  const SpecEntry& entry(int id) const {
    return *specs_[static_cast<size_t>(id)];
  }

  /// \brief Execution accessor; id must be in range.
  const ExecutionEntry& execution(ExecutionId id) const {
    return *execs_[static_cast<size_t>(id.value())];
  }

  /// \brief Entry lookup by specification name.
  Result<int> FindSpec(std::string_view name) const;

  /// \brief Executions of one specification.
  std::vector<ExecutionId> ExecutionsOf(int spec_id) const;

  /// \brief Rough memory footprint in bytes (for the E5 space accounting).
  int64_t ApproxBytes() const;

 private:
  std::vector<std::unique_ptr<SpecEntry>> specs_;
  std::vector<std::unique_ptr<ExecutionEntry>> execs_;
};

}  // namespace paw

#endif  // PAW_REPO_REPOSITORY_H_

#ifndef PAW_REPO_REPOSITORY_H_
#define PAW_REPO_REPOSITORY_H_

/// \file repository.h
/// \brief The provenance-aware workflow repository (paper Sec. 1).
///
/// Stores workflow specifications (with their expansion hierarchies and
/// privacy policies) and provenance graphs of their executions. Address
/// stability: entries live behind unique_ptr, so views and executions may
/// hold pointers to their specifications across insertions.

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/privacy/policy.h"
#include "src/provenance/execution.h"
#include "src/workflow/hierarchy.h"
#include "src/workflow/spec.h"

namespace paw {

/// \brief Durability metadata stamped by the persistent store layer
/// (src/store/persistent_repository.h) on entries it has logged.
///
/// Entries added to a plain in-memory `Repository` keep the defaults:
/// lsn 0 and an empty locator mean "volatile, never persisted".
struct PersistMeta {
  /// LSN of the record that persisted this entry. For entries
  /// recovered from a snapshot this is the snapshot's covered LSN (an
  /// upper bound of the original append LSN, which snapshots do not
  /// retain).
  uint64_t lsn = 0;
  /// CRC32 of the serialized record payload (integrity auditing).
  uint32_t payload_crc = 0;
  /// Serialized payload size in bytes.
  uint32_t payload_bytes = 0;
  /// Human-readable origin, e.g. "wal:42" or "snapshot:42".
  std::string locator;
};

/// \brief A stored specification with its derived hierarchy and policy.
struct SpecEntry {
  int id = -1;
  Specification spec;
  ExpansionHierarchy hierarchy;
  PolicySet policy;
  PersistMeta persist;
};

/// \brief A stored execution.
struct ExecutionEntry {
  ExecutionId id;
  int spec_id = -1;
  Execution exec;
  PersistMeta persist;
};

/// \brief A pinned, point-in-time view of a repository.
///
/// Entries live behind `unique_ptr` (stable addresses) and are never
/// mutated after insertion, so a consistent view is just the entry
/// pointers captured at the cut: it stays valid — and frozen — while
/// new entries are appended behind it. This is what lets a background
/// snapshot writer walk the repository while a writer thread keeps
/// ingesting. Capturing must not race an in-flight mutation (same
/// single-writer contract as `AddSpecification`/`AddExecution`).
struct RepositoryView {
  std::vector<const SpecEntry*> specs;
  std::vector<const ExecutionEntry*> execs;
};

/// \brief In-memory repository of specifications and executions.
class Repository {
 public:
  /// \brief Stores a specification (with optional policy); returns its id.
  Result<int> AddSpecification(Specification spec, PolicySet policy = {});

  /// \brief Stores an execution of spec `spec_id`.
  Result<ExecutionId> AddExecution(int spec_id, Execution exec);

  int num_specs() const { return static_cast<int>(specs_.size()); }
  int num_executions() const { return static_cast<int>(execs_.size()); }

  /// \brief Entry accessor; id must be in range.
  const SpecEntry& entry(int id) const {
    return *specs_[static_cast<size_t>(id)];
  }

  /// \brief Execution accessor; id must be in range.
  const ExecutionEntry& execution(ExecutionId id) const {
    return *execs_[static_cast<size_t>(id.value())];
  }

  /// \brief Entry lookup by specification name.
  Result<int> FindSpec(std::string_view name) const;

  /// \brief Executions of one specification.
  std::vector<ExecutionId> ExecutionsOf(int spec_id) const;

  /// \brief Captures a pinned view of every entry currently stored
  /// (see `RepositoryView` for the consistency contract).
  RepositoryView View() const;

  /// \brief Stamps durability metadata on a spec entry; id must be in
  /// range. Called by the persistent store layer after logging.
  void SetSpecPersist(int id, PersistMeta meta) {
    specs_[static_cast<size_t>(id)]->persist = std::move(meta);
  }

  /// \brief Stamps durability metadata on an execution entry.
  void SetExecutionPersist(ExecutionId id, PersistMeta meta) {
    execs_[static_cast<size_t>(id.value())]->persist = std::move(meta);
  }

  /// \brief Rough memory footprint in bytes (for the E5 space accounting).
  ///
  /// Counts per-entry heap payloads: spec modules/workflows/edges, the
  /// spec name, the policy set, execution nodes/items, and the
  /// persistence metadata locators. Monotone in repository growth.
  int64_t ApproxBytes() const;

 private:
  std::vector<std::unique_ptr<SpecEntry>> specs_;
  std::vector<std::unique_ptr<ExecutionEntry>> execs_;
};

}  // namespace paw

#endif  // PAW_REPO_REPOSITORY_H_

#ifndef PAW_REPO_REPOSITORY_H_
#define PAW_REPO_REPOSITORY_H_

/// \file repository.h
/// \brief The provenance-aware workflow repository (paper Sec. 1).
///
/// Stores workflow specifications (with their expansion hierarchies and
/// privacy policies) and provenance graphs of their executions. Address
/// stability: entries live behind unique_ptr, so views and executions may
/// hold pointers to their specifications across insertions.
///
/// Concurrency model (MVCC read path): the repository is append-only and
/// entries are immutable once inserted (persist metadata excepted, see
/// below). A small internal mutex guards only the entry-pointer vectors,
/// so readers capture a pinned `RepositoryView` — a consistent cut —
/// without ever blocking the writer for more than a pointer push. A
/// monotonic `mutation_epoch()` is bumped on every append; a view records
/// the epoch of its cut, which is what index/cache layers use to decide
/// staleness (replacing ad-hoc count heuristics).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/privacy/policy.h"
#include "src/provenance/execution.h"
#include "src/workflow/hierarchy.h"
#include "src/workflow/spec.h"

namespace paw {

/// \brief Durability metadata stamped by the persistent store layer
/// (src/store/persistent_repository.h) on entries it has logged.
///
/// Entries added to a plain in-memory `Repository` keep the defaults:
/// lsn 0 and an empty locator mean "volatile, never persisted".
///
/// Persist metadata is the one post-insert mutation: the store writer
/// stamps it between appending an entry and acking the append. Readers
/// on the MVCC view path must not touch `persist` of entries they did
/// not observe acked (query handlers never read it; compaction drains
/// writers first).
struct PersistMeta {
  /// LSN of the record that persisted this entry. For entries
  /// recovered from a snapshot this is the snapshot's covered LSN (an
  /// upper bound of the original append LSN, which snapshots do not
  /// retain).
  uint64_t lsn = 0;
  /// CRC32 of the serialized record payload (integrity auditing).
  uint32_t payload_crc = 0;
  /// Serialized payload size in bytes.
  uint32_t payload_bytes = 0;
  /// Human-readable origin, e.g. "wal:42" or "snapshot:42".
  std::string locator;
};

/// \brief A stored specification with its derived hierarchy and policy.
struct SpecEntry {
  int id = -1;
  Specification spec;
  ExpansionHierarchy hierarchy;
  PolicySet policy;
  PersistMeta persist;
};

/// \brief A stored execution.
struct ExecutionEntry {
  ExecutionId id;
  int spec_id = -1;
  Execution exec;
  PersistMeta persist;
};

/// \brief A pinned, point-in-time view of a repository.
///
/// Entries live behind `unique_ptr` (stable addresses) and are never
/// mutated after insertion, so a consistent view is just the entry
/// pointers captured at the cut: it stays valid — and frozen — while
/// new entries are appended behind it. This is what lets a background
/// snapshot writer (or a query engine) walk the repository while a
/// writer thread keeps ingesting. Capture via `Repository::View()` is
/// thread-safe against concurrent appends; `Repository::ExtendView`
/// advances an existing view to a newer cut in place.
///
/// The view mirrors the repository's read accessors so query code can
/// be written once against either. `epoch` is the repository mutation
/// epoch at the cut; because both entry kinds are append-only, the
/// spec/execution counts of a view also identify the cut's spec slice
/// and execution slice individually.
struct RepositoryView {
  std::vector<const SpecEntry*> specs;
  std::vector<const ExecutionEntry*> execs;
  /// Repository mutation epoch at the instant of capture.
  uint64_t epoch = 0;

  int num_specs() const { return static_cast<int>(specs.size()); }
  int num_executions() const { return static_cast<int>(execs.size()); }

  /// \brief Entry accessor; id must be within the cut.
  const SpecEntry& entry(int id) const {
    return *specs[static_cast<size_t>(id)];
  }

  /// \brief Execution accessor; id must be within the cut.
  const ExecutionEntry& execution(ExecutionId id) const {
    return *execs[static_cast<size_t>(id.value())];
  }

  /// \brief Executions of one specification, within the cut.
  std::vector<ExecutionId> ExecutionsOf(int spec_id) const {
    std::vector<ExecutionId> out;
    for (const ExecutionEntry* e : execs) {
      if (e->spec_id == spec_id) out.push_back(e->id);
    }
    return out;
  }
};

/// \brief In-memory repository of specifications and executions.
///
/// Appends are single-writer (the store layer serializes them); reads
/// through pinned views are safe from any thread concurrently with the
/// writer. The bare `entry()`/`execution()` accessors index the live
/// vectors and remain quiescent-only — concurrent code must go through
/// a captured `RepositoryView`.
class Repository {
 public:
  Repository() = default;

  /// Moves are setup-time-only (store open/handoff): they must not race
  /// any other access — the synchronization state is not transferred,
  /// the moved-to repository starts with a fresh mutex.
  Repository(Repository&& other) noexcept;
  Repository& operator=(Repository&& other) noexcept;

  /// \brief Stores a specification (with optional policy); returns its id.
  Result<int> AddSpecification(Specification spec, PolicySet policy = {});

  /// \brief Stores an execution of spec `spec_id`.
  Result<ExecutionId> AddExecution(int spec_id, Execution exec);

  int num_specs() const {
    return spec_count_.load(std::memory_order_acquire);
  }
  int num_executions() const {
    return exec_count_.load(std::memory_order_acquire);
  }

  /// \brief Monotonic counter bumped on every successful append (spec or
  /// execution). Index and cache layers compare epochs to detect
  /// staleness; equal epochs imply identical contents.
  uint64_t mutation_epoch() const {
    return mutation_epoch_.load(std::memory_order_acquire);
  }

  /// \brief Entry accessor; id must be in range. Quiescent-only (see
  /// class comment); concurrent readers use a view.
  const SpecEntry& entry(int id) const {
    return *specs_[static_cast<size_t>(id)];
  }

  /// \brief Execution accessor; id must be in range. Quiescent-only.
  const ExecutionEntry& execution(ExecutionId id) const {
    return *execs_[static_cast<size_t>(id.value())];
  }

  /// \brief Entry lookup by specification name. Quiescent-only.
  Result<int> FindSpec(std::string_view name) const;

  /// \brief Executions of one specification. Quiescent-only.
  std::vector<ExecutionId> ExecutionsOf(int spec_id) const;

  /// \brief Captures a pinned view of every entry currently stored
  /// (see `RepositoryView` for the consistency contract). Safe to call
  /// concurrently with appends.
  RepositoryView View() const;

  /// \brief Advances `view` in place to the repository's current cut,
  /// appending pointers for entries added since the view was captured.
  /// Existing elements are untouched, so `[0, old size)` slices of the
  /// view remain valid pinned cuts. Safe to call concurrently with
  /// appends; the caller owns synchronization of `view` itself.
  void ExtendView(RepositoryView* view) const;

  /// \brief Stamps durability metadata on a spec entry; id must be in
  /// range. Called by the persistent store layer after logging.
  void SetSpecPersist(int id, PersistMeta meta) {
    specs_[static_cast<size_t>(id)]->persist = std::move(meta);
  }

  /// \brief Stamps durability metadata on an execution entry.
  void SetExecutionPersist(ExecutionId id, PersistMeta meta) {
    execs_[static_cast<size_t>(id.value())]->persist = std::move(meta);
  }

  /// \brief Rough memory footprint in bytes (for the E5 space accounting).
  ///
  /// Counts per-entry heap payloads: spec modules/workflows/edges, the
  /// spec name, the policy set, execution nodes/items, and the
  /// persistence metadata locators. Monotone in repository growth.
  int64_t ApproxBytes() const;

 private:
  /// Guards the entry vectors (growth and pointer capture) and the
  /// epoch bump, so a captured view plus its epoch form a consistent
  /// cut. Never held across I/O or entry construction.
  mutable std::mutex view_mu_;
  std::vector<std::unique_ptr<SpecEntry>> specs_;
  std::vector<std::unique_ptr<ExecutionEntry>> execs_;
  std::atomic<int> spec_count_{0};
  std::atomic<int> exec_count_{0};
  std::atomic<uint64_t> mutation_epoch_{0};
};

}  // namespace paw

#endif  // PAW_REPO_REPOSITORY_H_

#ifndef PAW_REPO_DISEASE_H_
#define PAW_REPO_DISEASE_H_

/// \file disease.h
/// \brief The paper's running example: the personalized disease
/// susceptibility workflow of Fig. 1, its canonical execution (Fig. 4),
/// and the privacy policy discussed in Sec. 3.
///
/// Reconstruction (see DESIGN.md for the full argument):
///
///   W1 (root):  I -> M1 -> M2 -> O, plus I -> M2
///   W2 = expansion of M1 "Determine Genetic Susceptibility":
///        M3 "Expand SNP Set" -> M4 "Consult External Databases"
///   W4 = expansion of M4: M5 "Generate Database Queries" -> {M6 "Query
///        OMIM", M7 "Query PubMed"} -> M8 "Combine Disorder Sets"
///   W3 = expansion of M2 "Evaluate Disorder Risk":
///        M9 "Reformat" -> {M12 "Generate Queries" -> M13 "Search PubMed
///        Central" -> M14 "Summarize Articles", M10 "Search Private
///        Datasets"}; M13 -> M11 "Update Private Datasets"; M10 -> M11;
///        {M14, M11} -> M15 "Combine"
///
/// Under the library's deterministic executor this yields exactly the
/// process ids S1..S15 and data items d0..d19 of Fig. 4.

#include "src/common/status.h"
#include "src/privacy/policy.h"
#include "src/provenance/executor.h"
#include "src/workflow/spec.h"

namespace paw {

/// \brief Builds the Fig. 1 specification (validated).
Result<Specification> BuildDiseaseSpec();

/// \brief Simulated module functions with readable values ("d5" becomes
/// an expanded SNP list, "prognosis" a risk estimate, ...).
FunctionRegistry BuildDiseaseFunctions();

/// \brief The canonical patient inputs used by Fig. 4.
ValueMap DiseaseInputs();

/// \brief The Sec. 3 privacy policy: genetic data is sensitive (levels on
/// "disorders", "SNPs", ...), M1 requires module privacy, and the
/// M13 ~> M11 structural fact must be hidden from low-privilege users.
PolicySet DiseasePolicy();

/// \brief Runs the canonical execution (Fig. 4).
Result<Execution> RunDiseaseExecution(const Specification& spec);

}  // namespace paw

#endif  // PAW_REPO_DISEASE_H_

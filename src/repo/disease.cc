#include "src/repo/disease.h"

#include "src/workflow/builder.h"

namespace paw {

Result<Specification> BuildDiseaseSpec() {
  SpecBuilder b("disease susceptibility");
  WorkflowId w1 = b.AddWorkflow("W1", "Personalized Disease Susceptibility",
                                /*required_level=*/0);
  WorkflowId w2 = b.AddWorkflow("W2", "Determine Genetic Susceptibility",
                                /*required_level=*/1);
  WorkflowId w3 = b.AddWorkflow("W3", "Evaluate Disorder Risk",
                                /*required_level=*/1);
  WorkflowId w4 = b.AddWorkflow("W4", "Consult External Databases",
                                /*required_level=*/2);
  PAW_RETURN_NOT_OK(b.SetRoot(w1));

  // --- W1 (Fig. 1, outer dotted box) ---
  ModuleId i = b.AddInput(w1);
  ModuleId m1 = b.AddModule(w1, "M1", "Determine Genetic Susceptibility");
  ModuleId m2 = b.AddModule(w1, "M2", "Evaluate Disorder Risk");
  ModuleId o = b.AddOutput(w1);
  PAW_RETURN_NOT_OK(b.MakeComposite(m1, w2));
  PAW_RETURN_NOT_OK(b.MakeComposite(m2, w3));
  PAW_RETURN_NOT_OK(b.Connect(i, m1, {"SNPs", "ethnicity"}));
  PAW_RETURN_NOT_OK(
      b.Connect(i, m2, {"lifestyle", "family history", "physical symptoms"}));
  PAW_RETURN_NOT_OK(b.Connect(m1, m2, {"disorders"}));
  PAW_RETURN_NOT_OK(b.Connect(m2, o, {"prognosis"}));

  // --- W2 = tau(M1) ---
  ModuleId m3 = b.AddModule(w2, "M3", "Expand SNP Set");
  ModuleId m4 = b.AddModule(w2, "M4", "Consult External Databases");
  PAW_RETURN_NOT_OK(b.MakeComposite(m4, w4));
  PAW_RETURN_NOT_OK(b.Connect(m3, m4, {"SNPs"}));

  // --- W4 = tau(M4) ---
  ModuleId m5 = b.AddModule(w4, "M5", "Generate Database Queries");
  ModuleId m6 = b.AddModule(w4, "M6", "Query OMIM");
  ModuleId m7 = b.AddModule(w4, "M7", "Query PubMed");
  ModuleId m8 = b.AddModule(w4, "M8", "Combine Disorder Sets");
  PAW_RETURN_NOT_OK(b.Connect(m5, m6, {"query"}));
  PAW_RETURN_NOT_OK(b.Connect(m5, m7, {"query"}));
  PAW_RETURN_NOT_OK(b.Connect(m6, m8, {"disorders"}));
  PAW_RETURN_NOT_OK(b.Connect(m7, m8, {"disorders"}));

  // --- W3 = tau(M2) ---
  // Edge insertion order drives the executor's DFS and reproduces the
  // Fig. 4 activation order M9, M12, M13, M14, M10, M11, M15.
  ModuleId m9 = b.AddModule(w3, "M9", "Reformat");
  ModuleId m10 = b.AddModule(w3, "M10", "Search Private Datasets");
  ModuleId m11 = b.AddModule(w3, "M11", "Update Private Datasets");
  ModuleId m12 = b.AddModule(w3, "M12", "Generate Queries");
  ModuleId m13 = b.AddModule(w3, "M13", "Search PubMed Central");
  ModuleId m14 = b.AddModule(w3, "M14", "Summarize Articles");
  ModuleId m15 = b.AddModule(w3, "M15", "Combine");
  PAW_RETURN_NOT_OK(b.AddKeywords(m15, {"notes", "summary"}));
  PAW_RETURN_NOT_OK(b.Connect(m9, m12, {"notes"}));
  PAW_RETURN_NOT_OK(b.Connect(m9, m10, {"notes"}));
  PAW_RETURN_NOT_OK(b.Connect(m12, m13, {"query"}));
  PAW_RETURN_NOT_OK(b.Connect(m13, m14, {"result"}));
  PAW_RETURN_NOT_OK(b.Connect(m13, m11, {"result"}));
  PAW_RETURN_NOT_OK(b.Connect(m14, m15, {"summary"}));
  PAW_RETURN_NOT_OK(b.Connect(m10, m11, {"notes"}));
  PAW_RETURN_NOT_OK(b.Connect(m11, m15, {"notes"}));

  return std::move(b).Build();
}

FunctionRegistry BuildDiseaseFunctions() {
  FunctionRegistry fns;
  fns.Register("M1", [](const ValueMap&, const std::vector<std::string>&) {
    return ValueMap{};  // composite; never called
  });
  fns.Register("M3",
               [](const ValueMap& in, const std::vector<std::string>&) {
                 return ValueMap{
                     {"SNPs", "expanded(" + in.at("SNPs") + ")"}};
               });
  fns.Register("M5",
               [](const ValueMap& in, const std::vector<std::string>&) {
                 return ValueMap{{"query", "q[" + in.at("SNPs") + "]"}};
               });
  fns.Register("M6",
               [](const ValueMap& in, const std::vector<std::string>&) {
                 return ValueMap{
                     {"disorders", "omim{" + in.at("query") + "}"}};
               });
  fns.Register("M7",
               [](const ValueMap& in, const std::vector<std::string>&) {
                 return ValueMap{
                     {"disorders", "pubmed{" + in.at("query") + "}"}};
               });
  fns.Register("M8",
               [](const ValueMap& in, const std::vector<std::string>&) {
                 return ValueMap{
                     {"disorders", "combined{" + in.at("disorders") + "}"}};
               });
  fns.Register("M9",
               [](const ValueMap& in, const std::vector<std::string>&) {
                 return ValueMap{
                     {"notes", "notes{" + in.at("disorders") + "}"}};
               });
  fns.Register("M12",
               [](const ValueMap& in, const std::vector<std::string>&) {
                 return ValueMap{{"query", "lit-q{" + in.at("notes") + "}"}};
               });
  fns.Register("M13",
               [](const ValueMap& in, const std::vector<std::string>&) {
                 return ValueMap{
                     {"result", "pmc{" + in.at("query") + "}"}};
               });
  fns.Register("M14",
               [](const ValueMap& in, const std::vector<std::string>&) {
                 return ValueMap{
                     {"summary", "summary{" + in.at("result") + "}"}};
               });
  fns.Register("M10",
               [](const ValueMap& in, const std::vector<std::string>&) {
                 return ValueMap{
                     {"notes", "private{" + in.at("notes") + "}"}};
               });
  fns.Register("M11",
               [](const ValueMap& in, const std::vector<std::string>&) {
                 return ValueMap{
                     {"notes", "updated{" + in.at("notes") + "}"}};
               });
  fns.Register("M15",
               [](const ValueMap& in, const std::vector<std::string>&) {
                 return ValueMap{{"prognosis", "risk{" + in.at("summary") +
                                                   "+" + in.at("notes") +
                                                   "}"}};
               });
  return fns;
}

ValueMap DiseaseInputs() {
  return ValueMap{{"SNPs", "rs429358,rs7412"},
                  {"ethnicity", "ceu"},
                  {"lifestyle", "nonsmoker"},
                  {"family history", "cad"},
                  {"physical symptoms", "fatigue"}};
}

PolicySet DiseasePolicy() {
  PolicySet policy;
  // Data privacy (Sec. 3): genetic inputs and inferred disorders are
  // highly sensitive; literature queries are public.
  policy.data.label_level = {
      {"SNPs", 2},           {"ethnicity", 1},
      {"lifestyle", 1},      {"family history", 2},
      {"physical symptoms", 1}, {"disorders", 2},
      {"prognosis", 2},      {"notes", 1},
      {"result", 0},         {"summary", 0},
      {"query", 0},
  };
  // Module privacy: M1's genetic-susceptibility mapping must stay
  // 4-ambiguous to everyone below level 2.
  policy.module_reqs.push_back(
      ModulePrivacyRequirement{"M1", /*gamma=*/4, /*required_level=*/2});
  // Structural privacy: that PubMed Central results (M13) update the
  // private DB (M11) must be hidden below level 2.
  policy.structural_reqs.push_back(
      StructuralPrivacyRequirement{"M13", "M11", /*required_level=*/2});
  return policy;
}

Result<Execution> RunDiseaseExecution(const Specification& spec) {
  FunctionRegistry fns = BuildDiseaseFunctions();
  return Execute(spec, fns, DiseaseInputs());
}

}  // namespace paw

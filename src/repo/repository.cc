#include "src/repo/repository.h"

#include "src/workflow/validate.h"

namespace paw {

Repository::Repository(Repository&& other) noexcept
    : specs_(std::move(other.specs_)), execs_(std::move(other.execs_)) {
  spec_count_.store(other.spec_count_.load());
  exec_count_.store(other.exec_count_.load());
  mutation_epoch_.store(other.mutation_epoch_.load());
  other.spec_count_.store(0);
  other.exec_count_.store(0);
  other.mutation_epoch_.store(0);
}

Repository& Repository::operator=(Repository&& other) noexcept {
  if (this != &other) {
    specs_ = std::move(other.specs_);
    execs_ = std::move(other.execs_);
    spec_count_.store(other.spec_count_.load());
    exec_count_.store(other.exec_count_.load());
    mutation_epoch_.store(other.mutation_epoch_.load());
    other.spec_count_.store(0);
    other.exec_count_.store(0);
    other.mutation_epoch_.store(0);
  }
  return *this;
}

Result<int> Repository::AddSpecification(Specification spec,
                                         PolicySet policy) {
  PAW_RETURN_NOT_OK(ValidateSpecification(spec));
  PAW_RETURN_NOT_OK(ValidatePolicy(spec, policy));
  auto entry = std::make_unique<SpecEntry>();
  entry->spec = std::move(spec);
  entry->hierarchy = ExpansionHierarchy::Build(entry->spec);
  entry->policy = std::move(policy);
  std::lock_guard<std::mutex> lock(view_mu_);
  const int id = static_cast<int>(specs_.size());
  entry->id = id;
  specs_.push_back(std::move(entry));
  spec_count_.store(id + 1, std::memory_order_release);
  mutation_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return id;
}

Result<ExecutionId> Repository::AddExecution(int spec_id, Execution exec) {
  std::lock_guard<std::mutex> lock(view_mu_);
  if (spec_id < 0 || spec_id >= static_cast<int>(specs_.size())) {
    return Status::NotFound("unknown spec id");
  }
  if (&exec.spec() != &specs_[static_cast<size_t>(spec_id)]->spec) {
    return Status::InvalidArgument(
        "execution does not belong to the given specification");
  }
  const ExecutionId id(static_cast<int32_t>(execs_.size()));
  execs_.push_back(std::make_unique<ExecutionEntry>(
      ExecutionEntry{id, spec_id, std::move(exec), PersistMeta{}}));
  exec_count_.store(id.value() + 1, std::memory_order_release);
  mutation_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return id;
}

Result<int> Repository::FindSpec(std::string_view name) const {
  for (const auto& e : specs_) {
    if (e->spec.name() == name) return e->id;
  }
  return Status::NotFound("no spec named '" + std::string(name) + "'");
}

RepositoryView Repository::View() const {
  RepositoryView view;
  ExtendView(&view);
  return view;
}

void Repository::ExtendView(RepositoryView* view) const {
  std::lock_guard<std::mutex> lock(view_mu_);
  view->specs.reserve(specs_.size());
  for (size_t i = view->specs.size(); i < specs_.size(); ++i) {
    view->specs.push_back(specs_[i].get());
  }
  view->execs.reserve(execs_.size());
  for (size_t i = view->execs.size(); i < execs_.size(); ++i) {
    view->execs.push_back(execs_[i].get());
  }
  view->epoch = mutation_epoch_.load(std::memory_order_relaxed);
}

std::vector<ExecutionId> Repository::ExecutionsOf(int spec_id) const {
  std::vector<ExecutionId> out;
  for (const auto& e : execs_) {
    if (e->spec_id == spec_id) out.push_back(e->id);
  }
  return out;
}

namespace {

int64_t PolicyBytes(const PolicySet& policy) {
  int64_t total = 0;
  for (const auto& [label, level] : policy.data.label_level) {
    total += static_cast<int64_t>(sizeof(level) + label.size());
  }
  for (const ModulePrivacyRequirement& r : policy.module_reqs) {
    total += static_cast<int64_t>(sizeof(r) + r.module_code.size());
  }
  for (const StructuralPrivacyRequirement& r : policy.structural_reqs) {
    total += static_cast<int64_t>(sizeof(r) + r.src_code.size() +
                                  r.dst_code.size());
  }
  return total;
}

int64_t PersistBytes(const PersistMeta& meta) {
  return static_cast<int64_t>(meta.locator.size());
}

}  // namespace

int64_t Repository::ApproxBytes() const {
  int64_t total = 0;
  for (const auto& e : specs_) {
    total += static_cast<int64_t>(sizeof(SpecEntry));
    total += static_cast<int64_t>(e->spec.name().size());
    total += PolicyBytes(e->policy);
    total += PersistBytes(e->persist);
    for (const Module& m : e->spec.modules()) {
      total += static_cast<int64_t>(sizeof(Module) + m.code.size() +
                                    m.name.size());
      for (const auto& k : m.keywords) {
        total += static_cast<int64_t>(k.size());
      }
    }
    for (const Workflow& w : e->spec.workflows()) {
      total += static_cast<int64_t>(sizeof(Workflow) + w.code.size() +
                                    w.name.size());
      for (const DataflowEdge& edge : w.edges) {
        total += static_cast<int64_t>(sizeof(DataflowEdge));
        for (const auto& l : edge.labels) {
          total += static_cast<int64_t>(l.size());
        }
      }
    }
  }
  for (const auto& e : execs_) {
    total += static_cast<int64_t>(sizeof(ExecutionEntry));
    total += PersistBytes(e->persist);
    total += static_cast<int64_t>(e->exec.num_nodes()) *
             static_cast<int64_t>(sizeof(ExecNode));
    for (const DataItem& d : e->exec.items()) {
      total += static_cast<int64_t>(sizeof(DataItem) + d.label.size() +
                                    d.value.size());
    }
  }
  return total;
}

}  // namespace paw

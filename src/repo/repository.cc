#include "src/repo/repository.h"

#include "src/workflow/validate.h"

namespace paw {

Result<int> Repository::AddSpecification(Specification spec,
                                         PolicySet policy) {
  PAW_RETURN_NOT_OK(ValidateSpecification(spec));
  PAW_RETURN_NOT_OK(ValidatePolicy(spec, policy));
  auto entry = std::make_unique<SpecEntry>();
  entry->id = static_cast<int>(specs_.size());
  entry->spec = std::move(spec);
  entry->hierarchy = ExpansionHierarchy::Build(entry->spec);
  entry->policy = std::move(policy);
  specs_.push_back(std::move(entry));
  return specs_.back()->id;
}

Result<ExecutionId> Repository::AddExecution(int spec_id, Execution exec) {
  if (spec_id < 0 || spec_id >= num_specs()) {
    return Status::NotFound("unknown spec id");
  }
  if (&exec.spec() != &specs_[static_cast<size_t>(spec_id)]->spec) {
    return Status::InvalidArgument(
        "execution does not belong to the given specification");
  }
  auto entry = std::make_unique<ExecutionEntry>(ExecutionEntry{
      ExecutionId(static_cast<int32_t>(execs_.size())), spec_id,
      std::move(exec), PersistMeta{}});
  execs_.push_back(std::move(entry));
  return execs_.back()->id;
}

Result<int> Repository::FindSpec(std::string_view name) const {
  for (const auto& e : specs_) {
    if (e->spec.name() == name) return e->id;
  }
  return Status::NotFound("no spec named '" + std::string(name) + "'");
}

RepositoryView Repository::View() const {
  RepositoryView view;
  view.specs.reserve(specs_.size());
  for (const auto& e : specs_) view.specs.push_back(e.get());
  view.execs.reserve(execs_.size());
  for (const auto& e : execs_) view.execs.push_back(e.get());
  return view;
}

std::vector<ExecutionId> Repository::ExecutionsOf(int spec_id) const {
  std::vector<ExecutionId> out;
  for (const auto& e : execs_) {
    if (e->spec_id == spec_id) out.push_back(e->id);
  }
  return out;
}

namespace {

int64_t PolicyBytes(const PolicySet& policy) {
  int64_t total = 0;
  for (const auto& [label, level] : policy.data.label_level) {
    total += static_cast<int64_t>(sizeof(level) + label.size());
  }
  for (const ModulePrivacyRequirement& r : policy.module_reqs) {
    total += static_cast<int64_t>(sizeof(r) + r.module_code.size());
  }
  for (const StructuralPrivacyRequirement& r : policy.structural_reqs) {
    total += static_cast<int64_t>(sizeof(r) + r.src_code.size() +
                                  r.dst_code.size());
  }
  return total;
}

int64_t PersistBytes(const PersistMeta& meta) {
  return static_cast<int64_t>(meta.locator.size());
}

}  // namespace

int64_t Repository::ApproxBytes() const {
  int64_t total = 0;
  for (const auto& e : specs_) {
    total += static_cast<int64_t>(sizeof(SpecEntry));
    total += static_cast<int64_t>(e->spec.name().size());
    total += PolicyBytes(e->policy);
    total += PersistBytes(e->persist);
    for (const Module& m : e->spec.modules()) {
      total += static_cast<int64_t>(sizeof(Module) + m.code.size() +
                                    m.name.size());
      for (const auto& k : m.keywords) {
        total += static_cast<int64_t>(k.size());
      }
    }
    for (const Workflow& w : e->spec.workflows()) {
      total += static_cast<int64_t>(sizeof(Workflow) + w.code.size() +
                                    w.name.size());
      for (const DataflowEdge& edge : w.edges) {
        total += static_cast<int64_t>(sizeof(DataflowEdge));
        for (const auto& l : edge.labels) {
          total += static_cast<int64_t>(l.size());
        }
      }
    }
  }
  for (const auto& e : execs_) {
    total += static_cast<int64_t>(sizeof(ExecutionEntry));
    total += PersistBytes(e->persist);
    total += static_cast<int64_t>(e->exec.num_nodes()) *
             static_cast<int64_t>(sizeof(ExecNode));
    for (const DataItem& d : e->exec.items()) {
      total += static_cast<int64_t>(sizeof(DataItem) + d.label.size() +
                                    d.value.size());
    }
  }
  return total;
}

}  // namespace paw

#include "src/repo/workload.h"

#include "src/common/logging.h"
#include "src/provenance/executor.h"
#include "src/workflow/builder.h"

namespace paw {
namespace {

/// Recursively emits one workflow level and its composite children.
/// Returns nothing; modules/edges go through the builder.
class SpecGen {
 public:
  SpecGen(const WorkloadParams& params, Rng* rng, SpecBuilder* builder)
      : params_(params), rng_(rng), b_(builder) {}

  void EmitRoot() {
    WorkflowId w = b_->AddWorkflow("W0", "root", 0);
    (void)b_->SetRoot(w);
    ModuleId in = b_->AddInput(w);
    std::vector<ModuleId> chain = EmitModules(w, /*depth=*/0);
    ModuleId out = b_->AddOutput(w);
    (void)b_->Connect(in, chain.front(), {NewLabel()});
    ConnectChain(w, chain);
    (void)b_->Connect(chain.back(), out, {NewLabel()});
  }

 private:
  std::vector<ModuleId> EmitModules(WorkflowId w, int depth) {
    std::vector<ModuleId> modules;
    int count = std::max(2, params_.modules_per_workflow);
    for (int i = 0; i < count; ++i) {
      std::string code = "M" + std::to_string(next_module_++);
      ModuleId m =
          b_->AddModule(w, code, "Step " + code, KeywordsForModule());
      modules.push_back(m);
      if (depth < params_.depth && rng_->Bernoulli(params_.composite_prob)) {
        WorkflowId sub = b_->AddWorkflow(
            "W" + std::to_string(next_workflow_++),
            "internals of " + code,
            std::min(depth + 1, params_.max_level));
        (void)b_->MakeComposite(m, sub);
        std::vector<ModuleId> chain = EmitModules(sub, depth + 1);
        ConnectChain(sub, chain);
      }
    }
    return modules;
  }

  void ConnectChain(WorkflowId, const std::vector<ModuleId>& chain) {
    for (size_t i = 0; i + 1 < chain.size(); ++i) {
      (void)b_->Connect(chain[i], chain[i + 1], {NewLabel()});
    }
    // Extra forward skip edges (never breaking single entry/exit).
    for (size_t i = 0; i + 2 < chain.size(); ++i) {
      for (size_t j = i + 2; j < chain.size(); ++j) {
        if (rng_->Bernoulli(params_.skip_prob)) {
          (void)b_->Connect(chain[i], chain[j], {NewLabel()});
        }
      }
    }
  }

  std::vector<std::string> KeywordsForModule() {
    std::vector<std::string> kws;
    for (int k = 0; k < params_.keywords_per_module; ++k) {
      size_t id = rng_->Zipf(static_cast<size_t>(params_.vocabulary),
                             params_.zipf_skew);
      kws.push_back("kw" + std::to_string(id));
    }
    return kws;
  }

  std::string NewLabel() { return "data" + std::to_string(next_label_++); }

  const WorkloadParams& params_;
  Rng* rng_;
  SpecBuilder* b_;
  int next_module_ = 1;
  int next_workflow_ = 1;
  int next_label_ = 0;
};

}  // namespace

Result<Specification> GenerateSpec(const WorkloadParams& params, Rng* rng,
                                   const std::string& name) {
  SpecBuilder builder(name);
  SpecGen gen(params, rng, &builder);
  gen.EmitRoot();
  return std::move(builder).Build();
}

Result<Execution> GenerateExecution(const Specification& spec, Rng* rng) {
  // Bind every label leaving the root input node.
  ValueMap inputs;
  const Workflow& root = spec.workflow(spec.root());
  for (ModuleId mid : root.modules) {
    if (spec.module(mid).kind != ModuleKind::kInput) continue;
    for (const DataflowEdge* e : spec.OutEdges(mid)) {
      for (const std::string& label : e->labels) {
        inputs[label] = "v" + std::to_string(rng->Uniform(1000));
      }
    }
  }
  FunctionRegistry fns;
  return Execute(spec, fns, inputs);
}

std::vector<std::string> GenerateQuery(const WorkloadParams& params,
                                       Rng* rng, int num_terms) {
  std::vector<std::string> terms;
  for (int i = 0; i < num_terms; ++i) {
    size_t id = rng->Zipf(static_cast<size_t>(params.vocabulary),
                          params.zipf_skew);
    terms.push_back("kw" + std::to_string(id));
  }
  return terms;
}

Digraph RandomDag(Rng* rng, int n, double edge_prob) {
  Digraph g(n);
  for (NodeIndex i = 0; i < n; ++i) {
    for (NodeIndex j = i + 1; j < n; ++j) {
      if (rng->Bernoulli(edge_prob)) {
        Status st = g.AddEdge(i, j);
        PAW_CHECK(st.ok()) << st.ToString();
      }
    }
  }
  return g;
}

Digraph RandomLayeredDag(Rng* rng, int layers, int width, double edge_prob) {
  Digraph g(layers * width);
  auto node = [width](int layer, int i) {
    return static_cast<NodeIndex>(layer * width + i);
  };
  for (int l = 0; l + 1 < layers; ++l) {
    for (int j = 0; j < width; ++j) {
      bool any = false;
      for (int i = 0; i < width; ++i) {
        if (rng->Bernoulli(edge_prob)) {
          Status st = g.AddEdge(node(l, i), node(l + 1, j));
          PAW_CHECK(st.ok()) << st.ToString();
          any = true;
        }
      }
      if (!any) {
        // Guarantee connectivity into the next layer.
        NodeIndex src = node(l, static_cast<int>(rng->Uniform(width)));
        Status st = g.AddEdge(src, node(l + 1, j));
        PAW_CHECK(st.ok()) << st.ToString();
      }
    }
  }
  return g;
}

}  // namespace paw

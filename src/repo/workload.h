#ifndef PAW_REPO_WORKLOAD_H_
#define PAW_REPO_WORKLOAD_H_

/// \file workload.h
/// \brief Synthetic workload generation for tests and benchmarks.
///
/// Substitutes for the workflow repositories the paper assumes (myGrid /
/// life-science collections): seeded generators produce hierarchical
/// specifications with chain-plus-skip dataflow (every non-root workflow
/// keeps a unique entry and exit so the executor's procedure-call
/// semantics apply), Zipf-distributed keywords, depth-based access levels,
/// plus random DAGs for the structural-privacy experiments.

#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/status.h"
#include "src/graph/digraph.h"
#include "src/provenance/execution.h"
#include "src/workflow/spec.h"

namespace paw {

/// \brief Knobs of the specification generator.
struct WorkloadParams {
  /// Maximum expansion-hierarchy depth below the root.
  int depth = 2;
  /// Modules per workflow level (>= 2).
  int modules_per_workflow = 5;
  /// Probability that an eligible module becomes composite.
  double composite_prob = 0.35;
  /// Probability of each possible extra forward (skip) edge.
  double skip_prob = 0.2;
  /// Keyword vocabulary size ("kw0".."kwN-1").
  int vocabulary = 50;
  /// Zipf skew of keyword assignment (0 = uniform).
  double zipf_skew = 1.1;
  /// Keywords per module.
  int keywords_per_module = 2;
  /// Workflows at depth d get required_level min(d, max_level).
  int max_level = 3;
};

/// \brief Generates a random specification named `name`.
Result<Specification> GenerateSpec(const WorkloadParams& params, Rng* rng,
                                   const std::string& name);

/// \brief Runs a generated spec on random inputs with default functions.
Result<Execution> GenerateExecution(const Specification& spec, Rng* rng);

/// \brief A random keyword query of `num_terms` Zipf-drawn terms.
std::vector<std::string> GenerateQuery(const WorkloadParams& params,
                                       Rng* rng, int num_terms);

/// \brief Random DAG with `n` nodes; each forward pair (i, j) becomes an
/// edge with probability `edge_prob` (workload for E2/E3).
Digraph RandomDag(Rng* rng, int n, double edge_prob);

/// \brief Layered random DAG (`layers` x `width`), denser and deeper than
/// `RandomDag`; every node in layer l+1 gets >= 1 predecessor in layer l.
Digraph RandomLayeredDag(Rng* rng, int layers, int width, double edge_prob);

}  // namespace paw

#endif  // PAW_REPO_WORKLOAD_H_

// The paper's running example end-to-end: builds the Fig. 1 specification,
// prints the Fig. 3 hierarchy, runs the Fig. 4 execution, and renders the
// Fig. 2 provenance view.
//
//   $ ./disease_susceptibility

#include <cstdio>
#include <functional>

#include "src/provenance/exec_view.h"
#include "src/repo/disease.h"
#include "src/workflow/hierarchy.h"
#include "src/workflow/view.h"

using namespace paw;

int main() {
  auto spec = BuildDiseaseSpec();
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  ExpansionHierarchy h = ExpansionHierarchy::Build(spec.value());

  std::printf("=== Fig. 1: specification (%d workflows, %d modules) ===\n",
              spec.value().num_workflows(), spec.value().num_modules());
  for (const Workflow& w : spec.value().workflows()) {
    std::printf("%s \"%s\" (level %d):\n", w.code.c_str(), w.name.c_str(),
                w.required_level);
    for (ModuleId mid : w.modules) {
      const Module& m = spec.value().module(mid);
      std::printf("  %-4s %-35s %s", m.code.c_str(), m.name.c_str(),
                  std::string(ModuleKindName(m.kind)).c_str());
      if (m.kind == ModuleKind::kComposite) {
        std::printf(" --tau--> %s",
                    spec.value().workflow(m.expansion).code.c_str());
      }
      std::printf("\n");
    }
  }

  std::printf("\n=== Fig. 3: expansion hierarchy ===\n");
  std::function<void(WorkflowId)> print_tree = [&](WorkflowId w) {
    std::printf("%*s%s\n", 2 * h.Depth(w), "",
                spec.value().workflow(w).code.c_str());
    for (WorkflowId c : h.Children(w)) print_tree(c);
  };
  print_tree(h.root());

  auto exec = RunDiseaseExecution(spec.value());
  if (!exec.ok()) {
    std::fprintf(stderr, "%s\n", exec.status().ToString().c_str());
    return 1;
  }
  std::printf("\n=== Fig. 4: execution (%d nodes, %d items) ===\n",
              exec.value().num_nodes(), exec.value().num_items());
  for (const auto& [u, v] : exec.value().graph().Edges()) {
    std::string items;
    for (DataItemId d : exec.value().ItemsOn(ExecNodeId(u), ExecNodeId(v))) {
      if (!items.empty()) items += ",";
      items += Execution::ItemName(d);
    }
    std::printf("  %-14s -> %-14s [%s]\n",
                exec.value().NodeLabel(ExecNodeId(u)).c_str(),
                exec.value().NodeLabel(ExecNodeId(v)).c_str(),
                items.c_str());
  }

  std::printf("\n=== data items ===\n");
  for (const DataItem& d : exec.value().items()) {
    std::printf("  d%-3d %-18s = %s\n", d.id.value(), d.label.c_str(),
                d.value.c_str());
  }

  std::printf("\n=== Fig. 2: provenance view under prefix {W1} ===\n");
  auto view = CollapseExecution(exec.value(), h, h.RootPrefix());
  std::printf("%s\n", view.value().ToDot("fig2").c_str());
  return 0;
}

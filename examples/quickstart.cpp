// Quickstart: build a tiny hierarchical workflow, run it, and ask the
// provenance questions from the paper's introduction.
//
//   $ ./quickstart

#include <cstdio>

#include "src/provenance/executor.h"
#include "src/provenance/lineage.h"
#include "src/workflow/builder.h"
#include "src/workflow/hierarchy.h"
#include "src/workflow/view.h"

using namespace paw;

int main() {
  // 1. Describe a two-level workflow: I -> Align -> Call Variants -> O,
  //    where Align is composite (Trim -> Map).
  SpecBuilder b("variant calling");
  WorkflowId w1 = b.AddWorkflow("W1", "pipeline");
  ModuleId in = b.AddInput(w1);
  ModuleId align = b.AddModule(w1, "A", "Align Reads");
  ModuleId call = b.AddModule(w1, "C", "Call Variants");
  ModuleId out = b.AddOutput(w1);
  WorkflowId w2 = b.AddWorkflow("W2", "alignment internals",
                                /*required_level=*/1);
  ModuleId trim = b.AddModule(w2, "T", "Trim Adapters");
  ModuleId map = b.AddModule(w2, "M", "Map To Reference");
  (void)b.MakeComposite(align, w2);
  (void)b.Connect(in, align, {"reads"});
  (void)b.Connect(trim, map, {"trimmed"});
  (void)b.Connect(align, call, {"alignment"});
  (void)b.Connect(call, out, {"variants"});

  auto spec = std::move(b).Build();
  if (!spec.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 spec.status().ToString().c_str());
    return 1;
  }

  // 2. Views: what a low-privilege user sees vs the full expansion.
  ExpansionHierarchy h = ExpansionHierarchy::Build(spec.value());
  auto coarse = ExpandPrefix(spec.value(), h, h.RootPrefix());
  auto full = FullExpansion(spec.value(), h);
  std::printf("== top-level view ==\n%s\n",
              coarse.value().ToDot("coarse").c_str());
  std::printf("== full expansion ==\n%s\n",
              full.value().ToDot("full").c_str());

  // 3. Execute with a custom module function for the caller.
  FunctionRegistry fns;
  fns.Register("C", [](const ValueMap& in,
                       const std::vector<std::string>& outs) {
    ValueMap result;
    for (const auto& label : outs) {
      result[label] = "vcf(" + in.at("alignment") + ")";
    }
    return result;
  });
  auto exec = Execute(spec.value(), fns, {{"reads", "fastq-r1"}});
  if (!exec.ok()) {
    std::fprintf(stderr, "execute failed: %s\n",
                 exec.status().ToString().c_str());
    return 1;
  }
  std::printf("== provenance graph ==\n%s\n",
              exec.value().ToDot("run").c_str());

  // 4. Lineage: which steps produced the final variants?
  auto variants = exec.value().FindItemByLabel("variants");
  auto lineage = ProvenanceOf(exec.value(), variants.value());
  std::printf("lineage of 'variants' touches %zu nodes / %zu items\n",
              lineage.value().nodes.size(), lineage.value().items.size());
  for (ExecNodeId n : lineage.value().nodes) {
    std::printf("  %s\n", exec.value().NodeLabel(n).c_str());
  }
  return 0;
}

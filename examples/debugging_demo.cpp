// Debugging demo (paper Sec. 1: "Finding erroneous or suspect data, a
// user may then ask provenance queries to determine what downstream data
// might have been affected, or to understand how the process failed"):
// a buggy module version ships, two runs diverge, and the execution diff
// localizes the fault and its blast radius.
//
//   $ ./debugging_demo

#include <cstdio>

#include "src/provenance/diff.h"
#include "src/provenance/lineage.h"
#include "src/repo/disease.h"

using namespace paw;

int main() {
  auto spec = BuildDiseaseSpec();
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }

  // The good run.
  FunctionRegistry good = BuildDiseaseFunctions();
  auto before = Execute(spec.value(), good, DiseaseInputs());

  // Someone ships a buggy "Summarize Articles" (M14).
  FunctionRegistry bad = BuildDiseaseFunctions();
  bad.Register("M14",
               [](const ValueMap&, const std::vector<std::string>&) {
                 return ValueMap{{"summary", "<empty summary bug>"}};
               });
  auto after = Execute(spec.value(), bad, DiseaseInputs());
  if (!before.ok() || !after.ok()) return 1;

  std::printf("two executions of '%s' diverge; diffing...\n\n",
              spec.value().name().c_str());
  auto diff = DiffExecutions(before.value(), after.value());
  if (!diff.ok()) {
    std::fprintf(stderr, "%s\n", diff.status().ToString().c_str());
    return 1;
  }

  std::printf("diverging data items:\n");
  for (const ItemDivergence& d : diff.value().divergences) {
    std::printf("  d%-3d %-10s S%-3d  %.40s  ->  %.40s\n",
                d.item.value(), d.label.c_str(), d.producer_process,
                d.value_a.c_str(), d.value_b.c_str());
  }

  std::printf("\nfirst divergent activation: S%d (%s)\n",
              diff.value().first_divergent_process,
              before.value()
                  .NodeLabel(before.value()
                                 .FindByProcess(
                                     diff.value().first_divergent_process)
                                 .value())
                  .c_str());
  std::printf("blast radius (affected activations):");
  for (int p : diff.value().affected_processes) std::printf(" S%d", p);
  std::printf("\n");

  // "What downstream data might have been affected?" — the lineage dual.
  auto d16 = DataItemId(16);  // the corrupted summary
  auto affected = AffectedBy(after.value(), d16);
  if (affected.ok()) {
    std::printf("\ndownstream of the corrupted summary (d16):\n");
    for (ExecNodeId n : affected.value().nodes) {
      std::printf("  %s\n", after.value().NodeLabel(n).c_str());
    }
  }
  return 0;
}

// Module privacy demo (paper Sec. 3 / ref [4]): model M1's
// genetic-susceptibility mapping as a relation, then find cheap attribute
// hidings that make it Gamma-private.
//
//   $ ./module_privacy_demo

#include <cstdio>

#include "src/privacy/module_privacy.h"
#include "src/privacy/workflow_privacy.h"

using namespace paw;

namespace {

void PrintSolution(const Relation& rel, const char* name,
                   const HidingSolution& sol) {
  std::printf("%-12s cost=%5.2f gamma=%3lld hidden={",
              name, sol.cost, static_cast<long long>(sol.achieved_gamma));
  bool first = true;
  for (int i = 0; i < rel.num_attributes(); ++i) {
    if (sol.hidden[static_cast<size_t>(i)]) {
      std::printf("%s%s", first ? "" : ",", rel.attribute(i).name.c_str());
      first = false;
    }
  }
  std::printf("}%s\n", sol.feasible ? "" : " (infeasible)");
}

}  // namespace

int main() {
  // M1 as a relation: inputs SNP profile (8 classes) and ethnicity (4),
  // outputs disorder class (8) and a confidence flag (2). The mapping is
  // a fixed deterministic rule -- what repeated provenance would reveal.
  auto rel = Relation::FromFunction(
      {{"SNPs", 8, /*weight=*/4.0}, {"ethnicity", 4, 2.0}},
      {{"disorders", 8, 3.0}, {"confidence", 2, 1.0}},
      [](const std::vector<int>& x) {
        int disorder = (x[0] * 5 + x[1] * 3) % 8;
        int confidence = (x[0] + x[1]) % 2;
        return std::vector<int>{disorder, confidence};
      });
  if (!rel.ok()) {
    std::fprintf(stderr, "%s\n", rel.status().ToString().c_str());
    return 1;
  }
  std::printf("M1 relation: %lld rows, max achievable Gamma = %lld\n\n",
              static_cast<long long>(rel.value().num_rows()),
              static_cast<long long>(rel.value().MaxAchievableGamma()));

  for (int64_t gamma : {2, 4, 8, 16}) {
    std::printf("--- Gamma = %lld ---\n", static_cast<long long>(gamma));
    PrintSolution(rel.value(), "optimal",
                  OptimalSafeSubset(rel.value(), gamma).value());
    PrintSolution(rel.value(), "greedy",
                  GreedySafeSubset(rel.value(), gamma).value());
    PrintSolution(rel.value(), "output-only",
                  OutputOnlySafeSubset(rel.value(), gamma).value());
  }

  // Workflow-level: M1 feeds M2 through the shared label "disorders";
  // hiding it once serves both private modules.
  std::printf("\n--- workflow-level (M1 + M2 share 'disorders') ---\n");
  WorkflowPrivacyProblem problem;
  problem.modules.push_back(PrivateModuleSpec{
      "M1", std::move(rel).value(), /*gamma=*/4});
  auto m2 = Relation::FromFunction(
      {{"disorders", 8, 3.0}, {"lifestyle", 2, 1.0}},
      {{"prognosis", 4, 5.0}},
      [](const std::vector<int>& x) {
        return std::vector<int>{(x[0] + 2 * x[1]) % 4};
      });
  problem.modules.push_back(PrivateModuleSpec{
      "M2", std::move(m2).value(), /*gamma=*/4});
  problem.label_weights = {{"SNPs", 4.0},     {"ethnicity", 2.0},
                           {"disorders", 3.0}, {"confidence", 1.0},
                           {"lifestyle", 1.0}, {"prognosis", 5.0}};

  auto joint = GreedyWorkflowHiding(problem);
  auto naive = PerModuleUnionHiding(problem);
  std::printf("joint greedy: cost=%.2f labels={", joint.value().cost);
  for (const std::string& l : joint.value().hidden_labels) {
    std::printf("%s ", l.c_str());
  }
  std::printf("}\nper-module union: cost=%.2f labels={",
              naive.value().cost);
  for (const std::string& l : naive.value().hidden_labels) {
    std::printf("%s ", l.c_str());
  }
  std::printf("}\n");
  return 0;
}

// Privacy-preserving search demo: the Fig. 5 keyword query evaluated for
// principals at three access levels, plus a masked lineage query.
//
//   $ ./private_search_demo

#include <cstdio>

#include "src/query/engine.h"
#include "src/repo/disease.h"

using namespace paw;

int main() {
  Repository repo;
  auto spec = BuildDiseaseSpec();
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  int sid =
      repo.AddSpecification(std::move(spec).value(), DiseasePolicy())
          .value();
  auto exec = RunDiseaseExecution(repo.entry(sid).spec);
  ExecutionId eid = repo.AddExecution(sid, std::move(exec).value()).value();

  AccessControl acl;
  PrincipalId pub = acl.AddPrincipal("public", 0, "anon").value();
  PrincipalId analyst = acl.AddPrincipal("analyst", 1, "lab").value();
  PrincipalId owner = acl.AddPrincipal("owner", 2, "lab").value();
  QueryEngine engine(repo, acl);

  const std::vector<std::string> query{"database queries",
                                       "disorder risk"};
  std::printf("keyword query: \"database queries\", \"disorder risk\"\n\n");
  struct Who {
    const char* name;
    PrincipalId id;
  } users[] = {{"public (level 0)", pub},
               {"analyst (level 1)", analyst},
               {"owner (level 2)", owner}};
  for (const auto& u : users) {
    auto answers = engine.Search(u.id, query);
    std::printf("%-18s -> %zu answer(s)\n", u.name,
                answers.value().size());
    for (const KeywordAnswer& a : answers.value()) {
      const SpecEntry& entry = repo.entry(a.spec_id);
      std::printf("  view {");
      for (WorkflowId w : a.prefix) {
        std::printf("%s ", entry.spec.workflow(w).code.c_str());
      }
      std::printf("} score=%.2f matched:", a.score);
      for (ModuleId m : a.matched) {
        std::printf(" %s", entry.spec.module(m).code.c_str());
      }
      std::printf("\n");
    }
  }

  std::printf("\nlineage of d19 (the prognosis), per principal:\n");
  for (const auto& u : users) {
    auto lineage = engine.Lineage(u.id, eid, DataItemId(19));
    if (!lineage.ok()) {
      std::printf("\n%s: %s\n", u.name,
                  lineage.status().ToString().c_str());
      continue;
    }
    std::printf("\n%s (zoomed out %d step(s)):\n", u.name,
                lineage.value().zoom_steps);
    for (const std::string& row : lineage.value().rows) {
      std::printf("  %s\n", row.c_str());
    }
  }
  return 0;
}

// Structural privacy demo: the exact Sec. 3 scenario — hide that
// M13 (Search PubMed Central) contributes to M11 (Update Private
// Datasets) in W3, comparing edge deletion against clustering, then
// repairing the unsound clustered view.
//
//   $ ./structural_privacy_demo

#include <cstdio>
#include <map>

#include "src/privacy/soundness.h"
#include "src/privacy/structural_privacy.h"
#include "src/repo/disease.h"

using namespace paw;

int main() {
  auto spec = BuildDiseaseSpec();
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  WorkflowId w3 = spec.value().FindWorkflow("W3").value();
  auto local = spec.value().BuildLocalGraph(w3);
  std::map<std::string, NodeIndex> idx;
  std::map<NodeIndex, std::string> name;
  for (const auto& [mid, i] : local.module_to_local) {
    idx[spec.value().module(mid).code] = i;
    name[i] = spec.value().module(mid).code;
  }

  std::printf("W3 (Evaluate Disorder Risk): %d modules, %lld edges\n",
              local.graph.num_nodes(),
              static_cast<long long>(local.graph.num_edges()));
  std::printf("goal: hide that M13 contributes to M11\n\n");

  std::vector<SensitivePair> pairs{{idx["M13"], idx["M11"]}};

  // Mechanism 1: edge deletion.
  auto del = HideByEdgeDeletion(local.graph, pairs);
  std::printf("--- edge deletion ---\n");
  for (const auto& [u, v] : del.value().deleted) {
    std::printf("deleted %s -> %s\n", name[u].c_str(), name[v].c_str());
  }
  const auto& dm = del.value().metrics;
  std::printf("pairs: %lld -> %lld preserved (utility %.2f), sound=%s\n",
              static_cast<long long>(dm.original_pairs),
              static_cast<long long>(dm.preserved_pairs), dm.Utility(),
              dm.Sound() ? "yes" : "no");
  std::printf("collateral: path M12 ~> M11 now %s\n\n",
              PathExists(del.value().published, idx["M12"], idx["M11"])
                  ? "present"
                  : "destroyed (the paper's warning)");

  // Mechanism 2: clustering {M11, M13}.
  auto clu = HideByClustering(local.graph, pairs);
  const auto& cm = clu.value().metrics;
  std::printf("--- clustering {M11, M13} ---\n");
  std::printf("pairs: %lld -> %lld preserved (utility %.2f), sound=%s, "
              "extraneous=%lld\n",
              static_cast<long long>(cm.original_pairs),
              static_cast<long long>(cm.preserved_pairs), cm.Utility(),
              cm.Sound() ? "yes" : "no",
              static_cast<long long>(cm.extraneous_pairs));
  auto report = CheckSoundness(local.graph, clu.value().group_of,
                               clu.value().num_groups);
  for (const auto& [a, b] : report.value().extraneous) {
    std::printf("fabricated: %s ~> %s\n", name[a].c_str(),
                name[b].c_str());
  }

  // Repair.
  auto repaired = RepairUnsoundClustering(
      local.graph, clu.value().group_of, clu.value().num_groups);
  std::printf("\n--- repair ---\n");
  std::printf("splits=%d, sound=%s\n", repaired.value().splits,
              repaired.value().report.sound ? "yes" : "no");
  auto post = EvaluateClustering(local.graph, repaired.value().group_of,
                                 repaired.value().num_groups, pairs);
  std::printf("after repair: hidden sensitive=%d/%d, utility %.2f\n",
              post.value().hidden_sensitive,
              post.value().requested_sensitive, post.value().Utility());
  std::printf("(repair trades privacy back for correctness -- the "
              "optimization problem the paper poses)\n");
  return 0;
}

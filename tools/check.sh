#!/usr/bin/env bash
# Single CI entry point: tier-1 configure/build/test, a pawctl smoke
# test of the demo pipeline and both store layouts (single + sharded,
# including kill-and-reopen crash drills — one against the sharded
# WAL tail, one against background compaction mid-flight), a pawd
# server drill (socket ingest, per-principal query filtering, queries
# concurrent with a pipelined ingest on the MVCC read path, a
# METRICS-over-the-wire check, a repeated-lineage check that must hit
# the memoized privacy-view cache, kill -9 durability, lock-file
# liveness), a replication drill (leader + WAL-shipping follower with
# quorum acks, follower queries mid-ingest, write rejection on the
# follower, a trace drill — a quorum-acked write's trace id must show
# up in BOTH nodes' TRACE_DUMP output, plus audit-channel and
# admin-gate checks — then kill -9 the leader and promote the follower
# with no acked write lost), bench smoke runs (store E10 + server
# E11/E12/E13/E14, E11 gated <= 5% observability overhead against a
# PAW_NO_METRICS + PAW_NO_TRACE baseline build, E13 gated >= 3x cached
# lineage/structural p50),
# an ASan+UBSan build of the store/server test binaries, and a TSan
# build of the concurrency suites (group-commit WAL, writer queues,
# background compaction, server, replication, metrics registry).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"

echo "== configure =="
cmake -B "$BUILD_DIR" -S .

echo "== build =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== pawctl smoke =="
PAWCTL="$BUILD_DIR/pawctl"
"$PAWCTL" demo | "$PAWCTL" validate /dev/stdin

SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
"$PAWCTL" demo > "$SMOKE_DIR/demo.paw"
"$PAWCTL" init "$SMOKE_DIR/store"
"$PAWCTL" ingest "$SMOKE_DIR/store" "$SMOKE_DIR/demo.paw" runs=10
"$PAWCTL" compact "$SMOKE_DIR/store"
"$PAWCTL" ingest "$SMOKE_DIR/store" "$SMOKE_DIR/demo.paw" runs=5
"$PAWCTL" open "$SMOKE_DIR/store"

echo "== pawctl sharded smoke =="
"$PAWCTL" init "$SMOKE_DIR/shards" shards=4
"$PAWCTL" ingest "$SMOKE_DIR/shards" "$SMOKE_DIR/demo.paw" runs=8
"$PAWCTL" compact "$SMOKE_DIR/shards" threads=4
"$PAWCTL" ingest "$SMOKE_DIR/shards" "$SMOKE_DIR/demo.paw" runs=4
# Kill-and-reopen drill: tear bytes off the tail of the busiest shard's
# WAL (a crash mid-append) and require recovery to repair and report it.
TORN_WAL="$(ls -S "$SMOKE_DIR"/shards/shard-*/wal-*.log | head -1)"
truncate -s -3 "$TORN_WAL"
"$PAWCTL" open "$SMOKE_DIR/shards" threads=4 | tee "$SMOKE_DIR/open.out"
grep -q "torn tail" "$SMOKE_DIR/open.out"
# The repaired store keeps accepting writes (through the writer queues
# and with group-committed durability, to exercise both knobs).
"$PAWCTL" ingest "$SMOKE_DIR/shards" "$SMOKE_DIR/demo.paw" runs=2 threads=4 sync=each

echo "== background compaction kill-and-reopen drill =="
# Ingest with tiny segments and background folds, kill -9 mid-flight —
# the crash can land anywhere in the rotate→snapshot→seal-delete
# window — then require recovery, further ingest, and a background
# compact to all succeed on whatever the crash left behind.
"$PAWCTL" init "$SMOKE_DIR/bg"
"$PAWCTL" ingest "$SMOKE_DIR/bg" "$SMOKE_DIR/demo.paw" runs=400 \
  segbytes=20000 every=50 compact=background &
INGEST_PID=$!
sleep 0.4
kill -9 "$INGEST_PID" 2>/dev/null || true
wait "$INGEST_PID" 2>/dev/null || true
"$PAWCTL" status "$SMOKE_DIR/bg"
"$PAWCTL" open "$SMOKE_DIR/bg" | tee "$SMOKE_DIR/bg_open.out"
grep -q "segments:" "$SMOKE_DIR/bg_open.out"
"$PAWCTL" ingest "$SMOKE_DIR/bg" "$SMOKE_DIR/demo.paw" runs=5 \
  segbytes=20000 compact=background
"$PAWCTL" compact "$SMOKE_DIR/bg" mode=background
"$PAWCTL" open "$SMOKE_DIR/bg"

echo "== pawd server smoke drill =="
# Start a pawd over a fresh sharded store, ingest through the socket
# with pipelining and durable acks, query it, then kill -9 the server
# and require (a) the reopened store to hold every acked write and
# (b) the store-dir lock to have died with the process.
"$PAWCTL" init "$SMOKE_DIR/srv" shards=4
"$PAWCTL" serve "$SMOKE_DIR/srv" port=0 writers=4 \
  auth=admin:100,alice:0 > "$SMOKE_DIR/serve.out" 2>&1 &
SERVE_PID=$!
for _ in $(seq 100); do
  grep -q "listening on port" "$SMOKE_DIR/serve.out" && break
  sleep 0.1
done
PORT="$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' "$SMOKE_DIR/serve.out")"
test -n "$PORT"
"$PAWCTL" put "localhost:$PORT" "$SMOKE_DIR/demo.paw" runs=40 \
  pipeline=16 user=admin | tee "$SMOKE_DIR/put.out"
grep -q "acked 40 execution(s)" "$SMOKE_DIR/put.out"
"$PAWCTL" query "localhost:$PORT" omim user=admin | tee "$SMOKE_DIR/q_admin.out"
grep -q "disease susceptibility" "$SMOKE_DIR/q_admin.out"
# Privacy filtering differs per principal: level-0 alice must not see
# the level-2 module the admin query surfaced.
"$PAWCTL" query "localhost:$PORT" omim user=alice | tee "$SMOKE_DIR/q_alice.out"
grep -q "no results" "$SMOKE_DIR/q_alice.out"
# status must warn that a live pawd holds the store-dir lock.
"$PAWCTL" status "$SMOKE_DIR/srv" | tee "$SMOKE_DIR/srv_status.out"
grep -q "lock:      HELD" "$SMOKE_DIR/srv_status.out"
# The METRICS surface reflects the socket ingest that just ran:
# per-opcode request counters and a nonzero WAL fsync p99 (serve
# defaults to sync=each, so the puts paid real fsyncs).
"$PAWCTL" connect "localhost:$PORT" user=admin metrics \
  | tee "$SMOKE_DIR/metrics.out"
grep -q 'paw_server_requests_total{opcode="add_execution"}' \
  "$SMOKE_DIR/metrics.out"
FSYNC_P99="$(awk '/^paw_wal_fsync_seconds /{
  for (i = 1; i <= NF; i++)
    if ($i ~ /^p99=/) { sub("p99=", "", $i); print $i }
}' "$SMOKE_DIR/metrics.out")"
test -n "$FSYNC_P99"
awk -v v="$FSYNC_P99" 'BEGIN { exit !(v > 0) }'
# The raw flag emits Prometheus text exposition. (Dump to a file
# before grepping: grep -q on the pipe would quit at the first match
# and kill pawctl with EPIPE, which pipefail turns into a failure.)
"$PAWCTL" connect "localhost:$PORT" user=admin metrics --raw \
  > "$SMOKE_DIR/metrics_raw.out"
grep -q "^# TYPE paw_server_requests_total counter" \
  "$SMOKE_DIR/metrics_raw.out"
# Memoized privacy views: the same lineage query twice — the second
# answer must be served from the view cache (nonzero hits counter) and
# be byte-identical to the first.
"$PAWCTL" connect "localhost:$PORT" user=admin \
  'lineage=disease susceptibility' ordinal=0 item=19 \
  | tee "$SMOKE_DIR/lineage1.out"
grep -q "lineage of item 19" "$SMOKE_DIR/lineage1.out"
"$PAWCTL" connect "localhost:$PORT" user=admin \
  'lineage=disease susceptibility' ordinal=0 item=19 \
  > "$SMOKE_DIR/lineage2.out"
diff "$SMOKE_DIR/lineage1.out" "$SMOKE_DIR/lineage2.out"
"$PAWCTL" connect "localhost:$PORT" user=admin metrics \
  > "$SMOKE_DIR/metrics_vc.out"
VC_HITS="$(awk '/^paw_privacy_view_cache_hits_total/{print $2}' \
  "$SMOKE_DIR/metrics_vc.out")"
test -n "$VC_HITS"
awk -v v="$VC_HITS" 'BEGIN { exit !(v > 0) }'
# Mixed read/write drill (MVCC read path): queries run while a
# pipelined ingest is in flight and must succeed with the same
# per-principal filtering — queries ride the shared lease and serve
# from pinned engine views instead of draining the writer queues.
"$PAWCTL" put "localhost:$PORT" "$SMOKE_DIR/demo.paw" runs=300 \
  pipeline=16 user=admin > "$SMOKE_DIR/put_mid.out" &
PUT_PID=$!
"$PAWCTL" query "localhost:$PORT" omim user=admin \
  | tee "$SMOKE_DIR/q_mid_admin.out"
grep -q "disease susceptibility" "$SMOKE_DIR/q_mid_admin.out"
"$PAWCTL" query "localhost:$PORT" omim user=alice \
  > "$SMOKE_DIR/q_mid_alice.out"
grep -q "no results" "$SMOKE_DIR/q_mid_alice.out"
wait "$PUT_PID"
grep -q "acked 300 execution(s)" "$SMOKE_DIR/put_mid.out"
kill -9 "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
# The kernel released the flock with the process; recovery sees every
# acked write (both puts completed before the kill: 40 + 300).
"$PAWCTL" open "$SMOKE_DIR/srv" threads=4 | tee "$SMOKE_DIR/srv_open.out"
grep -q "executions:  340" "$SMOKE_DIR/srv_open.out"

echo "== pawd replication drill =="
# Leader with quorum acks + one WAL-shipping follower. Every acked
# write therefore exists on both nodes, so killing the leader with -9
# and promoting the follower (reopening its store dir as a plain
# leader) must lose nothing. Along the way: the follower serves
# privacy-filtered reads while a pipelined ingest runs on the leader,
# and rejects writes with a message pointing at the leader.
"$PAWCTL" init "$SMOKE_DIR/lead" shards=4
"$PAWCTL" init "$SMOKE_DIR/fol" shards=4
"$PAWCTL" serve "$SMOKE_DIR/lead" port=0 writers=4 \
  auth=admin:100,alice:0 acks=quorum quorum-ms=15000 trace-sample=1 \
  > "$SMOKE_DIR/lead_serve.out" 2>&1 &
LEAD_PID=$!
for _ in $(seq 100); do
  grep -q "listening on port" "$SMOKE_DIR/lead_serve.out" && break
  sleep 0.1
done
LEAD_PORT="$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' \
  "$SMOKE_DIR/lead_serve.out")"
test -n "$LEAD_PORT"
grep -q "acks=quorum" "$SMOKE_DIR/lead_serve.out"
"$PAWCTL" serve "$SMOKE_DIR/fol" port=0 writers=4 \
  auth=admin:100,alice:0 follow="localhost:$LEAD_PORT" \
  follow-principal=admin trace-sample=1 \
  > "$SMOKE_DIR/fol_serve.out" 2>&1 &
FOL_PID=$!
for _ in $(seq 100); do
  grep -q "listening on port" "$SMOKE_DIR/fol_serve.out" && break
  sleep 0.1
done
FOL_PORT="$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' \
  "$SMOKE_DIR/fol_serve.out")"
test -n "$FOL_PORT"
grep -q "follower of" "$SMOKE_DIR/fol_serve.out"
# Quorum-acked pipelined ingest: each ack means a follower confirmed
# the write durable, so "acked 40" is itself the replication check.
"$PAWCTL" put "localhost:$LEAD_PORT" "$SMOKE_DIR/demo.paw" runs=40 \
  pipeline=16 user=admin | tee "$SMOKE_DIR/repl_put.out"
grep -q "acked 40 execution(s)" "$SMOKE_DIR/repl_put.out"
# Query the follower while a second pipelined ingest runs on the
# leader: same per-principal privacy filtering as the leader.
"$PAWCTL" put "localhost:$LEAD_PORT" "$SMOKE_DIR/demo.paw" runs=200 \
  pipeline=16 user=admin > "$SMOKE_DIR/repl_put_mid.out" &
REPL_PUT_PID=$!
"$PAWCTL" query "localhost:$FOL_PORT" omim user=admin \
  | tee "$SMOKE_DIR/repl_q_admin.out"
grep -q "disease susceptibility" "$SMOKE_DIR/repl_q_admin.out"
"$PAWCTL" query "localhost:$FOL_PORT" omim user=alice \
  > "$SMOKE_DIR/repl_q_alice.out"
grep -q "no results" "$SMOKE_DIR/repl_q_alice.out"
# Writes to the follower are rejected and point at the leader.
if "$PAWCTL" put "localhost:$FOL_PORT" "$SMOKE_DIR/demo.paw" runs=1 \
  user=admin > "$SMOKE_DIR/repl_reject.out" 2>&1; then
  echo "FAIL: follower accepted a write"
  exit 1
fi
grep -qi "follower" "$SMOKE_DIR/repl_reject.out"
wait "$REPL_PUT_PID"
grep -q "acked 200 execution(s)" "$SMOKE_DIR/repl_put_mid.out"
# The leader's metrics surface reports replication state.
"$PAWCTL" connect "localhost:$LEAD_PORT" user=admin metrics \
  > "$SMOKE_DIR/repl_metrics.out"
grep -q "paw_repl_lag_seconds" "$SMOKE_DIR/repl_metrics.out"
SUBSCRIBERS="$(awk '/^paw_repl_subscribers /{print $2}' \
  "$SMOKE_DIR/repl_metrics.out")"
test "$SUBSCRIBERS" = "1"
# Per-subscriber replication backlog gauge (dropped on disconnect).
grep -q 'paw_repl_subscriber_lag_records{follower="pawd"}' \
  "$SMOKE_DIR/repl_metrics.out"
# Trace drill: both nodes run trace-sample=1, so a quorum-acked write
# leaves one span tree spanning the wire. Pick the trace id of a
# leader trace that pushed a replication batch and require the
# follower recorded its apply span under the SAME id — end-to-end
# context propagation, asserted from the outside.
"$PAWCTL" connect "localhost:$LEAD_PORT" user=admin trace \
  > "$SMOKE_DIR/lead_trace.out"
grep -q "req.add_execution" "$SMOKE_DIR/lead_trace.out"
grep -q "wal.fsync" "$SMOKE_DIR/lead_trace.out"
grep -q "quorum.wait" "$SMOKE_DIR/lead_trace.out"
TRACE_ID="$(awk '/^trace /{id=$2} /repl\.push/{print id; exit}' \
  "$SMOKE_DIR/lead_trace.out")"
test -n "$TRACE_ID"
"$PAWCTL" connect "localhost:$FOL_PORT" user=admin trace \
  --id="$TRACE_ID" > "$SMOKE_DIR/fol_trace.out"
grep -q "trace $TRACE_ID" "$SMOKE_DIR/fol_trace.out"
grep -q "repl.apply" "$SMOKE_DIR/fol_trace.out"
# The privacy audit channel on the follower saw both principals'
# queries (writes are not privacy-enforced reads, so the leader's
# ingest leaves no audit events — the follower served the queries).
"$PAWCTL" connect "localhost:$FOL_PORT" user=admin audit \
  > "$SMOKE_DIR/fol_audit.out"
grep -Eq "served +admin +keyword_search" "$SMOKE_DIR/fol_audit.out"
grep -Eq "served +alice +keyword_search" "$SMOKE_DIR/fol_audit.out"
# TRACE_DUMP is admin-gated: alice gets a permission error.
if "$PAWCTL" connect "localhost:$LEAD_PORT" user=alice trace \
  > "$SMOKE_DIR/alice_trace.out" 2>&1; then
  echo "FAIL: non-admin principal dumped traces"
  exit 1
fi
# Partitioned failover: kill -9 the leader mid-life, then the
# follower, and promote by reopening the follower's store dir. Every
# quorum-acked write (240 of them) must be there.
kill -9 "$LEAD_PID" 2>/dev/null || true
wait "$LEAD_PID" 2>/dev/null || true
kill -9 "$FOL_PID" 2>/dev/null || true
wait "$FOL_PID" 2>/dev/null || true
"$PAWCTL" open "$SMOKE_DIR/fol" threads=4 | tee "$SMOKE_DIR/fol_open.out"
grep -q "executions:  240" "$SMOKE_DIR/fol_open.out"
# Promote: serve the follower's store as a plain leader and keep
# writing — the replicated WAL is byte-compatible with recovery.
"$PAWCTL" serve "$SMOKE_DIR/fol" port=0 writers=4 \
  auth=admin:100,alice:0 > "$SMOKE_DIR/promo_serve.out" 2>&1 &
PROMO_PID=$!
for _ in $(seq 100); do
  grep -q "listening on port" "$SMOKE_DIR/promo_serve.out" && break
  sleep 0.1
done
PROMO_PORT="$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' \
  "$SMOKE_DIR/promo_serve.out")"
test -n "$PROMO_PORT"
"$PAWCTL" put "localhost:$PROMO_PORT" "$SMOKE_DIR/demo.paw" runs=5 \
  pipeline=4 user=admin | tee "$SMOKE_DIR/promo_put.out"
grep -q "acked 5 execution(s)" "$SMOKE_DIR/promo_put.out"
"$PAWCTL" query "localhost:$PROMO_PORT" omim user=admin \
  | tee "$SMOKE_DIR/promo_q.out"
grep -q "disease susceptibility" "$SMOKE_DIR/promo_q.out"
kill -9 "$PROMO_PID" 2>/dev/null || true
wait "$PROMO_PID" 2>/dev/null || true
"$PAWCTL" open "$SMOKE_DIR/fol" threads=4 | tee "$SMOKE_DIR/promo_open.out"
grep -q "executions:  245" "$SMOKE_DIR/promo_open.out"

echo "== pawctl migrate smoke =="
# A v1 (text-payload) store must open under the v2 build and migrate
# to all-binary payloads in place. (codec=text on ingest keeps the
# store at v1 — a default-codec open would already upgrade the marker.)
"$PAWCTL" init "$SMOKE_DIR/v1store" codec=text
"$PAWCTL" ingest "$SMOKE_DIR/v1store" "$SMOKE_DIR/demo.paw" runs=5 codec=text
grep -q "pawstore 1" "$SMOKE_DIR/v1store/PAWSTORE"
"$PAWCTL" migrate "$SMOKE_DIR/v1store"
grep -q "pawstore 2" "$SMOKE_DIR/v1store/PAWSTORE"
"$PAWCTL" open "$SMOKE_DIR/v1store" | tee "$SMOKE_DIR/migrate.out"
grep -q "executions:  5" "$SMOKE_DIR/migrate.out"

echo "== bench smoke (BENCH_store.json) =="
if [[ -x "$BUILD_DIR/bench_store" ]]; then
  BENCH_BIN="$(pwd)/$BUILD_DIR/bench_store"
  (cd "$SMOKE_DIR" && "$BENCH_BIN" --smoke)
  test -s "$SMOKE_DIR/BENCH_store.json"
  grep -q '"experiment":"e10e"' "$SMOKE_DIR/BENCH_store.json"
  grep -q '"experiment":"e10f"' "$SMOKE_DIR/BENCH_store.json"
  grep -q '"experiment":"e10g"' "$SMOKE_DIR/BENCH_store.json"
  cp "$SMOKE_DIR/BENCH_store.json" "$BUILD_DIR/BENCH_store.json"
  echo "perf trajectory written to $BUILD_DIR/BENCH_store.json"
else
  echo "bench_store not built (no google-benchmark); skipping"
fi

echo "== bench_server smoke (BENCH_server.json, E11) =="
if [[ -x "$BUILD_DIR/bench_server" ]]; then
  BENCH_BIN="$(pwd)/$BUILD_DIR/bench_server"
  # Full instrumented smoke run first: produces BENCH_server.json and
  # the pipelined-vs-sync acceptance line.
  (cd "$SMOKE_DIR" && "$BENCH_BIN" --smoke | tee bench_server.out)
  test -s "$SMOKE_DIR/BENCH_server.json"
  grep -q '"experiment":"e11"' "$SMOKE_DIR/BENCH_server.json"
  grep -q '"mode":"pipelined"' "$SMOKE_DIR/BENCH_server.json"
  # Acceptance: pipelined >= 3x sync at 8 connections in smoke mode.
  grep -q ">= 3x: yes" "$SMOKE_DIR/bench_server.out"
  # E12 (mixed read/write) ran and its hard acceptance held: query
  # phases never took the exclusive store lease.
  grep -q '"experiment":"e12"' "$SMOKE_DIR/BENCH_server.json"
  grep -q "^e12 query p99 under ingest:" "$SMOKE_DIR/bench_server.out"
  grep -q "queries never took the writer lease: yes" \
    "$SMOKE_DIR/bench_server.out"
  # E13 (multi-tenant capacity) ran both phases and recorded per-cell
  # view-cache hit-rate deltas; the memoized views delivered >= 3x on
  # lineage and structural p50 at high skew.
  grep -q '"experiment":"e13"' "$SMOKE_DIR/BENCH_server.json"
  grep -q '"view_cache":"on"' "$SMOKE_DIR/BENCH_server.json"
  grep -q '"view_cache_hit_rate"' "$SMOKE_DIR/BENCH_server.json"
  grep -q "^e13 view-cache p50 speedup.*(>= 3x: yes)" \
    "$SMOKE_DIR/bench_server.out"
  # E14 (follower read capacity) ran: followers caught up, the query
  # population fanned across leader + followers, and the leader's
  # replication-lag histogram recorded the stream. Scaling itself is
  # advisory (1-core CI shares the core across nodes).
  grep -q '"experiment":"e14"' "$SMOKE_DIR/BENCH_server.json"
  grep -q '"phase":"fanned"' "$SMOKE_DIR/BENCH_server.json"
  grep -q "^e14 follower scaling:" "$SMOKE_DIR/bench_server.out"
  grep -q "^e14 paw_repl_lag_seconds: count=" "$SMOKE_DIR/bench_server.out"
  # Overhead gate: the same bench from a PAW_NO_METRICS build (update
  # paths compiled out) measures what the instrumentation costs; the
  # instrumented build must stay within 5% of it. Shared CI machines
  # make any single-run comparison hopeless — throughput swings +-10%
  # over seconds from external load — so the gate alternates several
  # short --gate-only runs of each binary and compares the per-build
  # BEST run (the throughput ceiling): a load burst only lowers
  # samples, and alternation gives both builds equal shots at a clean
  # window, while a genuine hot-path regression caps the instrumented
  # ceiling across every run. One retry absorbs a pathologically busy
  # window.
  # The baseline compiles out BOTH metrics and the span flight
  # recorder, so the gate prices the full observability stack
  # (counters + tracing at default sampling) at once.
  NOMETRICS_BUILD_DIR="${NOMETRICS_BUILD_DIR:-build-nometrics}"
  cmake -B "$NOMETRICS_BUILD_DIR" -S . -DPAW_NO_METRICS=ON \
    -DPAW_NO_TRACE=ON
  cmake --build "$NOMETRICS_BUILD_DIR" -j "$JOBS" --target bench_server
  BASE_BIN="$(pwd)/$NOMETRICS_BUILD_DIR/bench_server"
  gate_attempt() {
    : > "$SMOKE_DIR/gate_base.out"
    : > "$SMOKE_DIR/gate_inst.out"
    local t
    for t in 1 2 3 4 5; do
      (cd "$SMOKE_DIR" && \
        BENCH_JSON="$SMOKE_DIR/BENCH_server_nometrics.json" \
        "$BASE_BIN" --smoke --gate-only >> gate_base.out)
      (cd "$SMOKE_DIR" && \
        BENCH_JSON="$SMOKE_DIR/BENCH_server_gate.json" \
        "$BENCH_BIN" --smoke --gate-only >> gate_inst.out)
    done
    local base_best inst_best
    base_best="$(awk '/^e11 gate/{if ($4 > m) m = $4} END{print m}' \
      "$SMOKE_DIR/gate_base.out")"
    inst_best="$(awk '/^e11 gate/{if ($4 > m) m = $4} END{print m}' \
      "$SMOKE_DIR/gate_inst.out")"
    awk -v b="$base_best" -v i="$inst_best" 'BEGIN {
      if (b <= 0 || i <= 0) { print "overhead gate: missing data"; exit }
      verdict = (i >= 0.95 * b) ? "(<= 5%: yes)" : "(> 5%)"
      fmt = "e11 instrumentation overhead (best of 5 alternated runs,"
      fmt = fmt " %.0f vs %.0f ops/s): %.1f%% %s\n"
      printf fmt, i, b, (1 - i / b) * 100, verdict
    }' | tee "$SMOKE_DIR/bench_gate.out"
    grep -qF "<= 5%: yes" "$SMOKE_DIR/bench_gate.out"
  }
  if ! gate_attempt; then
    echo "overhead gate failed; retrying once (noisy machine)"
    gate_attempt
  fi
  # Acceptance: metrics + tracing cost <= 5% vs the
  # PAW_NO_METRICS + PAW_NO_TRACE baseline.
  grep -qF "<= 5%: yes" "$SMOKE_DIR/bench_gate.out"
  cp "$SMOKE_DIR/BENCH_server.json" "$BUILD_DIR/BENCH_server.json"
  echo "server perf written to $BUILD_DIR/BENCH_server.json"
else
  echo "bench_server not built (no google-benchmark); skipping"
fi

echo "== asan+ubsan store tests =="
ASAN_BUILD_DIR="${ASAN_BUILD_DIR:-build-asan}"
cmake -B "$ASAN_BUILD_DIR" -S . -DPAW_SANITIZE=address
SAN_TESTS=(store_test sharded_store_test crash_injection_test record_test
           thread_pool_test crc32_test codec_v2_test wal_group_commit_test
           mixed_version_test background_compaction_test wire_test
           server_test replication_test store_lock_test metrics_test
           trace_test view_cache_test dp_counters_test)
cmake --build "$ASAN_BUILD_DIR" -j "$JOBS" --target "${SAN_TESTS[@]}"
for t in "${SAN_TESTS[@]}"; do
  echo "-- $t (asan+ubsan)"
  "$ASAN_BUILD_DIR/$t" --gtest_brief=1
done

echo "== tsan concurrency tests =="
# The suites that genuinely race threads: group-commit WAL (appenders +
# rotation + the replication commit sink), sharded writer queues,
# background compaction (snapshot worker vs live appends over the
# pinned view), and replication (leader sender + follower apply thread
# vs concurrent ingest and follower-served queries).
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-build-tsan}"
cmake -B "$TSAN_BUILD_DIR" -S . -DPAW_SANITIZE=thread
TSAN_TESTS=(wal_group_commit_test sharded_store_test
            background_compaction_test thread_pool_test server_test
            replication_test metrics_test trace_test view_cache_test
            dp_counters_test)
cmake --build "$TSAN_BUILD_DIR" -j "$JOBS" --target "${TSAN_TESTS[@]}"
for t in "${TSAN_TESTS[@]}"; do
  echo "-- $t (tsan)"
  "$TSAN_BUILD_DIR/$t" --gtest_brief=1
done

echo "== OK =="

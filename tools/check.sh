#!/usr/bin/env bash
# Single CI entry point: tier-1 configure/build/test plus a pawctl
# smoke test of the demo pipeline and the persistent store round trip.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"

echo "== configure =="
cmake -B "$BUILD_DIR" -S .

echo "== build =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== pawctl smoke =="
PAWCTL="$BUILD_DIR/pawctl"
"$PAWCTL" demo | "$PAWCTL" validate /dev/stdin

SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
"$PAWCTL" demo > "$SMOKE_DIR/demo.paw"
"$PAWCTL" init "$SMOKE_DIR/store"
"$PAWCTL" ingest "$SMOKE_DIR/store" "$SMOKE_DIR/demo.paw" runs=10
"$PAWCTL" compact "$SMOKE_DIR/store"
"$PAWCTL" ingest "$SMOKE_DIR/store" "$SMOKE_DIR/demo.paw" runs=5
"$PAWCTL" open "$SMOKE_DIR/store"

echo "== OK =="

// pawctl — command-line front end for the paw library.
//
// Usage:
//   pawctl demo                          write the paper's example spec
//                                        to stdout (text format)
//   pawctl validate <spec.paw>           parse + validate a spec file
//   pawctl show <spec.paw>               print workflows, modules, tau edges
//   pawctl run <spec.paw> [k=v ...]      execute with the given inputs
//                                        (defaults for missing labels),
//                                        print the provenance graph
//   pawctl search <spec.paw> <level> <term> [term ...]
//                                        minimal-view keyword search at an
//                                        access level

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "src/provenance/executor.h"
#include "src/provenance/serialize.h"
#include "src/query/keyword_search.h"
#include "src/repo/disease.h"
#include "src/workflow/hierarchy.h"
#include "src/workflow/serialize.h"
#include "src/workflow/view.h"

using namespace paw;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Result<Specification> LoadSpec(const char* path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(std::string("cannot open ") + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseSpecification(buffer.str());
}

int CmdDemo() {
  auto spec = BuildDiseaseSpec();
  if (!spec.ok()) return Fail(spec.status());
  std::fputs(Serialize(spec.value()).c_str(), stdout);
  return 0;
}

int CmdValidate(const char* path) {
  auto spec = LoadSpec(path);
  if (!spec.ok()) return Fail(spec.status());
  std::printf("OK: %s (%d workflows, %d modules)\n",
              spec.value().name().c_str(), spec.value().num_workflows(),
              spec.value().num_modules());
  return 0;
}

int CmdShow(const char* path) {
  auto spec = LoadSpec(path);
  if (!spec.ok()) return Fail(spec.status());
  ExpansionHierarchy h = ExpansionHierarchy::Build(spec.value());
  std::printf("spec \"%s\"\n", spec.value().name().c_str());
  for (const Workflow& w : spec.value().workflows()) {
    std::printf("%*s%s \"%s\" level=%d\n", 2 * h.Depth(w.id), "",
                w.code.c_str(), w.name.c_str(), w.required_level);
    for (ModuleId mid : w.modules) {
      const Module& m = spec.value().module(mid);
      std::printf("%*s  %-5s %-30s", 2 * h.Depth(w.id), "",
                  m.code.c_str(), m.name.c_str());
      if (m.kind == ModuleKind::kComposite) {
        std::printf(" -> %s",
                    spec.value().workflow(m.expansion).code.c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}

int CmdRun(const char* path, int argc, char** argv) {
  auto spec = LoadSpec(path);
  if (!spec.ok()) return Fail(spec.status());
  // Inputs: defaults for every root-input label, overridden by k=v args.
  ValueMap inputs;
  for (ModuleId mid : spec.value().workflow(spec.value().root()).modules) {
    if (spec.value().module(mid).kind != ModuleKind::kInput) continue;
    for (const DataflowEdge* e : spec.value().OutEdges(mid)) {
      for (const std::string& label : e->labels) {
        inputs[label] = "<" + label + ">";
      }
    }
  }
  for (int i = 0; i < argc; ++i) {
    const char* eq = std::strchr(argv[i], '=');
    if (eq == nullptr) {
      std::fprintf(stderr, "error: input must be label=value: %s\n",
                   argv[i]);
      return 1;
    }
    inputs[std::string(argv[i], static_cast<size_t>(eq - argv[i]))] =
        eq + 1;
  }
  FunctionRegistry fns;
  auto exec = Execute(spec.value(), fns, inputs);
  if (!exec.ok()) return Fail(exec.status());
  std::fputs(SerializeExecution(exec.value()).c_str(), stdout);
  return 0;
}

int CmdSearch(const char* path, const char* level_str, int argc,
              char** argv) {
  auto spec = LoadSpec(path);
  if (!spec.ok()) return Fail(spec.status());
  AccessLevel level = std::atoi(level_str);
  std::vector<std::string> terms;
  for (int i = 0; i < argc; ++i) terms.emplace_back(argv[i]);
  ExpansionHierarchy h = ExpansionHierarchy::Build(spec.value());
  auto minimal = MinimalCoveringPrefixes(spec.value(), h, terms, level);
  if (!minimal.ok()) return Fail(minimal.status());
  if (minimal.value().empty()) {
    std::printf("no view at level %d covers the query\n", level);
    return 0;
  }
  for (const Prefix& p : minimal.value()) {
    std::printf("minimal view {");
    for (WorkflowId w : p) {
      std::printf(" %s", spec.value().workflow(w).code.c_str());
    }
    std::printf(" }:\n");
    auto view = ExpandPrefix(spec.value(), h, p);
    if (!view.ok()) return Fail(view.status());
    for (const std::string& term : terms) {
      for (ModuleId m : MatchingModules(spec.value(), view.value(), term)) {
        std::printf("  '%s' matched by %s \"%s\"\n", term.c_str(),
                    spec.value().module(m).code.c_str(),
                    spec.value().module(m).name.c_str());
      }
    }
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: pawctl demo\n"
               "       pawctl validate <spec.paw>\n"
               "       pawctl show <spec.paw>\n"
               "       pawctl run <spec.paw> [label=value ...]\n"
               "       pawctl search <spec.paw> <level> <term> ...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "demo") return CmdDemo();
  if (cmd == "validate" && argc >= 3) return CmdValidate(argv[2]);
  if (cmd == "show" && argc >= 3) return CmdShow(argv[2]);
  if (cmd == "run" && argc >= 3) {
    return CmdRun(argv[2], argc - 3, argv + 3);
  }
  if (cmd == "search" && argc >= 5) {
    return CmdSearch(argv[2], argv[3], argc - 4, argv + 4);
  }
  return Usage();
}

// pawctl — command-line front end for the paw library.
//
// Usage:
//   pawctl demo                          write the paper's example spec
//                                        to stdout (text format)
//   pawctl validate <spec.paw>           parse + validate a spec file
//   pawctl show <spec.paw>               print workflows, modules, tau edges
//   pawctl run <spec.paw> [k=v ...]      execute with the given inputs
//                                        (defaults for missing labels),
//                                        print the provenance graph
//   pawctl search <spec.paw> <level> <term> [term ...]
//                                        minimal-view keyword search at an
//                                        access level
//
// Persistent store commands (see tools/README.md, "Store format"):
//   pawctl init <dir>                    create an empty store directory
//   pawctl open <dir>                    recover a store, print its stats
//   pawctl ingest <dir> <spec.paw> [runs=N]
//                                        add a spec (reused if already
//                                        stored under the same name) and
//                                        run N executions into the store
//   pawctl compact <dir>                 snapshot + truncate the log

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "src/provenance/executor.h"
#include "src/provenance/serialize.h"
#include "src/query/keyword_search.h"
#include "src/repo/disease.h"
#include "src/store/persistent_repository.h"
#include "src/workflow/hierarchy.h"
#include "src/workflow/serialize.h"
#include "src/workflow/view.h"

using namespace paw;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Result<Specification> LoadSpec(const char* path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(std::string("cannot open ") + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseSpecification(buffer.str());
}

int CmdDemo() {
  auto spec = BuildDiseaseSpec();
  if (!spec.ok()) return Fail(spec.status());
  std::fputs(Serialize(spec.value()).c_str(), stdout);
  return 0;
}

int CmdValidate(const char* path) {
  auto spec = LoadSpec(path);
  if (!spec.ok()) return Fail(spec.status());
  std::printf("OK: %s (%d workflows, %d modules)\n",
              spec.value().name().c_str(), spec.value().num_workflows(),
              spec.value().num_modules());
  return 0;
}

int CmdShow(const char* path) {
  auto spec = LoadSpec(path);
  if (!spec.ok()) return Fail(spec.status());
  ExpansionHierarchy h = ExpansionHierarchy::Build(spec.value());
  std::printf("spec \"%s\"\n", spec.value().name().c_str());
  for (const Workflow& w : spec.value().workflows()) {
    std::printf("%*s%s \"%s\" level=%d\n", 2 * h.Depth(w.id), "",
                w.code.c_str(), w.name.c_str(), w.required_level);
    for (ModuleId mid : w.modules) {
      const Module& m = spec.value().module(mid);
      std::printf("%*s  %-5s %-30s", 2 * h.Depth(w.id), "",
                  m.code.c_str(), m.name.c_str());
      if (m.kind == ModuleKind::kComposite) {
        std::printf(" -> %s",
                    spec.value().workflow(m.expansion).code.c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}

// Placeholder bindings "<label><suffix>" for every root-input label.
ValueMap DefaultInputs(const Specification& spec,
                       const std::string& suffix = "") {
  ValueMap inputs;
  for (ModuleId mid : spec.workflow(spec.root()).modules) {
    if (spec.module(mid).kind != ModuleKind::kInput) continue;
    for (const DataflowEdge* e : spec.OutEdges(mid)) {
      for (const std::string& label : e->labels) {
        inputs[label] = "<" + label + suffix + ">";
      }
    }
  }
  return inputs;
}

int CmdRun(const char* path, int argc, char** argv) {
  auto spec = LoadSpec(path);
  if (!spec.ok()) return Fail(spec.status());
  // Inputs: defaults for every root-input label, overridden by k=v args.
  ValueMap inputs = DefaultInputs(spec.value());
  for (int i = 0; i < argc; ++i) {
    const char* eq = std::strchr(argv[i], '=');
    if (eq == nullptr) {
      std::fprintf(stderr, "error: input must be label=value: %s\n",
                   argv[i]);
      return 1;
    }
    inputs[std::string(argv[i], static_cast<size_t>(eq - argv[i]))] =
        eq + 1;
  }
  FunctionRegistry fns;
  auto exec = Execute(spec.value(), fns, inputs);
  if (!exec.ok()) return Fail(exec.status());
  std::fputs(SerializeExecution(exec.value()).c_str(), stdout);
  return 0;
}

int CmdSearch(const char* path, const char* level_str, int argc,
              char** argv) {
  auto spec = LoadSpec(path);
  if (!spec.ok()) return Fail(spec.status());
  AccessLevel level = std::atoi(level_str);
  std::vector<std::string> terms;
  for (int i = 0; i < argc; ++i) terms.emplace_back(argv[i]);
  ExpansionHierarchy h = ExpansionHierarchy::Build(spec.value());
  auto minimal = MinimalCoveringPrefixes(spec.value(), h, terms, level);
  if (!minimal.ok()) return Fail(minimal.status());
  if (minimal.value().empty()) {
    std::printf("no view at level %d covers the query\n", level);
    return 0;
  }
  for (const Prefix& p : minimal.value()) {
    std::printf("minimal view {");
    for (WorkflowId w : p) {
      std::printf(" %s", spec.value().workflow(w).code.c_str());
    }
    std::printf(" }:\n");
    auto view = ExpandPrefix(spec.value(), h, p);
    if (!view.ok()) return Fail(view.status());
    for (const std::string& term : terms) {
      for (ModuleId m : MatchingModules(spec.value(), view.value(), term)) {
        std::printf("  '%s' matched by %s \"%s\"\n", term.c_str(),
                    spec.value().module(m).code.c_str(),
                    spec.value().module(m).name.c_str());
      }
    }
  }
  return 0;
}

void PrintStoreStats(const PersistentRepository& store) {
  const auto& r = store.recovery();
  std::printf("store %s\n", store.dir().c_str());
  std::printf("  specs:       %d\n", store.repo().num_specs());
  std::printf("  executions:  %d\n", store.repo().num_executions());
  std::printf("  lsn:         %llu\n",
              static_cast<unsigned long long>(store.lsn()));
  std::printf("  wal suffix:  %llu record(s) past snapshot lsn %llu\n",
              static_cast<unsigned long long>(store.records_since_snapshot()),
              static_cast<unsigned long long>(r.snapshot_lsn));
  std::printf("  approx mem:  %lld bytes\n",
              static_cast<long long>(store.repo().ApproxBytes()));
  std::printf("  recovery:    %llu replayed, %llu skipped\n",
              static_cast<unsigned long long>(r.records_replayed),
              static_cast<unsigned long long>(r.records_skipped));
  if (r.torn_tail) {
    std::printf("  torn tail:   dropped %llu byte(s): %s\n",
                static_cast<unsigned long long>(r.dropped_bytes),
                r.tail_error.c_str());
  }
}

int CmdInit(const char* dir) {
  auto store = PersistentRepository::Init(dir);
  if (!store.ok()) return Fail(store.status());
  std::printf("initialized empty store in %s\n", dir);
  return 0;
}

int CmdOpen(const char* dir) {
  auto store = PersistentRepository::Open(dir);
  if (!store.ok()) return Fail(store.status());
  PrintStoreStats(store.value());
  return 0;
}

int CmdIngest(const char* dir, const char* path, int argc, char** argv) {
  int runs = 1;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "runs=", 5) == 0) {
      char* end = nullptr;
      long parsed = std::strtol(argv[i] + 5, &end, 10);
      if (end == argv[i] + 5 || *end != '\0' || parsed < 0 ||
          parsed > 1000000) {
        std::fprintf(stderr,
                     "error: runs must be an integer in [0, 1000000]: %s\n",
                     argv[i]);
        return 1;
      }
      runs = static_cast<int>(parsed);
    } else {
      std::fprintf(stderr, "error: unknown ingest option %s\n", argv[i]);
      return 1;
    }
  }
  auto store = PersistentRepository::Open(dir);
  if (!store.ok()) return Fail(store.status());
  auto parsed = LoadSpec(path);
  if (!parsed.ok()) return Fail(parsed.status());

  // Reuse a previously ingested spec of the same name, else store it.
  int spec_id;
  auto existing = store.value().repo().FindSpec(parsed.value().name());
  if (existing.ok()) {
    spec_id = existing.value();
    std::printf("spec \"%s\" already stored as id %d\n",
                parsed.value().name().c_str(), spec_id);
  } else {
    auto added =
        store.value().AddSpecification(std::move(parsed).value());
    if (!added.ok()) return Fail(added.status());
    spec_id = added.value();
    std::printf("stored spec as id %d\n", spec_id);
  }

  const Specification& spec = store.value().repo().entry(spec_id).spec;
  FunctionRegistry fns;
  for (int i = 0; i < runs; ++i) {
    // Inputs varied per run so repeated ingests do not produce
    // identical provenance.
    ValueMap inputs = DefaultInputs(spec, "#" + std::to_string(i));
    auto exec = Execute(spec, fns, inputs);
    if (!exec.ok()) return Fail(exec.status());
    auto eid = store.value().AddExecution(spec_id, std::move(exec).value());
    if (!eid.ok()) return Fail(eid.status());
  }
  auto synced = store.value().Sync();
  if (!synced.ok()) return Fail(synced);
  std::printf("ingested %d execution(s) of spec %d; store lsn now %llu\n",
              runs, spec_id,
              static_cast<unsigned long long>(store.value().lsn()));
  return 0;
}

int CmdCompact(const char* dir) {
  auto store = PersistentRepository::Open(dir);
  if (!store.ok()) return Fail(store.status());
  const uint64_t before = store.value().records_since_snapshot();
  auto compacted = store.value().Compact();
  if (!compacted.ok()) return Fail(compacted);
  std::printf("compacted %s: folded %llu record(s) into snapshot lsn %llu\n",
              dir, static_cast<unsigned long long>(before),
              static_cast<unsigned long long>(store.value().lsn()));
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: pawctl demo\n"
               "       pawctl validate <spec.paw>\n"
               "       pawctl show <spec.paw>\n"
               "       pawctl run <spec.paw> [label=value ...]\n"
               "       pawctl search <spec.paw> <level> <term> ...\n"
               "       pawctl init <dir>\n"
               "       pawctl open <dir>\n"
               "       pawctl ingest <dir> <spec.paw> [runs=N]\n"
               "       pawctl compact <dir>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "demo") return CmdDemo();
  if (cmd == "validate" && argc >= 3) return CmdValidate(argv[2]);
  if (cmd == "show" && argc >= 3) return CmdShow(argv[2]);
  if (cmd == "run" && argc >= 3) {
    return CmdRun(argv[2], argc - 3, argv + 3);
  }
  if (cmd == "search" && argc >= 5) {
    return CmdSearch(argv[2], argv[3], argc - 4, argv + 4);
  }
  if (cmd == "init" && argc >= 3) return CmdInit(argv[2]);
  if (cmd == "open" && argc >= 3) return CmdOpen(argv[2]);
  if (cmd == "ingest" && argc >= 4) {
    return CmdIngest(argv[2], argv[3], argc - 4, argv + 4);
  }
  if (cmd == "compact" && argc >= 3) return CmdCompact(argv[2]);
  return Usage();
}

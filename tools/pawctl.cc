// pawctl — command-line front end for the paw library.
//
// Usage:
//   pawctl demo                          write the paper's example spec
//                                        to stdout (text format)
//   pawctl validate <spec.paw>           parse + validate a spec file
//   pawctl show <spec.paw>               print workflows, modules, tau edges
//   pawctl run <spec.paw> [k=v ...]      execute with the given inputs
//                                        (defaults for missing labels),
//                                        print the provenance graph
//   pawctl search <spec.paw> <level> <term> [term ...]
//                                        minimal-view keyword search at an
//                                        access level
//
// Persistent store commands (see tools/README.md, "Store format"):
//   pawctl init <dir> [shards=N] [codec=binary|text]
//                                        create an empty store directory;
//                                        with shards=N, a sharded store of
//                                        N shard subdirectories; codec=text
//                                        writes v1 text payloads
//   pawctl open <dir> [threads=N]        recover a store (shards in
//                                        parallel), print its stats
//   pawctl status <dir>                  inspect segment/LSN/manifest
//                                        state from the files alone (no
//                                        recovery, no epoch bump)
//   pawctl ingest <dir> <spec.paw> [runs=N] [threads=N] [sync=each|batch]
//                 [codec=binary|text] [segbytes=N] [every=N]
//                 [compact=background|inline]
//                                        add a spec (reused if already
//                                        stored under the same name) and
//                                        run N executions into the store;
//                                        threads>1 drives the sharded
//                                        writer queues, sync=each makes
//                                        every append durable before ack
//                                        (group-committed); segbytes=N
//                                        rotates WAL segments at N bytes,
//                                        every=N auto-compacts each N
//                                        records, compact=background runs
//                                        those folds on the snapshot
//                                        worker while ingest continues
//   pawctl compact <dir> [threads=N] [mode=background|inline]
//                                        snapshot + truncate the log(s);
//                                        mode=background takes the cut
//                                        without blocking appends and
//                                        waits for the snapshot worker
//   pawctl migrate <dir> [threads=N]     rewrite a v1 (text) store as v2
//                                        (binary): bump the format marker,
//                                        re-encode all records into binary
//                                        snapshots, truncate the logs
//
// Server commands (see tools/README.md, "pawd server"):
//   pawctl serve <dir> [port=N] [bind=ADDR] [shards=N] [workers=N]
//                [writers=N] [threads=N] [sync=each|batch]
//                [auth=name:level[:group],...] [idle=MS] [admin=N] [poll]
//                [viewcache=on|off] [viewcache-mb=N]
//                [follow=HOST:PORT] [follow-principal=NAME]
//                [acks=local|quorum] [quorum-ms=N] [trace-sample=N]
//                                        serve the store over the binary
//                                        wire protocol (pawd); creates the
//                                        store first when <dir> is empty
//                                        (sharded with shards=N). sync=each
//                                        (default) makes every acked write
//                                        durable; auth registers the
//                                        principals AUTH accepts (default
//                                        admin:100); viewcache toggles the
//                                        memoized privacy-view cache (on by
//                                        default, byte budget viewcache-mb
//                                        MiB). follow=HOST:PORT runs a
//                                        read-only follower replicating
//                                        that leader's WAL (authenticating
//                                        as follow-principal, default
//                                        admin); acks=quorum makes a leader
//                                        ack ADD_EXECUTION only after a
//                                        follower confirmed it durable
//                                        (waiting at most quorum-ms,
//                                        default 5000). trace-sample=N
//                                        records every Nth trace in the
//                                        span flight recorder (1 = all;
//                                        slow/error requests always
//                                        record). Runs until SIGINT.
//   pawctl connect <host:port> [user=NAME] [metrics [--raw|--watch=N]]
//                  [trace [--id=HEX|--slow|--errors] [--max=N]]
//                  [audit [--max=N]]
//                  [lineage=SPEC [ordinal=N] [item=N]]
//                                        HELLO + AUTH + STATUS round trip;
//                                        with `metrics`, fetch the METRICS
//                                        snapshot instead and pretty-print
//                                        per-opcode counts, p50/p90/p99
//                                        latencies, and WAL / compaction /
//                                        queue metrics (--raw dumps the
//                                        Prometheus text exposition,
//                                        --watch=N re-polls every N
//                                        seconds and prints changed series
//                                        as deltas/rates); with `trace`,
//                                        fetch the span flight recorder
//                                        (TRACE_DUMP, admin only) and
//                                        render per-trace span trees
//                                        (--slow / --errors keep flagged
//                                        traces, --id=HEX one trace); with
//                                        `audit`, list privacy audit
//                                        events (verdict, principal,
//                                        masked counts); with
//                                        `lineage=SPEC`, run one LINEAGE
//                                        query for run `ordinal`'s item
//                                        `item` rendered through the authed
//                                        principal's privacy view (repeats
//                                        hit the server's view cache)
//   pawctl put <host:port> <spec.paw> [runs=N] [user=NAME] [pipeline=N]
//              [policy=FILE]            remote ingest: store the spec, then
//                                        run N executions through pipelined
//                                        ADD_EXECUTION (window pipeline=N)
//   pawctl query <host:port> <term> [term ...] [user=NAME]
//                                        keyword search as the principal
//
// open/status/ingest/compact/migrate auto-detect whether <dir> is a
// single-directory or a sharded store.

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <deque>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/client/paw_client.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/provenance/executor.h"
#include "src/provenance/serialize.h"
#include "src/query/keyword_search.h"
#include "src/repo/disease.h"
#include "src/server/server.h"
#include "src/store/lock_file.h"
#include "src/store/persistent_repository.h"
#include "src/store/record.h"
#include "src/store/sharded_repository.h"
#include "src/store/snapshot.h"
#include "src/workflow/hierarchy.h"
#include "src/workflow/serialize.h"
#include "src/workflow/view.h"

using namespace paw;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Result<Specification> LoadSpec(const char* path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(std::string("cannot open ") + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseSpecification(buffer.str());
}

int CmdDemo() {
  auto spec = BuildDiseaseSpec();
  if (!spec.ok()) return Fail(spec.status());
  std::fputs(Serialize(spec.value()).c_str(), stdout);
  return 0;
}

int CmdValidate(const char* path) {
  auto spec = LoadSpec(path);
  if (!spec.ok()) return Fail(spec.status());
  std::printf("OK: %s (%d workflows, %d modules)\n",
              spec.value().name().c_str(), spec.value().num_workflows(),
              spec.value().num_modules());
  return 0;
}

int CmdShow(const char* path) {
  auto spec = LoadSpec(path);
  if (!spec.ok()) return Fail(spec.status());
  ExpansionHierarchy h = ExpansionHierarchy::Build(spec.value());
  std::printf("spec \"%s\"\n", spec.value().name().c_str());
  for (const Workflow& w : spec.value().workflows()) {
    std::printf("%*s%s \"%s\" level=%d\n", 2 * h.Depth(w.id), "",
                w.code.c_str(), w.name.c_str(), w.required_level);
    for (ModuleId mid : w.modules) {
      const Module& m = spec.value().module(mid);
      std::printf("%*s  %-5s %-30s", 2 * h.Depth(w.id), "",
                  m.code.c_str(), m.name.c_str());
      if (m.kind == ModuleKind::kComposite) {
        std::printf(" -> %s",
                    spec.value().workflow(m.expansion).code.c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}

// Placeholder bindings "<label><suffix>" for every root-input label.
ValueMap DefaultInputs(const Specification& spec,
                       const std::string& suffix = "") {
  ValueMap inputs;
  for (ModuleId mid : spec.workflow(spec.root()).modules) {
    if (spec.module(mid).kind != ModuleKind::kInput) continue;
    for (const DataflowEdge* e : spec.OutEdges(mid)) {
      for (const std::string& label : e->labels) {
        inputs[label] = "<" + label + suffix + ">";
      }
    }
  }
  return inputs;
}

int CmdRun(const char* path, int argc, char** argv) {
  auto spec = LoadSpec(path);
  if (!spec.ok()) return Fail(spec.status());
  // Inputs: defaults for every root-input label, overridden by k=v args.
  ValueMap inputs = DefaultInputs(spec.value());
  for (int i = 0; i < argc; ++i) {
    const char* eq = std::strchr(argv[i], '=');
    if (eq == nullptr) {
      std::fprintf(stderr, "error: input must be label=value: %s\n",
                   argv[i]);
      return 1;
    }
    inputs[std::string(argv[i], static_cast<size_t>(eq - argv[i]))] =
        eq + 1;
  }
  FunctionRegistry fns;
  auto exec = Execute(spec.value(), fns, inputs);
  if (!exec.ok()) return Fail(exec.status());
  std::fputs(SerializeExecution(exec.value()).c_str(), stdout);
  return 0;
}

int CmdSearch(const char* path, const char* level_str, int argc,
              char** argv) {
  auto spec = LoadSpec(path);
  if (!spec.ok()) return Fail(spec.status());
  AccessLevel level = std::atoi(level_str);
  std::vector<std::string> terms;
  for (int i = 0; i < argc; ++i) terms.emplace_back(argv[i]);
  ExpansionHierarchy h = ExpansionHierarchy::Build(spec.value());
  auto minimal = MinimalCoveringPrefixes(spec.value(), h, terms, level);
  if (!minimal.ok()) return Fail(minimal.status());
  if (minimal.value().empty()) {
    std::printf("no view at level %d covers the query\n", level);
    return 0;
  }
  for (const Prefix& p : minimal.value()) {
    std::printf("minimal view {");
    for (WorkflowId w : p) {
      std::printf(" %s", spec.value().workflow(w).code.c_str());
    }
    std::printf(" }:\n");
    auto view = ExpandPrefix(spec.value(), h, p);
    if (!view.ok()) return Fail(view.status());
    for (const std::string& term : terms) {
      for (ModuleId m : MatchingModules(spec.value(), view.value(), term)) {
        std::printf("  '%s' matched by %s \"%s\"\n", term.c_str(),
                    spec.value().module(m).code.c_str(),
                    spec.value().module(m).name.c_str());
      }
    }
  }
  return 0;
}

/// Parses a `key=value` string option into `*out`; `*matched` says
/// whether the key was present at all.
bool ParseStrOption(const char* arg, const char* key, std::string* out,
                    bool* matched) {
  const size_t key_len = std::strlen(key);
  *matched = std::strncmp(arg, key, key_len) == 0 && arg[key_len] == '=';
  if (!*matched) return true;
  *out = arg + key_len + 1;
  return true;
}

/// Parses a `codec=binary|text` option into `*codec`.
bool ParseCodecOption(const char* arg, PayloadCodec* codec, bool* matched) {
  std::string v;
  ParseStrOption(arg, "codec", &v, matched);
  if (!*matched) return true;
  if (v == "binary") {
    *codec = PayloadCodec::kBinary;
  } else if (v == "text") {
    *codec = PayloadCodec::kText;
  } else {
    std::fprintf(stderr, "error: codec must be binary or text: %s\n", arg);
    return false;
  }
  return true;
}

/// Parses a `key=N` option into `*out`; returns false (with a message)
/// when `arg` has the key but a value outside `[lo, hi]`. `*matched`
/// says whether the key was present at all.
bool ParseIntOption(const char* arg, const char* key, long lo, long hi,
                    long* out, bool* matched) {
  const size_t key_len = std::strlen(key);
  *matched = std::strncmp(arg, key, key_len) == 0 && arg[key_len] == '=';
  if (!*matched) return true;
  char* end = nullptr;
  long parsed = std::strtol(arg + key_len + 1, &end, 10);
  if (end == arg + key_len + 1 || *end != '\0' || parsed < lo ||
      parsed > hi) {
    std::fprintf(stderr, "error: %s must be an integer in [%ld, %ld]: %s\n",
                 key, lo, hi, arg);
    return false;
  }
  *out = parsed;
  return true;
}

void PrintStoreStats(const PersistentRepository& store) {
  const auto& r = store.recovery();
  std::printf("store %s\n", store.dir().c_str());
  std::printf("  format:      v%d (%s payloads)\n", store.format_version(),
              store.format_version() >= 2 ? "binary-capable" : "text");
  std::printf("  specs:       %d\n", store.repo().num_specs());
  std::printf("  executions:  %d\n", store.repo().num_executions());
  std::printf("  lsn:         %llu\n",
              static_cast<unsigned long long>(store.lsn()));
  std::printf("  wal suffix:  %llu record(s) past snapshot lsn %llu\n",
              static_cast<unsigned long long>(store.records_since_snapshot()),
              static_cast<unsigned long long>(r.snapshot_lsn));
  std::printf("  segments:    %d live (active seq %llu)%s\n",
              r.wal_segments,
              static_cast<unsigned long long>(store.wal().active_seq()),
              r.stale_segments_removed > 0 ? " [stale reclaimed]" : "");
  std::printf("  approx mem:  %lld bytes\n",
              static_cast<long long>(store.repo().ApproxBytes()));
  std::printf("  recovery:    %llu replayed, %llu skipped\n",
              static_cast<unsigned long long>(r.records_replayed),
              static_cast<unsigned long long>(r.records_skipped));
  if (r.torn_tail) {
    std::printf("  torn tail:   dropped %llu byte(s): %s\n",
                static_cast<unsigned long long>(r.dropped_bytes),
                r.tail_error.c_str());
  }
}

void PrintShardedStats(const ShardedRepository& store) {
  const auto& r = store.recovery();
  std::printf("sharded store %s\n", store.dir().c_str());
  std::printf("  shards:      %d\n", store.num_shards());
  std::printf("  epoch:       %llu\n",
              static_cast<unsigned long long>(store.epoch()));
  std::printf("  specs:       %d\n", store.num_specs());
  std::printf("  executions:  %d\n", store.num_executions());
  std::printf("  recovery:    %llu replayed, %llu skipped (%d thread(s))\n",
              static_cast<unsigned long long>(r.records_replayed),
              static_cast<unsigned long long>(r.records_skipped), r.threads);
  if (r.torn_shards > 0) {
    std::printf("  torn tails:  %d shard(s), %llu byte(s) dropped\n",
                r.torn_shards,
                static_cast<unsigned long long>(r.dropped_bytes));
  }
  for (int i = 0; i < store.num_shards(); ++i) {
    const PersistentRepository& shard = store.shard(i);
    std::printf("  %s: %d spec(s), %d execution(s), lsn %llu (global %llu)%s\n",
                ShardedRepository::ShardDirName(i).c_str(),
                shard.repo().num_specs(), shard.repo().num_executions(),
                static_cast<unsigned long long>(shard.lsn()),
                static_cast<unsigned long long>(
                    ShardedRepository::EpochLsn(store.epoch(), shard.lsn())),
                shard.recovery().torn_tail ? " [torn tail repaired]" : "");
  }
}

int CmdInit(const char* dir, int argc, char** argv) {
  long shards = 0;
  StoreOptions options;
  for (int i = 0; i < argc; ++i) {
    bool matched = false;
    if (!ParseIntOption(argv[i], "shards", 1, ShardedRepository::kMaxShards,
                        &shards, &matched)) {
      return 1;
    }
    if (matched) continue;
    if (!ParseCodecOption(argv[i], &options.codec, &matched)) return 1;
    if (!matched) {
      std::fprintf(stderr, "error: unknown init option %s\n", argv[i]);
      return 1;
    }
  }
  const char* codec_name =
      options.codec == PayloadCodec::kBinary ? "binary" : "text";
  if (shards > 0) {
    auto store =
        ShardedRepository::Init(dir, static_cast<int>(shards), options);
    if (!store.ok()) return Fail(store.status());
    std::printf(
        "initialized empty sharded store in %s (%ld shard(s), %s codec)\n",
        dir, shards, codec_name);
    return 0;
  }
  auto store = PersistentRepository::Init(dir, options);
  if (!store.ok()) return Fail(store.status());
  std::printf("initialized empty store in %s (%s codec)\n", dir,
              codec_name);
  return 0;
}

/// Parses the optional `threads=N` argument shared by open/compact.
int ParseThreads(int argc, char** argv, long* threads) {
  for (int i = 0; i < argc; ++i) {
    bool matched = false;
    if (!ParseIntOption(argv[i], "threads", 1, 256, threads, &matched)) {
      return 1;
    }
    if (!matched) {
      std::fprintf(stderr, "error: unknown option %s\n", argv[i]);
      return 1;
    }
  }
  return 0;
}

int CmdOpen(const char* dir, int argc, char** argv) {
  long threads = 1;
  if (int rc = ParseThreads(argc, argv, &threads); rc != 0) return rc;
  if (ShardedRepository::IsShardedStore(dir)) {
    auto store = ShardedRepository::Open(dir, {}, static_cast<int>(threads));
    if (!store.ok()) return Fail(store.status());
    PrintShardedStats(store.value());
    return 0;
  }
  auto store = PersistentRepository::Open(dir);
  if (!store.ok()) return Fail(store.status());
  PrintStoreStats(store.value());
  return 0;
}

/// Prints segment/LSN/manifest state of one store directory from the
/// files alone — no recovery, no replay, no manifest mutation, so it
/// is safe to run against a store another process has open (the
/// answer is a snapshot, racing writers may move it).
int PrintDirStatus(const std::string& dir, const char* indent) {
  auto marker = ReadFileToString(dir + "/PAWSTORE");
  if (marker.ok()) {
    std::string m = marker.value();
    while (!m.empty() && m.back() == '\n') m.pop_back();
    std::printf("%sformat:    %s\n", indent, m.c_str());
  }
  auto snapshot = FindLatestSnapshot(dir);
  if (snapshot.ok()) {
    auto bytes = ReadFileToString(snapshot.value().path);
    std::string age;
    struct stat st;
    if (::stat(snapshot.value().path.c_str(), &st) == 0) {
      age = ", age " +
            std::to_string(
                static_cast<long long>(::time(nullptr) - st.st_mtime)) +
            "s";
    }
    std::printf("%ssnapshot:  lsn %llu (%zu bytes%s)\n", indent,
                static_cast<unsigned long long>(snapshot.value().lsn),
                bytes.ok() ? bytes.value().size() : size_t{0}, age.c_str());
  } else {
    std::printf("%ssnapshot:  none\n", indent);
  }
  auto manifest = ReadWalManifest(dir);
  if (manifest.ok()) {
    std::printf("%smanifest:  first=%llu\n", indent,
                static_cast<unsigned long long>(manifest.value()));
  } else {
    std::printf("%smanifest:  %s\n", indent,
                manifest.status().IsNotFound() ? "missing (legacy layout?)"
                                               : "corrupt");
  }
  auto segments = ListWalSegments(dir);
  if (!segments.ok()) return Fail(segments.status());
  uint64_t total_records = 0;
  size_t total_bytes = 0;
  for (size_t i = 0; i < segments.value().size(); ++i) {
    const WalSegmentFile& segment = segments.value()[i];
    // Parse the segment header (base LSN) and count whole records.
    auto contents = ReadFileToString(segment.path);
    if (!contents.ok()) return Fail(contents.status());
    RecordReader reader(contents.value());
    Record record;
    uint64_t base = 0;
    uint64_t records = 0;
    bool header_ok = false;
    if (reader.Next(&record) == ReadOutcome::kRecord &&
        record.type == RecordType::kWalHeader) {
      size_t pos = 0;
      header_ok = GetFixed64(record.payload, &pos, &base);
    }
    while (reader.Next(&record) == ReadOutcome::kRecord) ++records;
    total_records += records;
    total_bytes += contents.value().size();
    std::printf(
        "%swal-%08llu: base %llu, %llu record(s), %zu bytes%s%s%s\n",
        indent, static_cast<unsigned long long>(segment.seq),
        static_cast<unsigned long long>(base),
        static_cast<unsigned long long>(records), contents.value().size(),
        i + 1 == segments.value().size() ? " [active]" : " [sealed]",
        header_ok ? "" : " [bad header]",
        reader.dropped_bytes() > 0 ? " [torn tail]" : "");
  }
  // Disk-metric roll-up: what a monitoring check wants in one line.
  std::printf("%sdisk:      %zu segment(s), %zu WAL bytes, %llu "
              "record(s) past snapshot\n",
              indent, segments.value().size(), total_bytes,
              static_cast<unsigned long long>(total_records));
  if (segments.value().empty() && PathExists(dir + "/wal.log")) {
    std::printf("%swal.log:   legacy single-file layout (upgrades on "
                "next open)\n",
                indent);
  }
  return 0;
}

/// Warns when a live process (typically a `pawd`) holds the store-dir
/// lock. Status itself stays read-only-safe, but mutating commands
/// would refuse, and the numbers below are a racing snapshot.
void WarnIfLocked(const char* dir) {
  auto probe = StoreDirLock::Probe(dir);
  if (probe.ok() && probe.value().held) {
    if (probe.value().holder_pid > 0) {
      std::printf(
          "  lock:      HELD by live pid %lld (a pawd or other writer; "
          "read-only snapshot below)\n",
          probe.value().holder_pid);
    } else {
      std::printf("  lock:      HELD by a live process (read-only "
                  "snapshot below)\n");
    }
  }
}

int CmdStatus(const char* dir) {
  if (ShardedRepository::IsShardedStore(dir)) {
    auto manifest = ReadShardManifest(dir);
    if (!manifest.ok()) return Fail(manifest.status());
    std::printf("sharded store %s\n", dir);
    WarnIfLocked(dir);
    std::printf("  shards:    %d\n", manifest.value().shards);
    std::printf("  epoch:     %llu\n",
                static_cast<unsigned long long>(manifest.value().epoch));
    for (int i = 0; i < manifest.value().shards; ++i) {
      const std::string shard_dir =
          std::string(dir) + "/" + ShardedRepository::ShardDirName(i);
      std::printf("  %s:\n", ShardedRepository::ShardDirName(i).c_str());
      if (int rc = PrintDirStatus(shard_dir, "    "); rc != 0) return rc;
    }
    return 0;
  }
  if (!PathExists(std::string(dir) + "/PAWSTORE")) {
    return Fail(Status::NotFound(std::string(dir) + " is not a paw store"));
  }
  std::printf("store %s\n", dir);
  WarnIfLocked(dir);
  return PrintDirStatus(dir, "  ");
}

/// Runs `runs` executions of `spec` through `add_exec` (shared by the
/// single and sharded ingest paths). Inputs are varied per run so
/// repeated ingests do not produce identical provenance.
template <typename AddExec>
int RunIngest(const Specification& spec, int runs, AddExec&& add_exec) {
  FunctionRegistry fns;
  for (int i = 0; i < runs; ++i) {
    std::string suffix = "#";
    suffix += std::to_string(i);
    ValueMap inputs = DefaultInputs(spec, suffix);
    auto exec = Execute(spec, fns, inputs);
    if (!exec.ok()) return Fail(exec.status());
    auto eid = add_exec(std::move(exec).value());
    if (!eid.ok()) return Fail(eid.status());
  }
  return 0;
}

int CmdIngestSharded(const char* dir, Specification parsed, int runs,
                     long threads, StoreOptions options) {
  // threads > 1 also sizes the writer pool, so appends drain through
  // the per-shard queues instead of blocking the caller thread.
  if (threads > 1) options.writer_threads = static_cast<int>(threads);
  auto store =
      ShardedRepository::Open(dir, options, static_cast<int>(threads));
  if (!store.ok()) return Fail(store.status());
  // Reuse a previously ingested spec of the same name, else store it.
  ShardedRepository::SpecRef ref;
  auto existing = store.value().FindSpec(parsed.name());
  if (existing.ok()) {
    ref = existing.value();
    std::printf("spec \"%s\" already stored as %s id %d\n",
                parsed.name().c_str(),
                ShardedRepository::ShardDirName(ref.shard).c_str(), ref.id);
  } else {
    auto added = store.value().AddSpecification(std::move(parsed));
    if (!added.ok()) return Fail(added.status());
    ref = added.value();
    std::printf("stored spec as %s id %d\n",
                ShardedRepository::ShardDirName(ref.shard).c_str(), ref.id);
  }
  const Specification& spec =
      store.value().shard(ref.shard).repo().entry(ref.id).spec;
  if (threads > 1) {
    // Pipeline through the async writer queues: keep a window of
    // outstanding appends so the drain can batch them (one buffered
    // write + one group fsync per batch under sync=each) while the
    // caller thread generates the next executions. Every future is
    // checked — including the tail drained after the pipeline window
    // closes — so a queued append that fails late (e.g. a poisoned
    // WAL after an I/O error) still turns into a nonzero exit.
    constexpr size_t kMaxWindow = 512;
    FunctionRegistry fns;
    std::deque<StoreFuture<ExecutionId>> window;
    size_t failed = 0;
    Status first_error;
    auto reap_front = [&] {
      Status status = window.front().get().status();
      window.pop_front();
      if (!status.ok()) {
        ++failed;
        if (first_error.ok()) first_error = status;
      }
    };
    for (int i = 0; i < runs && failed == 0; ++i) {
      std::string suffix = "#";
      suffix += std::to_string(i);
      auto exec = Execute(spec, fns, DefaultInputs(spec, suffix));
      if (!exec.ok()) {
        while (!window.empty()) reap_front();
        return Fail(exec.status());
      }
      window.push_back(
          store.value().AddExecutionAsync(ref, std::move(exec).value()));
      if (window.size() >= kMaxWindow) reap_front();
    }
    while (!window.empty()) reap_front();
    if (failed > 0) {
      std::fprintf(
          stderr,
          "error: %zu queued append(s) failed (sticky store error; "
          "first failure: %s)\n",
          failed, first_error.ToString().c_str());
      return 1;
    }
  } else if (int rc = RunIngest(spec, runs, [&](Execution exec) {
               return store.value().AddExecution(ref, std::move(exec));
             });
             rc != 0) {
    return rc;
  }
  auto synced = store.value().Sync();
  if (!synced.ok()) return Fail(synced);
  if (Status s = store.value().WaitForCompaction(); !s.ok()) {
    return Fail(s);
  }
  std::printf(
      "ingested %d execution(s); %s lsn now %llu (epoch %llu, global %llu)\n",
      runs, ShardedRepository::ShardDirName(ref.shard).c_str(),
      static_cast<unsigned long long>(store.value().shard(ref.shard).lsn()),
      static_cast<unsigned long long>(store.value().epoch()),
      static_cast<unsigned long long>(ShardedRepository::EpochLsn(
          store.value().epoch(), store.value().shard(ref.shard).lsn())));
  return 0;
}

int CmdIngest(const char* dir, const char* path, int argc, char** argv) {
  long runs = 1;
  long threads = 1;
  StoreOptions options;
  for (int i = 0; i < argc; ++i) {
    bool matched = false;
    if (!ParseIntOption(argv[i], "runs", 0, 1000000, &runs, &matched)) {
      return 1;
    }
    if (matched) continue;
    if (!ParseIntOption(argv[i], "threads", 1, 256, &threads, &matched)) {
      return 1;
    }
    if (matched) continue;
    std::string sync;
    ParseStrOption(argv[i], "sync", &sync, &matched);
    if (matched) {
      if (sync == "each") {
        options.sync_each_append = true;
      } else if (sync == "batch") {
        options.sync_each_append = false;
      } else {
        std::fprintf(stderr, "error: sync must be each or batch: %s\n",
                     argv[i]);
        return 1;
      }
      continue;
    }
    if (!ParseCodecOption(argv[i], &options.codec, &matched)) return 1;
    if (matched) continue;
    long segbytes = 0;
    if (!ParseIntOption(argv[i], "segbytes", 1, 1L << 30, &segbytes,
                        &matched)) {
      return 1;
    }
    if (matched) {
      options.segment_bytes = static_cast<uint64_t>(segbytes);
      continue;
    }
    long every = 0;
    if (!ParseIntOption(argv[i], "every", 1, 1000000, &every, &matched)) {
      return 1;
    }
    if (matched) {
      options.snapshot_every = static_cast<uint64_t>(every);
      continue;
    }
    std::string compact_mode;
    ParseStrOption(argv[i], "compact", &compact_mode, &matched);
    if (matched) {
      if (compact_mode == "background") {
        options.background_compaction = true;
      } else if (compact_mode == "inline") {
        options.background_compaction = false;
      } else {
        std::fprintf(stderr,
                     "error: compact must be background or inline: %s\n",
                     argv[i]);
        return 1;
      }
      continue;
    }
    std::fprintf(stderr, "error: unknown ingest option %s\n", argv[i]);
    return 1;
  }
  auto parsed = LoadSpec(path);
  if (!parsed.ok()) return Fail(parsed.status());
  if (ShardedRepository::IsShardedStore(dir)) {
    return CmdIngestSharded(dir, std::move(parsed).value(),
                            static_cast<int>(runs), threads, options);
  }

  auto store = PersistentRepository::Open(dir, options);
  if (!store.ok()) return Fail(store.status());
  // Reuse a previously ingested spec of the same name, else store it.
  int spec_id;
  auto existing = store.value().repo().FindSpec(parsed.value().name());
  if (existing.ok()) {
    spec_id = existing.value();
    std::printf("spec \"%s\" already stored as id %d\n",
                parsed.value().name().c_str(), spec_id);
  } else {
    auto added =
        store.value().AddSpecification(std::move(parsed).value());
    if (!added.ok()) return Fail(added.status());
    spec_id = added.value();
    std::printf("stored spec as id %d\n", spec_id);
  }

  const Specification& spec = store.value().repo().entry(spec_id).spec;
  if (int rc = RunIngest(spec, static_cast<int>(runs), [&](Execution exec) {
        return store.value().AddExecution(spec_id, std::move(exec));
      });
      rc != 0) {
    return rc;
  }
  auto synced = store.value().Sync();
  if (!synced.ok()) return Fail(synced);
  if (Status s = store.value().WaitForCompaction(); !s.ok()) {
    return Fail(s);
  }
  std::printf("ingested %ld execution(s) of spec %d; store lsn now %llu\n",
              runs, spec_id,
              static_cast<unsigned long long>(store.value().lsn()));
  return 0;
}

int CmdCompact(const char* dir, int argc, char** argv) {
  long threads = 1;
  bool background = false;
  for (int i = 0; i < argc; ++i) {
    bool matched = false;
    if (!ParseIntOption(argv[i], "threads", 1, 256, &threads, &matched)) {
      return 1;
    }
    if (matched) continue;
    std::string mode;
    ParseStrOption(argv[i], "mode", &mode, &matched);
    if (matched) {
      if (mode == "background") {
        background = true;
      } else if (mode == "inline") {
        background = false;
      } else {
        std::fprintf(stderr,
                     "error: mode must be background or inline: %s\n",
                     argv[i]);
        return 1;
      }
      continue;
    }
    std::fprintf(stderr, "error: unknown compact option %s\n", argv[i]);
    return 1;
  }
  const char* mode_name = background ? "background" : "inline";
  if (ShardedRepository::IsShardedStore(dir)) {
    auto store = ShardedRepository::Open(dir, {}, static_cast<int>(threads));
    if (!store.ok()) return Fail(store.status());
    uint64_t before = 0;
    for (int i = 0; i < store.value().num_shards(); ++i) {
      before += store.value().shard(i).records_since_snapshot();
    }
    if (background) {
      // The cut is non-blocking (appends could continue right after
      // CompactAsync returns); the CLI then waits so its exit code
      // reflects the snapshot workers' outcome.
      if (Status s = store.value().CompactAsync(); !s.ok()) return Fail(s);
      if (Status s = store.value().WaitForCompaction(); !s.ok()) {
        return Fail(s);
      }
    } else if (Status s = store.value().Compact(static_cast<int>(threads));
               !s.ok()) {
      return Fail(s);
    }
    std::printf(
        "compacted %s (%s): folded %llu record(s) into %d shard "
        "snapshot(s) (%ld thread(s))\n",
        dir, mode_name, static_cast<unsigned long long>(before),
        store.value().num_shards(), threads);
    return 0;
  }
  auto store = PersistentRepository::Open(dir);
  if (!store.ok()) return Fail(store.status());
  const uint64_t before = store.value().records_since_snapshot();
  if (background) {
    if (Status s = store.value().CompactAsync(); !s.ok()) return Fail(s);
    if (Status s = store.value().WaitForCompaction(); !s.ok()) {
      return Fail(s);
    }
  } else if (Status s = store.value().Compact(); !s.ok()) {
    return Fail(s);
  }
  std::printf(
      "compacted %s (%s): folded %llu record(s) into snapshot lsn %llu\n",
      dir, mode_name, static_cast<unsigned long long>(before),
      static_cast<unsigned long long>(store.value().lsn()));
  return 0;
}

int CmdMigrate(const char* dir, int argc, char** argv) {
  long threads = 1;
  if (int rc = ParseThreads(argc, argv, &threads); rc != 0) return rc;
  // Opening with the (default) binary codec bumps a v1 marker to v2;
  // compacting then re-encodes every record into a binary snapshot and
  // truncates the text WAL — after which no v1 payload remains on disk.
  if (ShardedRepository::IsShardedStore(dir)) {
    auto store = ShardedRepository::Open(dir, {}, static_cast<int>(threads));
    if (!store.ok()) return Fail(store.status());
    const int entries =
        store.value().num_specs() + store.value().num_executions();
    auto compacted = store.value().Compact(static_cast<int>(threads));
    if (!compacted.ok()) return Fail(compacted);
    std::printf(
        "migrated sharded store %s to format v2: re-encoded %d "
        "entries into %d binary shard snapshot(s)\n",
        dir, entries, store.value().num_shards());
    return 0;
  }
  auto store = PersistentRepository::Open(dir);
  if (!store.ok()) return Fail(store.status());
  const int entries = store.value().repo().num_specs() +
                      store.value().repo().num_executions();
  auto compacted = store.value().Compact();
  if (!compacted.ok()) return Fail(compacted);
  std::printf(
      "migrated store %s to format v2: re-encoded %d entries into a "
      "binary snapshot\n",
      dir, entries);
  return 0;
}

// ---------------------------------------------------------------------------
// Server / client commands
// ---------------------------------------------------------------------------

volatile std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int) { g_stop_requested = 1; }

/// Parses "name:level[:group]" into a ServerPrincipal.
bool ParsePrincipalSpec(const std::string& text, ServerPrincipal* out) {
  const size_t first = text.find(':');
  if (first == std::string::npos || first == 0) return false;
  out->name = text.substr(0, first);
  const size_t second = text.find(':', first + 1);
  const std::string level_str =
      second == std::string::npos
          ? text.substr(first + 1)
          : text.substr(first + 1, second - first - 1);
  char* end = nullptr;
  const long level = std::strtol(level_str.c_str(), &end, 10);
  if (end == level_str.c_str() || *end != '\0') return false;
  out->level = static_cast<AccessLevel>(level);
  out->group = second == std::string::npos ? "" : text.substr(second + 1);
  return true;
}

bool ParseHostPort(const std::string& text, std::string* host, int* port);

int CmdServe(const char* dir, int argc, char** argv) {
  ServerOptions options;
  options.store.sync_each_append = true;  // acked => durable
  long shards = 0;
  long writers = 4;
  long workers = 4;
  long threads = 4;
  std::vector<ServerPrincipal> principals;
  for (int i = 0; i < argc; ++i) {
    bool matched = false;
    long port = 0;
    if (!ParseIntOption(argv[i], "port", 0, 65535, &port, &matched)) {
      return 1;
    }
    if (matched) {
      options.port = static_cast<int>(port);
      continue;
    }
    std::string bind;
    ParseStrOption(argv[i], "bind", &bind, &matched);
    if (matched) {
      options.bind_address = bind;
      continue;
    }
    if (!ParseIntOption(argv[i], "shards", 1, ShardedRepository::kMaxShards,
                        &shards, &matched)) {
      return 1;
    }
    if (matched) continue;
    if (!ParseIntOption(argv[i], "writers", 0, 256, &writers, &matched)) {
      return 1;
    }
    if (matched) continue;
    if (!ParseIntOption(argv[i], "workers", 1, 256, &workers, &matched)) {
      return 1;
    }
    if (matched) continue;
    if (!ParseIntOption(argv[i], "threads", 1, 256, &threads, &matched)) {
      return 1;
    }
    if (matched) continue;
    long idle = 0;
    if (!ParseIntOption(argv[i], "idle", 0, 86400000, &idle, &matched)) {
      return 1;
    }
    if (matched) {
      options.idle_timeout_ms = static_cast<int>(idle);
      continue;
    }
    long admin = 0;
    if (!ParseIntOption(argv[i], "admin", 0, 1000000, &admin, &matched)) {
      return 1;
    }
    if (matched) {
      options.admin_level = static_cast<AccessLevel>(admin);
      continue;
    }
    std::string sync;
    ParseStrOption(argv[i], "sync", &sync, &matched);
    if (matched) {
      if (sync == "each") {
        options.store.sync_each_append = true;
      } else if (sync == "batch") {
        options.store.sync_each_append = false;
      } else {
        std::fprintf(stderr, "error: sync must be each or batch: %s\n",
                     argv[i]);
        return 1;
      }
      continue;
    }
    std::string auth;
    ParseStrOption(argv[i], "auth", &auth, &matched);
    if (matched) {
      size_t start = 0;
      while (start <= auth.size()) {
        const size_t comma = auth.find(',', start);
        const std::string one =
            auth.substr(start, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - start);
        ServerPrincipal p;
        if (!ParsePrincipalSpec(one, &p)) {
          std::fprintf(stderr,
                       "error: auth entries are name:level[:group]: %s\n",
                       one.c_str());
          return 1;
        }
        principals.push_back(std::move(p));
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      continue;
    }
    if (std::strcmp(argv[i], "poll") == 0) {
      options.use_poll = true;
      continue;
    }
    std::string viewcache;
    ParseStrOption(argv[i], "viewcache", &viewcache, &matched);
    if (matched) {
      if (viewcache == "on") {
        options.enable_view_cache = true;
      } else if (viewcache == "off") {
        options.enable_view_cache = false;
      } else {
        std::fprintf(stderr, "error: viewcache must be on or off: %s\n",
                     argv[i]);
        return 1;
      }
      continue;
    }
    long viewcache_mb = 0;
    if (!ParseIntOption(argv[i], "viewcache-mb", 1, 1 << 20,
                        &viewcache_mb, &matched)) {
      return 1;
    }
    if (matched) {
      options.view_cache_bytes =
          static_cast<size_t>(viewcache_mb) << 20;
      continue;
    }
    std::string follow;
    ParseStrOption(argv[i], "follow", &follow, &matched);
    if (matched) {
      if (!ParseHostPort(follow, &options.follow_host,
                         &options.follow_port)) {
        std::fprintf(stderr, "error: follow must be host:port: %s\n",
                     argv[i]);
        return 1;
      }
      continue;
    }
    std::string follow_principal;
    ParseStrOption(argv[i], "follow-principal", &follow_principal,
                   &matched);
    if (matched) {
      options.follow_principal = follow_principal;
      continue;
    }
    std::string acks;
    ParseStrOption(argv[i], "acks", &acks, &matched);
    if (matched) {
      if (acks == "local") {
        options.quorum_acks = false;
      } else if (acks == "quorum") {
        options.quorum_acks = true;
      } else {
        std::fprintf(stderr, "error: acks must be local or quorum: %s\n",
                     argv[i]);
        return 1;
      }
      continue;
    }
    long quorum_ms = 0;
    if (!ParseIntOption(argv[i], "quorum-ms", 1, 3600000, &quorum_ms,
                        &matched)) {
      return 1;
    }
    if (matched) {
      options.quorum_timeout_ms = static_cast<int>(quorum_ms);
      continue;
    }
    long trace_sample = 0;
    if (!ParseIntOption(argv[i], "trace-sample", 1, 1L << 30,
                        &trace_sample, &matched)) {
      return 1;
    }
    if (matched) {
      options.trace_sample_n = static_cast<uint32_t>(trace_sample);
      continue;
    }
    std::fprintf(stderr, "error: unknown serve option %s\n", argv[i]);
    return 1;
  }
  if (options.quorum_acks && !options.follow_host.empty()) {
    std::fprintf(stderr,
                 "error: acks=quorum is a leader option; a follower "
                 "(follow=...) takes no writes\n");
    return 1;
  }

  // Create the store on first serve of an empty directory. For an
  // existing store the on-disk layout wins: shards=N cannot re-shard,
  // so a mismatch is reported rather than silently ignored.
  const bool exists = ShardedRepository::IsShardedStore(dir) ||
                      PathExists(std::string(dir) + "/PAWSTORE");
  if (exists && shards > 0) {
    int on_disk = 0;
    if (auto manifest = ReadShardManifest(dir); manifest.ok()) {
      on_disk = manifest.value().shards;
    }
    if (on_disk != shards) {
      std::fprintf(stderr,
                   "warning: %s already holds a %s store; shards=%ld "
                   "ignored (the layout is fixed at init)\n",
                   dir,
                   on_disk > 0
                       ? (std::to_string(on_disk) + "-shard").c_str()
                       : "single-directory",
                   shards);
    }
  }
  if (!exists) {
    if (shards > 0) {
      auto init = ShardedRepository::Init(dir, static_cast<int>(shards));
      if (!init.ok()) return Fail(init.status());
      std::printf("initialized sharded store in %s (%ld shards)\n", dir,
                  shards);
    } else {
      auto init = PersistentRepository::Init(dir);
      if (!init.ok()) return Fail(init.status());
      std::printf("initialized store in %s\n", dir);
    }
  }

  options.worker_threads = static_cast<int>(workers);
  options.open_threads = static_cast<int>(threads);
  options.store.writer_threads = static_cast<int>(writers);
  options.principals = std::move(principals);

  const std::string role =
      options.follow_host.empty()
          ? (options.quorum_acks ? "leader, acks=quorum" : "leader")
          : "follower of " + options.follow_host + ":" +
                std::to_string(options.follow_port);
  auto server = PawServer::Start(dir, std::move(options));
  if (!server.ok()) return Fail(server.status());
  std::printf("pawd listening on port %d (store %s, %s)\n",
              server.value()->port(), dir, role.c_str());
  std::fflush(stdout);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  // Poll the flag rather than pause(): the kernel may deliver the
  // signal to any of the server's threads, in which case pause() on
  // this one would never return.
  while (g_stop_requested == 0) {
    usleep(50 * 1000);
  }
  std::printf("pawd: shutting down\n");
  server.value()->Stop();
  return 0;
}

/// Splits "host:port"; returns false on malformed input.
bool ParseHostPort(const std::string& text, std::string* host, int* port) {
  const size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  *host = text.substr(0, colon);
  char* end = nullptr;
  const long parsed = std::strtol(text.c_str() + colon + 1, &end, 10);
  if (end == text.c_str() + colon + 1 || *end != '\0' || parsed < 1 ||
      parsed > 65535) {
    return false;
  }
  *port = static_cast<int>(parsed);
  return true;
}

/// Shared tail-arg parse for the client commands: user=NAME plus any
/// command-specific int options the caller already consumed.
Result<PawClient> ConnectAndAuth(const std::string& target,
                                 const std::string& user) {
  std::string host;
  int port = 0;
  if (!ParseHostPort(target, &host, &port)) {
    return Status::InvalidArgument("target must be host:port: " + target);
  }
  auto client = PawClient::Connect(host, port);
  if (!client.ok()) return client.status();
  PAW_RETURN_NOT_OK(client.value().Auth(user));
  return client;
}

/// Pretty-prints a metrics snapshot: one line per metric, histograms
/// with count/sum and client-side p50/p90/p99 (so a shell check can
/// awk a percentile straight out of the output). `raw` dumps the
/// Prometheus text exposition instead.
int PrintMetrics(const MetricsSnapshot& snapshot, bool raw) {
  if (raw) {
    std::fputs(RenderPrometheusText(snapshot).c_str(), stdout);
    return 0;
  }
  for (const MetricSample& s : snapshot.samples) {
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        std::printf("%-56s %llu\n", s.name.c_str(),
                    static_cast<unsigned long long>(s.counter));
        break;
      case MetricSample::Kind::kGauge:
        std::printf("%-56s %lld\n", s.name.c_str(),
                    static_cast<long long>(s.gauge));
        break;
      case MetricSample::Kind::kHistogram:
        std::printf(
            "%-56s count=%llu sum=%.6f p50=%.9g p90=%.9g p99=%.9g\n",
            s.name.c_str(),
            static_cast<unsigned long long>(s.histogram.count),
            s.histogram.sum, s.histogram.Quantile(0.5),
            s.histogram.Quantile(0.9), s.histogram.Quantile(0.99));
        break;
    }
  }
  return 0;
}

/// Renders TRACE_DUMP spans as per-trace trees: spans grouped by trace
/// id (in ring order, oldest trace first), children indented under
/// their parent span, audit events folded in as `audit:<verdict>`
/// leaves. Durations are wall micros from the span itself.
void PrintSpanTrees(const std::vector<Span>& spans, uint64_t dropped) {
  if (spans.empty()) {
    std::printf("no spans matched (tip: serve trace-sample=1 records "
                "every request; slow/error requests always record)\n");
    return;
  }
  std::vector<uint64_t> order;
  std::unordered_map<uint64_t, std::vector<const Span*>> traces;
  for (const Span& s : spans) {
    std::vector<const Span*>& bucket = traces[s.trace_id];
    if (bucket.empty()) order.push_back(s.trace_id);
    bucket.push_back(&s);
  }
  for (const uint64_t trace_id : order) {
    const std::vector<const Span*>& members = traces[trace_id];
    std::printf("trace %s  (%zu span%s)\n", TraceIdHex(trace_id).c_str(),
                members.size(), members.size() == 1 ? "" : "s");
    std::unordered_map<uint64_t, std::vector<const Span*>> children;
    std::unordered_map<uint64_t, const Span*> by_id;
    for (const Span* s : members) by_id[s->span_id] = s;
    std::vector<const Span*> roots;
    for (const Span* s : members) {
      if (s->parent_span_id != 0 &&
          by_id.count(s->parent_span_id) != 0 &&
          s->parent_span_id != s->span_id) {
        children[s->parent_span_id].push_back(s);
      } else {
        roots.push_back(s);
      }
    }
    const auto by_start = [](const Span* a, const Span* b) {
      return a->start_us < b->start_us;
    };
    std::sort(roots.begin(), roots.end(), by_start);
    for (auto& [id, kids] : children) {
      std::sort(kids.begin(), kids.end(), by_start);
    }
    const std::function<void(const Span*, int)> emit =
        [&](const Span* s, int depth) {
          std::string label =
              s->kind == SpanKind::kAudit
                  ? "audit:" + std::string(s->name_view())
                  : std::string(s->name_view());
          const int pad = 26 - depth * 2;
          std::printf("  %*s%-*s %9.3fms", depth * 2, "",
                      pad > 0 ? pad : 0, label.c_str(),
                      static_cast<double>(s->end_us - s->start_us) /
                          1000.0);
          if (s->flags & kSpanFlagSlow) std::printf(" [slow]");
          if (s->flags & kSpanFlagError) std::printf(" [err]");
          if (!s->principal_view().empty()) {
            std::printf(" %s", std::string(s->principal_view()).c_str());
          }
          if (s->result_bytes != 0) std::printf(" %uB", s->result_bytes);
          if (!s->detail_view().empty()) {
            std::printf("  %s", std::string(s->detail_view()).c_str());
          }
          std::printf("\n");
          auto it = children.find(s->span_id);
          if (it == children.end()) return;
          for (const Span* kid : it->second) emit(kid, depth + 1);
        };
    for (const Span* root : roots) emit(root, 0);
  }
  if (dropped > 0) {
    std::printf("(%llu older matching span%s dropped by the cap)\n",
                static_cast<unsigned long long>(dropped),
                dropped == 1 ? "" : "s");
  }
}

/// Renders audit events (the privacy audit channel) as a flat table:
/// verdict, principal, opcode, owning trace, structured detail.
void PrintAuditEvents(const std::vector<Span>& spans, uint64_t dropped) {
  if (spans.empty()) {
    std::printf("no audit events recorded\n");
    return;
  }
  std::printf("%-8s %-16s %-14s %-16s %s\n", "VERDICT", "PRINCIPAL",
              "OPCODE", "TRACE", "DETAIL");
  for (const Span& s : spans) {
    const std::string opcode =
        wire::IsValidOpcode(s.opcode)
            ? std::string(
                  wire::OpcodeName(static_cast<wire::Opcode>(s.opcode)))
            : std::to_string(s.opcode);
    std::printf("%-8s %-16s %-14s %-16s %s\n",
                std::string(s.name_view()).c_str(),
                std::string(s.principal_view()).c_str(), opcode.c_str(),
                s.trace_id != 0 ? TraceIdHex(s.trace_id).c_str() : "-",
                std::string(s.detail_view()).c_str());
  }
  if (dropped > 0) {
    std::printf("(%llu older event%s dropped by the cap)\n",
                static_cast<unsigned long long>(dropped),
                dropped == 1 ? "" : "s");
  }
}

/// `connect ... metrics --watch=N`: re-polls METRICS every N seconds
/// and prints only the series that moved — counters and histogram
/// counts as +delta with a per-second rate, gauges as value (+delta).
/// Runs until SIGINT.
int WatchMetrics(PawClient& client, long interval_s) {
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  auto prev = client.Metrics();
  if (!prev.ok()) return Fail(prev.status());
  std::printf("watching metrics every %lds (Ctrl-C to stop); changed "
              "series only, +delta and per-second rates\n",
              interval_s);
  std::fflush(stdout);
  long elapsed = 0;
  while (g_stop_requested == 0) {
    for (long i = 0; i < interval_s * 10 && g_stop_requested == 0; ++i) {
      usleep(100 * 1000);
    }
    if (g_stop_requested != 0) break;
    auto cur = client.Metrics();
    if (!cur.ok()) return Fail(cur.status());
    elapsed += interval_s;
    std::printf("--- +%lds ---\n", elapsed);
    const MetricsSnapshot& before = prev.value().snapshot;
    const double secs = static_cast<double>(interval_s);
    for (const MetricSample& s : cur.value().snapshot.samples) {
      const MetricSample* was = before.Find(s.name);
      switch (s.kind) {
        case MetricSample::Kind::kCounter: {
          const uint64_t old =
              (was != nullptr && was->kind == s.kind) ? was->counter : 0;
          if (s.counter == old) break;
          const uint64_t delta = s.counter - old;
          std::printf("%-56s %llu  +%llu (%.1f/s)\n", s.name.c_str(),
                      static_cast<unsigned long long>(s.counter),
                      static_cast<unsigned long long>(delta),
                      static_cast<double>(delta) / secs);
          break;
        }
        case MetricSample::Kind::kGauge: {
          const bool known = was != nullptr && was->kind == s.kind;
          const int64_t old = known ? was->gauge : 0;
          if (known && s.gauge == old) break;
          std::printf("%-56s %lld  (%+lld)\n", s.name.c_str(),
                      static_cast<long long>(s.gauge),
                      static_cast<long long>(s.gauge - old));
          break;
        }
        case MetricSample::Kind::kHistogram: {
          const uint64_t old_count =
              (was != nullptr && was->kind == s.kind)
                  ? was->histogram.count
                  : 0;
          if (s.histogram.count == old_count) break;
          const uint64_t delta = s.histogram.count - old_count;
          const double old_sum =
              (was != nullptr && was->kind == s.kind) ? was->histogram.sum
                                                      : 0.0;
          std::printf(
              "%-56s count=%llu  +%llu (%.1f/s) interval-mean=%.6f\n",
              s.name.c_str(),
              static_cast<unsigned long long>(s.histogram.count),
              static_cast<unsigned long long>(delta),
              static_cast<double>(delta) / secs,
              (s.histogram.sum - old_sum) / static_cast<double>(delta));
          break;
        }
      }
    }
    std::fflush(stdout);
    prev = std::move(cur);
  }
  return 0;
}

int CmdConnect(const char* target, int argc, char** argv) {
  std::string user = "admin";
  bool metrics = false;
  bool raw = false;
  bool trace = false;
  bool audit = false;
  bool slow = false;
  bool errors = false;
  std::string trace_id_hex;
  long watch = 0;
  long max_spans = 0;
  std::string lineage_spec;
  long ordinal = 0;
  long item = 0;
  for (int i = 0; i < argc; ++i) {
    bool matched = false;
    ParseStrOption(argv[i], "user", &user, &matched);
    if (matched) continue;
    ParseStrOption(argv[i], "lineage", &lineage_spec, &matched);
    if (matched) continue;
    if (!ParseIntOption(argv[i], "ordinal", 0, 1000000000, &ordinal,
                        &matched)) {
      return 1;
    }
    if (matched) continue;
    if (!ParseIntOption(argv[i], "item", 0, 1000000000, &item,
                        &matched)) {
      return 1;
    }
    if (matched) continue;
    if (std::strcmp(argv[i], "metrics") == 0) {
      metrics = true;
      continue;
    }
    if (std::strcmp(argv[i], "trace") == 0) {
      trace = true;
      continue;
    }
    if (std::strcmp(argv[i], "audit") == 0) {
      audit = true;
      continue;
    }
    if (metrics && std::strcmp(argv[i], "--raw") == 0) {
      raw = true;
      continue;
    }
    if (metrics &&
        !ParseIntOption(argv[i], "--watch", 1, 86400, &watch, &matched)) {
      return 1;
    }
    if (matched) continue;
    if (trace) {
      if (std::strcmp(argv[i], "--slow") == 0) {
        slow = true;
        continue;
      }
      if (std::strcmp(argv[i], "--errors") == 0) {
        errors = true;
        continue;
      }
      ParseStrOption(argv[i], "--id", &trace_id_hex, &matched);
      if (matched) continue;
    }
    if ((trace || audit) &&
        !ParseIntOption(argv[i], "--max", 1, 1000000, &max_spans,
                        &matched)) {
      return 1;
    }
    if (matched) continue;
    std::fprintf(stderr, "error: unknown connect option %s\n", argv[i]);
    return 1;
  }
  auto client = ConnectAndAuth(target, user);
  if (!client.ok()) return Fail(client.status());
  if (metrics) {
    if (watch > 0) return WatchMetrics(client.value(), watch);
    auto snapshot = client.value().Metrics();
    if (!snapshot.ok()) return Fail(snapshot.status());
    return PrintMetrics(snapshot.value().snapshot, raw);
  }
  if (trace || audit) {
    wire::TraceDumpRequest req;
    if (audit) {
      req.mode = wire::TraceDumpMode::kAudit;
    } else if (!trace_id_hex.empty()) {
      char* end = nullptr;
      const unsigned long long id =
          std::strtoull(trace_id_hex.c_str(), &end, 16);
      if (end == trace_id_hex.c_str() || *end != '\0' || id == 0) {
        std::fprintf(stderr, "error: --id must be a hex trace id: %s\n",
                     trace_id_hex.c_str());
        return 1;
      }
      req.mode = wire::TraceDumpMode::kById;
      req.trace_id = id;
    } else if (slow) {
      req.mode = wire::TraceDumpMode::kSlow;
    } else if (errors) {
      req.mode = wire::TraceDumpMode::kErrors;
    }
    req.max_spans = static_cast<uint32_t>(max_spans);
    auto resp = client.value().TraceDump(req);
    if (!resp.ok()) return Fail(resp.status());
    if (audit) {
      PrintAuditEvents(resp.value().spans, resp.value().dropped);
    } else {
      PrintSpanTrees(resp.value().spans, resp.value().dropped);
    }
    return 0;
  }
  if (!lineage_spec.empty()) {
    // One LINEAGE round trip as the authed principal: the answer is
    // rendered through that principal's privacy view, so repeating the
    // command exercises the server's memoized view cache (check the
    // paw_privacy_view_cache_* counters via `metrics`).
    auto answer = client.value().Lineage(
        lineage_spec, static_cast<int>(ordinal), static_cast<int>(item));
    if (!answer.ok()) return Fail(answer.status());
    std::printf("lineage of item %ld in %s run %ld (as %s, %d zoom-out "
                "steps, prefix {",
                item, lineage_spec.c_str(), ordinal, user.c_str(),
                answer.value().zoom_steps);
    for (size_t i = 0; i < answer.value().prefix_codes.size(); ++i) {
      std::printf("%s%s", i > 0 ? "," : "",
                  answer.value().prefix_codes[i].c_str());
    }
    std::printf("}):\n");
    for (const std::string& row : answer.value().rows) {
      std::printf("  %s\n", row.c_str());
    }
    return 0;
  }
  std::printf("connected to %s (protocol v%d) as %s\n",
              client.value().server_name().c_str(),
              client.value().version(), user.c_str());
  auto status = client.value().GetStatus();
  if (!status.ok()) return Fail(status.status());
  std::printf("%s\n", status.value().text.c_str());
  std::printf("principals: %d, connections: %d\n",
              status.value().principals, status.value().connections);
  return 0;
}

int CmdPut(const char* target, const char* path, int argc, char** argv) {
  std::string user = "admin";
  long runs = 1;
  long pipeline = 32;
  std::string policy_path;
  for (int i = 0; i < argc; ++i) {
    bool matched = false;
    ParseStrOption(argv[i], "user", &user, &matched);
    if (matched) continue;
    if (!ParseIntOption(argv[i], "runs", 0, 1000000, &runs, &matched)) {
      return 1;
    }
    if (matched) continue;
    if (!ParseIntOption(argv[i], "pipeline", 1, 4096, &pipeline,
                        &matched)) {
      return 1;
    }
    if (matched) continue;
    ParseStrOption(argv[i], "policy", &policy_path, &matched);
    if (matched) continue;
    std::fprintf(stderr, "error: unknown put option %s\n", argv[i]);
    return 1;
  }
  auto parsed = LoadSpec(path);
  if (!parsed.ok()) return Fail(parsed.status());
  const Specification& spec = parsed.value();

  std::string policy_text;
  if (!policy_path.empty()) {
    auto contents = ReadFileToString(policy_path);
    if (!contents.ok()) return Fail(contents.status());
    policy_text = std::move(contents).value();
  }

  auto client = ConnectAndAuth(target, user);
  if (!client.ok()) return Fail(client.status());

  auto added = client.value().AddSpec(Serialize(spec), policy_text);
  if (added.ok()) {
    std::printf("stored spec \"%s\" as shard %d id %d\n",
                spec.name().c_str(), added.value().shard,
                added.value().spec_id);
  } else if (added.status().IsAlreadyExists()) {
    std::printf("spec \"%s\" already stored\n", spec.name().c_str());
  } else {
    return Fail(added.status());
  }

  // Pipelined remote ingest: keep `pipeline` appends in flight so the
  // server batches them into shared group commits. Every ticket is
  // awaited — an acked run is durable per the server's sync mode.
  FunctionRegistry fns;
  std::deque<PawTicket> window;
  long acked = 0;
  auto reap_front = [&]() -> Status {
    auto ack = client.value().AwaitAddExecution(window.front());
    window.pop_front();
    if (ack.ok()) ++acked;
    return ack.status();
  };
  for (long i = 0; i < runs; ++i) {
    std::string suffix = "#";
    suffix += std::to_string(i);
    auto exec = Execute(spec, fns, DefaultInputs(spec, suffix));
    if (!exec.ok()) return Fail(exec.status());
    auto ticket = client.value().SendAddExecution(
        spec.name(), SerializeExecution(exec.value()));
    if (!ticket.ok()) return Fail(ticket.status());
    window.push_back(ticket.value());
    if (window.size() >= static_cast<size_t>(pipeline)) {
      if (Status s = reap_front(); !s.ok()) return Fail(s);
    }
  }
  while (!window.empty()) {
    if (Status s = reap_front(); !s.ok()) return Fail(s);
  }
  std::printf("acked %ld execution(s) of \"%s\" (pipeline %ld)\n", acked,
              spec.name().c_str(), pipeline);
  return 0;
}

int CmdQuery(const char* target, int argc, char** argv) {
  std::string user = "admin";
  std::vector<std::string> terms;
  for (int i = 0; i < argc; ++i) {
    bool matched = false;
    ParseStrOption(argv[i], "user", &user, &matched);
    if (matched) continue;
    terms.emplace_back(argv[i]);
  }
  if (terms.empty()) {
    std::fprintf(stderr, "error: query needs at least one term\n");
    return 1;
  }
  auto client = ConnectAndAuth(target, user);
  if (!client.ok()) return Fail(client.status());
  auto answers = client.value().Search(terms);
  if (!answers.ok()) return Fail(answers.status());
  if (answers.value().hits.empty()) {
    std::printf("no results for this principal's view\n");
    return 0;
  }
  for (const wire::SearchHit& hit : answers.value().hits) {
    std::printf("%-32s score %.4f view %d modules:", hit.spec_name.c_str(),
                hit.score, hit.view_size);
    for (const std::string& code : hit.matched) {
      std::printf(" %s", code.c_str());
    }
    std::printf("\n");
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: pawctl demo\n"
               "       pawctl validate <spec.paw>\n"
               "       pawctl show <spec.paw>\n"
               "       pawctl run <spec.paw> [label=value ...]\n"
               "       pawctl search <spec.paw> <level> <term> ...\n"
               "       pawctl init <dir> [shards=N] [codec=binary|text]\n"
               "       pawctl open <dir> [threads=N]\n"
               "       pawctl status <dir>\n"
               "       pawctl ingest <dir> <spec.paw> [runs=N] [threads=N]"
               " [sync=each|batch] [codec=binary|text] [segbytes=N]"
               " [every=N] [compact=background|inline]\n"
               "       pawctl compact <dir> [threads=N]"
               " [mode=background|inline]\n"
               "       pawctl migrate <dir> [threads=N]\n"
               "       pawctl serve <dir> [port=N] [bind=ADDR] [shards=N]"
               " [workers=N] [writers=N] [threads=N] [sync=each|batch]"
               " [auth=name:level[:group],...] [idle=MS] [admin=N] [poll]"
               " [viewcache=on|off] [viewcache-mb=N]"
               " [follow=HOST:PORT] [follow-principal=NAME]"
               " [acks=local|quorum] [quorum-ms=N] [trace-sample=N]\n"
               "       pawctl connect <host:port> [user=NAME]"
               " [metrics [--raw|--watch=N]]"
               " [trace [--id=HEX|--slow|--errors] [--max=N]]"
               " [audit [--max=N]]"
               " [lineage=SPEC [ordinal=N] [item=N]]\n"
               "       pawctl put <host:port> <spec.paw> [runs=N]"
               " [user=NAME] [pipeline=N] [policy=FILE]\n"
               "       pawctl query <host:port> <term> [term ...]"
               " [user=NAME]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "demo") return CmdDemo();
  if (cmd == "validate" && argc >= 3) return CmdValidate(argv[2]);
  if (cmd == "show" && argc >= 3) return CmdShow(argv[2]);
  if (cmd == "run" && argc >= 3) {
    return CmdRun(argv[2], argc - 3, argv + 3);
  }
  if (cmd == "search" && argc >= 5) {
    return CmdSearch(argv[2], argv[3], argc - 4, argv + 4);
  }
  if (cmd == "init" && argc >= 3) {
    return CmdInit(argv[2], argc - 3, argv + 3);
  }
  if (cmd == "open" && argc >= 3) {
    return CmdOpen(argv[2], argc - 3, argv + 3);
  }
  if (cmd == "status" && argc >= 3) {
    return CmdStatus(argv[2]);
  }
  if (cmd == "ingest" && argc >= 4) {
    return CmdIngest(argv[2], argv[3], argc - 4, argv + 4);
  }
  if (cmd == "compact" && argc >= 3) {
    return CmdCompact(argv[2], argc - 3, argv + 3);
  }
  if (cmd == "migrate" && argc >= 3) {
    return CmdMigrate(argv[2], argc - 3, argv + 3);
  }
  if (cmd == "serve" && argc >= 3) {
    return CmdServe(argv[2], argc - 3, argv + 3);
  }
  if (cmd == "connect" && argc >= 3) {
    return CmdConnect(argv[2], argc - 3, argv + 3);
  }
  if (cmd == "put" && argc >= 4) {
    return CmdPut(argv[2], argv[3], argc - 4, argv + 4);
  }
  if (cmd == "query" && argc >= 4) {
    return CmdQuery(argv[2], argc - 3, argv + 3);
  }
  return Usage();
}

// E10: persistent store costs — append throughput, recovery time as a
// function of log length, snapshot + compaction effect, sharded
// recovery, binary-vs-text codec replay (E10e), and concurrent ingest
// through the group-commit WAL + per-shard writer queues (E10f).
//
// Expected shape: appends are cheap and flat (buffered writes; fsync
// dominates when enabled); recovery time grows linearly with the WAL
// suffix length; binary payload replay is parse-free and beats text
// replay well past 2x; and with durability on, N concurrent appenders
// share one fsync per commit group instead of paying one each.
//
// Every experiment also lands in BENCH_store.json (in the working
// directory, or $BENCH_JSON) as machine-readable per-experiment
// metrics so CI can track the perf trajectory. `--smoke` runs scaled-
// down tables only (no google-benchmark micro benches).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "src/common/crc32.h"
#include "src/common/metrics.h"
#include "src/common/timer.h"
#include "src/provenance/executor.h"
#include "src/repo/disease.h"
#include "src/store/codec.h"
#include "src/store/persistent_repository.h"
#include "src/store/record.h"
#include "src/store/sharded_repository.h"
#include "src/store/wal.h"
#include "src/workflow/builder.h"

namespace {

using namespace paw;

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("paw_bench_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Total bytes across a store's WAL segments.
double WalBytes(const std::string& dir) {
  auto segments = ListWalSegments(dir);
  if (!segments.ok()) return 0;
  double total = 0;
  for (const WalSegmentFile& segment : segments.value()) {
    std::error_code ec;
    const auto size = fs::file_size(segment.path, ec);
    if (!ec) total += static_cast<double>(size);
  }
  return total;
}

/// Collects one flat JSON object per experiment row and writes the
/// BENCH_store.json artifact consumed by tools/check.sh.
class BenchJson {
 public:
  class Row {
   public:
    explicit Row(std::string experiment) {
      json_ = "{\"experiment\":\"" + experiment + "\"";
    }
    Row& Str(const char* key, const std::string& value) {
      json_ += std::string(",\"") + key + "\":\"" + value + "\"";
      return *this;
    }
    Row& Num(const char* key, double value) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", value);
      json_ += std::string(",\"") + key + "\":" + buf;
      return *this;
    }
    std::string Finish() const { return json_ + "}"; }

   private:
    std::string json_;
  };

  void Add(const Row& row) { rows_.push_back(row.Finish()); }

  void Write(const std::string& path) const {
    std::string out = "{\"bench\":\"store\",\"experiments\":[\n";
    for (size_t i = 0; i < rows_.size(); ++i) {
      out += "  " + rows_[i] + (i + 1 < rows_.size() ? ",\n" : "\n");
    }
    out += "]}\n";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("wrote %s (%zu experiment rows)\n", path.c_str(),
                rows_.size());
  }

 private:
  std::vector<std::string> rows_;
};

/// A store seeded with the disease spec; returns the spec id.
int SeedSpec(PersistentRepository* store) {
  auto spec = BuildDiseaseSpec();
  auto id = store->AddSpecification(std::move(spec).value(),
                                    DiseasePolicy());
  return id.value();
}

Execution MakeExecution(const PersistentRepository& store, int spec_id) {
  return RunDiseaseExecution(store.repo().entry(spec_id).spec).value();
}

void TableAppendThroughput(int scale, BenchJson* json) {
  std::printf(
      "=== E10a: WAL append throughput (disease executions) ===\n"
      "%-8s %-8s %-10s %-12s %-12s %-12s\n",
      "sync", "verify", "records", "total-MB", "records/s", "MB/s");
  for (int mode = 0; mode < 3; ++mode) {
    const bool sync = mode == 2;
    const bool verify = mode != 1;
    const int records = (sync ? 200 : 5000) / scale;
    const std::string dir = FreshDir("append_" + std::to_string(mode));
    StoreOptions options;
    options.sync_each_append = sync;
    options.verify_payloads = verify;
    auto store = PersistentRepository::Init(dir, options);
    if (!store.ok()) continue;
    int spec_id = SeedSpec(&store.value());
    Timer timer;
    for (int i = 0; i < records; ++i) {
      store.value()
          .AddExecution(spec_id, MakeExecution(store.value(), spec_id))
          .value();
    }
    store.value().Sync();
    const double secs = timer.ElapsedMicros() / 1e6;
    const double mb = WalBytes(dir) / 1e6;
    std::printf("%-8s %-8s %-10d %-12.2f %-12.0f %-12.1f\n",
                sync ? "yes" : "no", verify ? "yes" : "no", records, mb,
                records / secs, mb / secs);
    json->Add(BenchJson::Row("e10a")
                  .Str("sync", sync ? "each" : "batch")
                  .Str("verify", verify ? "on" : "off")
                  .Num("records", records)
                  .Num("ops_per_sec", records / secs)
                  .Num("mb_per_sec", mb / secs));
    fs::remove_all(dir);
  }
  std::printf("\n");
}

void TableRecoveryVsLogLength(int scale, BenchJson* json) {
  std::printf(
      "=== E10b: recovery time vs WAL length ===\n"
      "%-10s %-12s %-12s %-14s\n",
      "records", "wal-KB", "open-ms", "ms/record");
  for (int base : {100, 500, 2000}) {
    const int records = base / scale;
    const std::string dir =
        FreshDir("recovery_" + std::to_string(records));
    {
      auto store = PersistentRepository::Init(dir);
      int spec_id = SeedSpec(&store.value());
      for (int i = 0; i < records; ++i) {
        store.value()
            .AddExecution(spec_id, MakeExecution(store.value(), spec_id))
            .value();
      }
      store.value().Sync();
    }
    const double wal_kb = WalBytes(dir) / 1e3;
    Timer timer;
    auto reopened = PersistentRepository::Open(dir);
    const double ms = timer.ElapsedMillis();
    if (!reopened.ok()) continue;
    std::printf("%-10d %-12.1f %-12.2f %-14.4f\n", records, wal_kb, ms,
                ms / records);
    json->Add(BenchJson::Row("e10b")
                  .Num("records", records)
                  .Num("open_ms", ms)
                  .Num("ms_per_record", ms / records));
    fs::remove_all(dir);
  }
  std::printf("\n");
}

void TableSnapshotEffect(int scale, BenchJson* json) {
  const int records = 1000 / scale;
  std::printf(
      "=== E10c: snapshot + compaction effect (%d executions) ===\n"
      "%-14s %-14s %-12s %-14s\n",
      records, "state", "snapshot-KB", "wal-KB", "open-ms");
  const std::string dir = FreshDir("snapshot");
  {
    auto store = PersistentRepository::Init(dir);
    int spec_id = SeedSpec(&store.value());
    for (int i = 0; i < records; ++i) {
      store.value()
          .AddExecution(spec_id, MakeExecution(store.value(), spec_id))
          .value();
    }
    store.value().Sync();
  }
  auto wal_kb = [&] { return WalBytes(dir) / 1e3; };
  {
    Timer timer;
    auto reopened = PersistentRepository::Open(dir);
    const double ms = timer.ElapsedMillis();
    std::printf("%-14s %-14s %-12.1f %-14.2f\n", "log-only", "-",
                wal_kb(), ms);
    json->Add(BenchJson::Row("e10c")
                  .Str("state", "log-only")
                  .Num("records", records)
                  .Num("open_ms", ms)
                  .Num("ms_per_record", ms / records));
    reopened.value().Compact();
  }
  double snapshot_kb = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snapshot-", 0) == 0) {
      snapshot_kb = static_cast<double>(entry.file_size()) / 1e3;
    }
  }
  {
    Timer timer;
    auto reopened = PersistentRepository::Open(dir);
    const double ms = timer.ElapsedMillis();
    std::printf("%-14s %-14.1f %-12.1f %-14.2f\n", "compacted",
                snapshot_kb, wal_kb(), ms);
    json->Add(BenchJson::Row("e10c")
                  .Str("state", "compacted")
                  .Num("records", records)
                  .Num("open_ms", ms)
                  .Num("ms_per_record", ms / records));
  }
  fs::remove_all(dir);
  std::printf("\n");
}

/// A minimal one-workflow spec so the 10k-record logs ingest and
/// replay quickly; recovery cost is then dominated by per-record
/// framing + parse, the component sharding and the binary codec
/// attack.
Specification MakeBenchSpec(const std::string& name) {
  SpecBuilder b(name);
  WorkflowId w = b.AddWorkflow("W1", "top", 0);
  (void)b.SetRoot(w);
  ModuleId in = b.AddInput(w);
  ModuleId m = b.AddModule(w, "M1", "Work");
  ModuleId out = b.AddOutput(w);
  (void)b.Connect(in, m, {"x"});
  (void)b.Connect(m, out, {"y"});
  return std::move(b).Build().value();
}

/// Fills `dir` (single-directory store) with `kSpecs` bench specs and
/// `records` executions round-robin.
void FillSingleStore(const std::string& dir, StoreOptions options,
                     int num_specs, int records) {
  FunctionRegistry fns;
  auto store = PersistentRepository::Init(dir, options);
  for (int i = 0; i < num_specs; ++i) {
    store.value()
        .AddSpecification(MakeBenchSpec("bench" + std::to_string(i)))
        .value();
  }
  for (int i = 0; i < records; ++i) {
    const int sid = i % num_specs;
    std::string value = "v";
    value += std::to_string(i);
    auto exec =
        Execute(store.value().repo().entry(sid).spec, fns, {{"x", value}});
    store.value().AddExecution(sid, std::move(exec).value()).value();
  }
  store.value().Sync();
}

// E10d acceptance: recovery of a >= 10k-record log, sharded 4 ways and
// recovered with 4 threads, versus the equivalent single-directory
// store. Speedup scales with available cores (shards recover
// independently); `ShardedRepository::Open` clamps its recovery fan-out
// to `hardware_concurrency`, so on a single-core host the threads=4 row
// degenerates to threads=1 instead of oversubscribing. Measured at two
// scales: the small run exposes the per-shard constant cost (manifest +
// lock + snapshot per shard), the 10x run is the design scale where
// sharding is supposed to pay off.
void TableShardedRecoveryAt(int records, BenchJson* json) {
  constexpr int kShards = 4;
  constexpr int kSpecs = 8;
  std::printf(
      "=== E10d: sharded vs single recovery (%d specs, %d records) ===\n"
      "%-20s %-10s %-10s %-12s %-10s\n",
      kSpecs, records, "layout", "shards", "threads", "open-ms",
      "speedup");
  StoreOptions options;
  options.verify_payloads = false;  // ingest path; inputs are known-good

  FunctionRegistry fns;

  // Single-directory baseline.
  const std::string single_dir = FreshDir("e10d_single");
  FillSingleStore(single_dir, options, kSpecs, records);
  // Time Open only (destruction excluded), the same span the sharded
  // rows measure.
  double single_ms = 0;
  {
    Timer timer;
    auto reopened = PersistentRepository::Open(single_dir, options);
    single_ms = timer.ElapsedMillis();
    if (!reopened.ok()) {
      std::printf("E10d single open failed: %s\n",
                  reopened.status().ToString().c_str());
      return;
    }
  }
  std::printf("%-20s %-10d %-10d %-12.1f %-10s\n", "single", 1, 1,
              single_ms, "1.00x");
  json->Add(BenchJson::Row("e10d")
                .Str("layout", "single")
                .Num("threads", 1)
                .Num("records", records)
                .Num("open_ms", single_ms)
                .Num("ms_per_record", single_ms / records));

  // Sharded store with identical contents.
  const std::string sharded_dir = FreshDir("e10d_sharded");
  {
    auto store = ShardedRepository::Init(sharded_dir, kShards, options);
    std::vector<ShardedRepository::SpecRef> refs;
    for (int i = 0; i < kSpecs; ++i) {
      refs.push_back(store.value()
                         .AddSpecification(
                             MakeBenchSpec("bench" + std::to_string(i)))
                         .value());
    }
    for (int i = 0; i < records; ++i) {
      const auto& ref = refs[static_cast<size_t>(i % kSpecs)];
      std::string value = "v";
      value += std::to_string(i);
      auto exec = Execute(
          store.value().shard(ref.shard).repo().entry(ref.id).spec, fns,
          {{"x", value}});
      store.value().AddExecution(ref, std::move(exec).value()).value();
    }
    store.value().Sync();
  }
  for (int threads : {1, kShards}) {
    Timer timer;
    auto reopened = ShardedRepository::Open(sharded_dir, options, threads);
    const double ms = timer.ElapsedMillis();
    if (!reopened.ok()) {
      std::printf("E10d sharded open (threads=%d) failed: %s\n", threads,
                  reopened.status().ToString().c_str());
      continue;
    }
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", single_ms / ms);
    std::printf("%-20s %-10d %-10d %-12.1f %-10s\n", "sharded", kShards,
                threads, ms, speedup);
    json->Add(BenchJson::Row("e10d")
                  .Str("layout", "sharded")
                  .Num("threads", threads)
                  .Num("records", records)
                  .Num("open_ms", ms)
                  .Num("ms_per_record", ms / records)
                  .Num("speedup_vs_single", single_ms / ms));
  }
  fs::remove_all(single_dir);
  fs::remove_all(sharded_dir);
  std::printf("\n");
}

void TableShardedRecovery(int scale, BenchJson* json) {
  // The 0.5x "regression" originally reported for E10d was measured at
  // the small scale only; the 10x row shows the crossover (per-shard
  // constant cost amortizes away and the parallel replay wins when
  // cores are available).
  TableShardedRecoveryAt(10000 / scale, json);
  TableShardedRecoveryAt(100000 / scale, json);
}

// E10e acceptance: replay of the E10d workload stored with v1 text
// payloads versus v2 binary payloads. Binary replay decodes varints
// and raw strings instead of re-tokenizing the line-oriented text
// formats; the target is >= 2x.
void TableCodecReplay(int scale, BenchJson* json) {
  constexpr int kSpecs = 8;
  const int records = 10000 / scale;
  std::printf(
      "=== E10e: binary vs text payload replay (%d records) ===\n"
      "%-10s %-12s %-12s %-14s %-10s\n",
      records, "codec", "wal-MB", "open-ms", "ms/record", "speedup");
  StoreOptions options;
  options.verify_payloads = false;
  double text_ms = 0;
  for (PayloadCodec codec : {PayloadCodec::kText, PayloadCodec::kBinary}) {
    options.codec = codec;
    const std::string dir =
        FreshDir(std::string("e10e_") +
                 std::string(PayloadCodecName(codec)));
    FillSingleStore(dir, options, kSpecs, records);
    const double wal_mb = WalBytes(dir) / 1e6;
    Timer timer;
    auto reopened = PersistentRepository::Open(dir, options);
    const double ms = timer.ElapsedMillis();
    if (!reopened.ok()) {
      std::printf("E10e open (%s) failed: %s\n",
                  std::string(PayloadCodecName(codec)).c_str(),
                  reopened.status().ToString().c_str());
      continue;
    }
    const double speedup = codec == PayloadCodec::kText
                               ? 1.0
                               : (text_ms > 0 ? text_ms / ms : 0);
    if (codec == PayloadCodec::kText) text_ms = ms;
    char speedup_str[32];
    std::snprintf(speedup_str, sizeof(speedup_str), "%.2fx", speedup);
    std::printf("%-10s %-12.2f %-12.1f %-14.4f %-10s\n",
                std::string(PayloadCodecName(codec)).c_str(), wal_mb, ms,
                ms / records, speedup_str);
    json->Add(BenchJson::Row("e10e")
                  .Str("codec", std::string(PayloadCodecName(codec)))
                  .Num("records", records)
                  .Num("wal_mb", wal_mb)
                  .Num("open_ms", ms)
                  .Num("ms_per_record", ms / records)
                  .Num("speedup_vs_text", speedup));
    fs::remove_all(dir);
  }
  std::printf("\n");
}

// E10f acceptance: concurrent ingest. Two mechanisms are measured:
//
//   wal rows:   T caller threads append raw 1 KB records to ONE
//               group-commit WAL with sync_each_append — concurrent
//               appenders share a single fsync per commit group, so
//               durable throughput scales with callers even on one
//               core (fsync time is I/O wait, not CPU).
//   store rows: the E10d workload ingested into a single-directory
//               store (1 caller thread, the old code path) versus a
//               4-shard store with writer_threads=4 draining per-shard
//               queues fed by AddExecutionAsync. With sync=each the
//               queue drain group-commits durability (one fsync per
//               drained batch).
void TableConcurrentIngest(int scale, BenchJson* json) {
  std::printf("=== E10f: concurrent ingest ===\n");

  // ---- Group-commit WAL, durable appends, 1 vs 4 caller threads ----
  std::printf("%-28s %-10s %-10s %-12s %-10s\n", "mode", "threads",
              "records", "ops/s", "speedup");
  const int wal_records = 800 / scale * 4;
  const std::string payload(1024, 'p');
  double wal_single_ops = 0;
  const uint64_t stage_bytes_before =
      MetricsRegistry::Global()
          .Snapshot()
          .SumCounters("paw_wal_frame_stage_copy_bytes_total");
  for (int threads : {1, 4}) {
    const std::string dir = FreshDir("e10f_wal");
    WalOptions wal_options;
    wal_options.sync_each_append = true;
    auto wal = WriteAheadLog::Create(dir, 0, wal_options);
    const int per_thread = wal_records / threads;
    Timer timer;
    std::vector<std::thread> callers;
    for (int t = 0; t < threads; ++t) {
      callers.emplace_back([&wal, per_thread, &payload] {
        for (int i = 0; i < per_thread; ++i) {
          wal.value().Append(RecordType::kExecutionV2, payload).value();
        }
      });
    }
    for (auto& c : callers) c.join();
    const double secs = timer.ElapsedMicros() / 1e6;
    const double ops = wal_records / secs;
    if (threads == 1) wal_single_ops = ops;
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  ops / wal_single_ops);
    std::printf("%-28s %-10d %-10d %-12.0f %-10s\n",
                "wal sync-each (group)", threads, wal_records, ops,
                speedup);
    json->Add(BenchJson::Row("e10f")
                  .Str("mode", "wal-group-commit-sync")
                  .Num("threads", threads)
                  .Num("records", wal_records)
                  .Num("ops_per_sec", ops)
                  .Num("speedup_vs_single", ops / wal_single_ops));
    fs::remove_all(dir);
  }

  // ---- Frame-stage copy cost under the group-commit mutex ----
  // The carried-over question: writer-queue ops are single-allocation,
  // so the remaining per-append cost is `pending += frame` while
  // holding the WAL mutex. The counter says how many bytes that copy
  // moved; a replayed copy loop prices them, bounding the fraction of
  // the commit path the staging copy can possibly account for.
  {
    const uint64_t staged_bytes =
        MetricsRegistry::Global()
            .Snapshot()
            .SumCounters("paw_wal_frame_stage_copy_bytes_total") -
        stage_bytes_before;
    const size_t frame_bytes =
        staged_bytes / static_cast<size_t>(2 * wal_records);
    const std::string frame(frame_bytes > 0 ? frame_bytes : 1, 'f');
    std::string pending;
    Timer copy_timer;
    for (int i = 0; i < 2 * wal_records; ++i) {
      if (pending.size() > (4u << 20)) pending.clear();
      pending += frame;
    }
    benchmark::DoNotOptimize(pending);
    const double copy_secs = copy_timer.ElapsedMicros() / 1e6;
    const double ns_per_append =
        copy_secs * 1e9 / static_cast<double>(2 * wal_records);
    std::printf(
        "wal frame-stage copy: %.1f MiB staged under the group-commit "
        "mutex (%d appends, %zu B/frame); replayed copy cost ~%.0f "
        "ns/append\n",
        static_cast<double>(staged_bytes) / (1u << 20), 2 * wal_records,
        frame_bytes, ns_per_append);
    json->Add(BenchJson::Row("e10f")
                  .Str("mode", "wal-frame-stage-copy")
                  .Num("staged_bytes", static_cast<double>(staged_bytes))
                  .Num("appends", 2 * wal_records)
                  .Num("copy_ns_per_append", ns_per_append));
  }

  // ---- Store-level ingest: single-dir caller thread vs sharded
  //      writer queues, buffered and durable variants ----
  constexpr int kShards = 4;
  constexpr int kSpecs = 8;
  FunctionRegistry fns;
  for (const bool durable : {false, true}) {
    const int records = (durable ? 2000 : 10000) / scale;
    StoreOptions options;
    options.verify_payloads = false;
    options.sync_each_append = durable;

    // Baseline: one caller appending synchronously to one store.
    double single_ops = 0;
    {
      const std::string dir = FreshDir("e10f_single");
      auto store = PersistentRepository::Init(dir, options);
      for (int i = 0; i < kSpecs; ++i) {
        store.value()
            .AddSpecification(MakeBenchSpec("bench" + std::to_string(i)))
            .value();
      }
      std::vector<Execution> execs;
      execs.reserve(static_cast<size_t>(records));
      for (int i = 0; i < records; ++i) {
        execs.push_back(
            Execute(store.value().repo().entry(i % kSpecs).spec, fns,
                    {{"x", "v" + std::to_string(i)}})
                .value());
      }
      Timer timer;
      for (int i = 0; i < records; ++i) {
        store.value()
            .AddExecution(i % kSpecs, std::move(execs[static_cast<size_t>(i)]))
            .value();
      }
      store.value().Sync();
      single_ops = records / (timer.ElapsedMicros() / 1e6);
      fs::remove_all(dir);
    }
    std::printf("%-28s %-10d %-10d %-12.0f %-10s\n",
                durable ? "store single sync-each" : "store single",
                1, records, single_ops, "1.00x");
    json->Add(BenchJson::Row("e10f")
                  .Str("mode", durable ? "store-single-sync"
                                       : "store-single")
                  .Num("threads", 1)
                  .Num("records", records)
                  .Num("ops_per_sec", single_ops)
                  .Num("speedup_vs_single", 1.0));

    // Sharded writer queues fed asynchronously by one caller.
    {
      const std::string dir = FreshDir("e10f_sharded");
      StoreOptions sharded_options = options;
      sharded_options.writer_threads = kShards;
      auto store =
          ShardedRepository::Init(dir, kShards, sharded_options);
      std::vector<ShardedRepository::SpecRef> refs;
      for (int i = 0; i < kSpecs; ++i) {
        refs.push_back(store.value()
                           .AddSpecification(MakeBenchSpec(
                               "bench" + std::to_string(i)))
                           .value());
      }
      std::vector<Execution> execs;
      execs.reserve(static_cast<size_t>(records));
      for (int i = 0; i < records; ++i) {
        const auto& ref = refs[static_cast<size_t>(i % kSpecs)];
        execs.push_back(
            Execute(store.value().shard(ref.shard).repo().entry(ref.id).spec,
                    fns, {{"x", "v" + std::to_string(i)}})
                .value());
      }
      Timer timer;
      std::vector<StoreFuture<ExecutionId>> futures;
      futures.reserve(static_cast<size_t>(records));
      for (int i = 0; i < records; ++i) {
        futures.push_back(store.value().AddExecutionAsync(
            refs[static_cast<size_t>(i % kSpecs)],
            std::move(execs[static_cast<size_t>(i)])));
      }
      store.value().Drain();
      const Status synced = store.value().Sync();
      const double ops = records / (timer.ElapsedMicros() / 1e6);
      if (!synced.ok()) {
        std::printf("E10f sharded sync failed: %s\n",
                    synced.ToString().c_str());
      }
      int failed = 0;
      for (auto& f : futures) {
        if (!f.get().ok()) ++failed;
      }
      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.2fx", ops / single_ops);
      std::printf("%-28s %-10d %-10d %-12.0f %-10s%s\n",
                  durable ? "store sharded-queues sync"
                          : "store sharded-queues",
                  kShards, records, ops, speedup,
                  failed ? " [FAILURES]" : "");
      json->Add(BenchJson::Row("e10f")
                    .Str("mode", durable ? "store-sharded-queues-sync"
                                         : "store-sharded-queues")
                    .Num("threads", kShards)
                    .Num("records", records)
                    .Num("ops_per_sec", ops)
                    .Num("speedup_vs_single", ops / single_ops));
      fs::remove_all(dir);
    }
  }
  std::printf("\n");
}

// E10g acceptance: ingest must keep flowing while compaction runs.
// Preload a store with `base` disease-spec records (~1 KB payloads, so
// every snapshot rewrite is genuinely expensive), then append more
// with auto-compaction cutting in every `every` records — once with
// inline `Compact()` on the writer (the old behavior: each fold
// freezes ingest for the whole snapshot encode + write) and once with
// `background_compaction` (the cut pins a view and rotates the WAL;
// the snapshot worker folds sealed segments while appends land in the
// fresh active segment — and folds that would overlap coalesce, so
// the writer never queues behind snapshots). Durable (sync-each)
// appends, identical workloads; the per-append latency tail is the
// stall profile — the background p99/max stays at fsync scale while
// the inline tail carries the full snapshot pauses.
void TableBackgroundCompaction(int scale, BenchJson* json) {
  const int base = 10000 / scale;
  const int appends = 2000 / scale;
  const int every = std::max(1, appends / 64);
  std::printf(
      "=== E10g: ingest during compaction, %d-record store + %d appends "
      "(folds every %d) ===\n"
      "%-24s %-10s %-12s %-12s %-12s %-14s %-10s\n",
      base, appends, every, "mode", "records", "ops/s", "p50-us",
      "p99-us", "max-stall-ms", "speedup");
  double inline_ops = 0;
  for (const bool background : {false, true}) {
    const std::string dir =
        FreshDir(background ? "e10g_background" : "e10g_inline");
    StoreOptions options;
    options.verify_payloads = false;
    int spec_id = 0;
    {
      auto fill = PersistentRepository::Init(dir, options);
      spec_id = SeedSpec(&fill.value());
      for (int i = 0; i < base; ++i) {
        fill.value()
            .AddExecution(spec_id, MakeExecution(fill.value(), spec_id))
            .value();
      }
      fill.value().Sync();
    }
    options.sync_each_append = true;
    options.snapshot_every = static_cast<uint64_t>(every);
    options.background_compaction = background;
    auto store = PersistentRepository::Open(dir, options);
    if (!store.ok()) {
      std::printf("E10g open failed: %s\n",
                  store.status().ToString().c_str());
      continue;
    }
    // Pre-build the executions: the timed loop measures appends (and
    // their stalls), not provenance generation.
    std::vector<Execution> execs;
    execs.reserve(static_cast<size_t>(appends));
    for (int i = 0; i < appends; ++i) {
      execs.push_back(MakeExecution(store.value(), spec_id));
    }
    std::vector<double> latencies_us;
    latencies_us.reserve(static_cast<size_t>(appends));
    Timer total;
    for (int i = 0; i < appends; ++i) {
      Timer one;
      store.value()
          .AddExecution(spec_id, std::move(execs[static_cast<size_t>(i)]))
          .value();
      latencies_us.push_back(static_cast<double>(one.ElapsedMicros()));
    }
    store.value().Sync();
    const double secs = total.ElapsedMicros() / 1e6;
    // The worker finishes outside the timed window — ingest never
    // waited for it; the join only checks it succeeded.
    const Status folds = store.value().WaitForCompaction();
    if (!folds.ok()) {
      std::printf("E10g compaction failed: %s\n",
                  folds.ToString().c_str());
    }
    std::sort(latencies_us.begin(), latencies_us.end());
    const double ops = appends / secs;
    const double p50 = latencies_us[latencies_us.size() / 2];
    const double p99 = latencies_us[latencies_us.size() * 99 / 100];
    const double max_ms = latencies_us.back() / 1e3;
    if (!background) inline_ops = ops;
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  inline_ops > 0 ? ops / inline_ops : 0.0);
    std::printf("%-24s %-10d %-12.0f %-12.1f %-12.1f %-14.2f %-10s\n",
                background ? "background CompactAsync" : "inline Compact",
                appends, ops, p50, p99, max_ms, speedup);
    json->Add(BenchJson::Row("e10g")
                  .Str("mode", background ? "background" : "inline")
                  .Num("base_records", base)
                  .Num("appends", appends)
                  .Num("snapshot_every", every)
                  .Num("ops_per_sec", ops)
                  .Num("p50_us", p50)
                  .Num("p99_us", p99)
                  .Num("max_stall_ms", max_ms)
                  .Num("speedup_vs_inline",
                       inline_ops > 0 ? ops / inline_ops : 0.0));
    fs::remove_all(dir);
  }
  std::printf("\n");
}

void BM_RecordEncode(benchmark::State& state) {
  const std::string payload(1024, 'p');
  std::string out;
  for (auto _ : state) {
    out.clear();
    AppendRecord(RecordType::kExecution, payload, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_RecordEncode);

void BM_RecordDecode(benchmark::State& state) {
  std::string buf;
  AppendRecord(RecordType::kExecution, std::string(1024, 'p'), &buf);
  for (auto _ : state) {
    RecordReader reader(buf);
    Record record;
    benchmark::DoNotOptimize(reader.Next(&record));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_RecordDecode);

void BM_Crc32(benchmark::State& state) {
  const std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(4096)->Arg(1 << 16);

void BM_Crc32Bytewise(benchmark::State& state) {
  const std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Crc32UpdateBytewise(0, data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_Crc32Bytewise)->Arg(4096);

void BM_WalAppend(benchmark::State& state) {
  const std::string dir = FreshDir("bm_wal_append");
  auto wal = WriteAheadLog::Create(dir, 0);
  const std::string payload(1024, 'p');
  for (auto _ : state) {
    wal.value().Append(RecordType::kExecution, payload).value();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(payload.size()));
  fs::remove_all(dir);
}
BENCHMARK(BM_WalAppend);

void BM_StoreAddExecution(benchmark::State& state) {
  const std::string dir = FreshDir("bm_store_add");
  auto store = PersistentRepository::Init(dir);
  int spec_id = SeedSpec(&store.value());
  for (auto _ : state) {
    state.PauseTiming();
    Execution exec = MakeExecution(store.value(), spec_id);
    state.ResumeTiming();
    store.value().AddExecution(spec_id, std::move(exec)).value();
  }
  fs::remove_all(dir);
}
BENCHMARK(BM_StoreAddExecution)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  // Smoke mode (tools/check.sh) scales record counts down 5x and skips
  // the google-benchmark micro benches; the JSON is written either way.
  const int scale = smoke ? 5 : 1;
  BenchJson json;
  TableAppendThroughput(scale, &json);
  TableRecoveryVsLogLength(scale, &json);
  TableSnapshotEffect(scale, &json);
  TableShardedRecovery(scale, &json);
  TableCodecReplay(scale, &json);
  TableConcurrentIngest(scale, &json);
  TableBackgroundCompaction(scale, &json);
  const char* json_path = std::getenv("BENCH_JSON");
  json.Write(json_path != nullptr ? json_path : "BENCH_store.json");
  if (smoke) return 0;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// E10: persistent store costs — append throughput, recovery time as a
// function of log length, and the effect of snapshot + compaction.
//
// Expected shape: appends are cheap and flat (buffered writes; fsync
// dominates when enabled); recovery time grows linearly with the WAL
// suffix length and collapses after compaction because the snapshot is
// loaded once instead of replaying per-record text payloads.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "src/common/crc32.h"
#include "src/common/timer.h"
#include "src/provenance/executor.h"
#include "src/repo/disease.h"
#include "src/store/codec.h"
#include "src/store/persistent_repository.h"
#include "src/store/record.h"
#include "src/store/sharded_repository.h"
#include "src/store/wal.h"
#include "src/workflow/builder.h"

namespace {

using namespace paw;

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("paw_bench_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// A store seeded with the disease spec; returns the spec id.
int SeedSpec(PersistentRepository* store) {
  auto spec = BuildDiseaseSpec();
  auto id = store->AddSpecification(std::move(spec).value(),
                                    DiseasePolicy());
  return id.value();
}

Execution MakeExecution(const PersistentRepository& store, int spec_id) {
  return RunDiseaseExecution(store.repo().entry(spec_id).spec).value();
}

void TableAppendThroughput() {
  std::printf(
      "=== E10a: WAL append throughput (disease executions) ===\n"
      "%-8s %-8s %-10s %-12s %-12s %-12s\n",
      "sync", "verify", "records", "total-MB", "records/s", "MB/s");
  for (int mode = 0; mode < 3; ++mode) {
    const bool sync = mode == 2;
    const bool verify = mode != 1;
    const int records = sync ? 200 : 5000;
    const std::string dir = FreshDir("append_" + std::to_string(mode));
    StoreOptions options;
    options.sync_each_append = sync;
    options.verify_payloads = verify;
    auto store = PersistentRepository::Init(dir, options);
    if (!store.ok()) continue;
    int spec_id = SeedSpec(&store.value());
    Timer timer;
    for (int i = 0; i < records; ++i) {
      store.value()
          .AddExecution(spec_id, MakeExecution(store.value(), spec_id))
          .value();
    }
    store.value().Sync();
    const double secs = timer.ElapsedMicros() / 1e6;
    const double mb =
        static_cast<double>(fs::file_size(dir + "/wal.log")) / 1e6;
    std::printf("%-8s %-8s %-10d %-12.2f %-12.0f %-12.1f\n",
                sync ? "yes" : "no", verify ? "yes" : "no", records, mb,
                records / secs, mb / secs);
    fs::remove_all(dir);
  }
  std::printf("\n");
}

void TableRecoveryVsLogLength() {
  std::printf(
      "=== E10b: recovery time vs WAL length ===\n"
      "%-10s %-12s %-12s %-14s\n",
      "records", "wal-KB", "open-ms", "ms/record");
  for (int records : {100, 500, 2000}) {
    const std::string dir =
        FreshDir("recovery_" + std::to_string(records));
    {
      auto store = PersistentRepository::Init(dir);
      int spec_id = SeedSpec(&store.value());
      for (int i = 0; i < records; ++i) {
        store.value()
            .AddExecution(spec_id, MakeExecution(store.value(), spec_id))
            .value();
      }
      store.value().Sync();
    }
    const double wal_kb =
        static_cast<double>(fs::file_size(dir + "/wal.log")) / 1e3;
    Timer timer;
    auto reopened = PersistentRepository::Open(dir);
    const double ms = timer.ElapsedMillis();
    if (!reopened.ok()) continue;
    std::printf("%-10d %-12.1f %-12.2f %-14.4f\n", records, wal_kb, ms,
                ms / records);
    fs::remove_all(dir);
  }
  std::printf("\n");
}

void TableSnapshotEffect() {
  std::printf(
      "=== E10c: snapshot + compaction effect (1000 executions) ===\n"
      "%-14s %-14s %-12s %-14s\n",
      "state", "snapshot-KB", "wal-KB", "open-ms");
  const std::string dir = FreshDir("snapshot");
  {
    auto store = PersistentRepository::Init(dir);
    int spec_id = SeedSpec(&store.value());
    for (int i = 0; i < 1000; ++i) {
      store.value()
          .AddExecution(spec_id, MakeExecution(store.value(), spec_id))
          .value();
    }
    store.value().Sync();
  }
  auto wal_kb = [&] {
    return static_cast<double>(fs::file_size(dir + "/wal.log")) / 1e3;
  };
  {
    Timer timer;
    auto reopened = PersistentRepository::Open(dir);
    const double ms = timer.ElapsedMillis();
    std::printf("%-14s %-14s %-12.1f %-14.2f\n", "log-only", "-",
                wal_kb(), ms);
    reopened.value().Compact();
  }
  double snapshot_kb = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snapshot-", 0) == 0) {
      snapshot_kb = static_cast<double>(entry.file_size()) / 1e3;
    }
  }
  {
    Timer timer;
    auto reopened = PersistentRepository::Open(dir);
    const double ms = timer.ElapsedMillis();
    std::printf("%-14s %-14.1f %-12.1f %-14.2f\n", "compacted",
                snapshot_kb, wal_kb(), ms);
  }
  fs::remove_all(dir);
  std::printf("\n");
}

/// A minimal one-workflow spec so E10d's 10k-record logs ingest and
/// replay quickly; recovery cost is then dominated by per-record
/// framing + parse, the component sharding parallelizes.
Specification MakeBenchSpec(const std::string& name) {
  SpecBuilder b(name);
  WorkflowId w = b.AddWorkflow("W1", "top", 0);
  (void)b.SetRoot(w);
  ModuleId in = b.AddInput(w);
  ModuleId m = b.AddModule(w, "M1", "Work");
  ModuleId out = b.AddOutput(w);
  (void)b.Connect(in, m, {"x"});
  (void)b.Connect(m, out, {"y"});
  return std::move(b).Build().value();
}

// E10d acceptance: recovery of a >= 10k-record log, sharded 4 ways and
// recovered with 4 threads, versus the equivalent single-directory
// store. Speedup scales with available cores (shards recover
// independently); on a single-core host the sharded numbers show the
// fan-out overhead instead.
void TableShardedRecovery() {
  constexpr int kShards = 4;
  constexpr int kSpecs = 8;
  constexpr int kRecords = 10000;
  std::printf(
      "=== E10d: sharded vs single recovery (%d specs, %d records) ===\n"
      "%-20s %-10s %-10s %-12s %-10s\n",
      kSpecs, kRecords, "layout", "shards", "threads", "open-ms",
      "speedup");
  StoreOptions options;
  options.verify_payloads = false;  // ingest path; inputs are known-good

  std::vector<std::string> names;
  for (int i = 0; i < kSpecs; ++i) {
    names.push_back("shardbench" + std::to_string(i));
  }
  FunctionRegistry fns;

  // Single-directory baseline.
  const std::string single_dir = FreshDir("e10d_single");
  {
    auto store = PersistentRepository::Init(single_dir, options);
    for (int i = 0; i < kSpecs; ++i) {
      store.value().AddSpecification(MakeBenchSpec(names[static_cast<size_t>(i)])).value();
    }
    for (int i = 0; i < kRecords; ++i) {
      const int sid = i % kSpecs;
      std::string value = "v";
      value += std::to_string(i);
      auto exec = Execute(store.value().repo().entry(sid).spec, fns,
                          {{"x", value}});
      store.value().AddExecution(sid, std::move(exec).value()).value();
    }
    store.value().Sync();
  }
  // Time Open only (destruction excluded), the same span the sharded
  // rows measure.
  double single_ms = 0;
  {
    Timer timer;
    auto reopened = PersistentRepository::Open(single_dir, options);
    single_ms = timer.ElapsedMillis();
    if (!reopened.ok()) {
      std::printf("E10d single open failed: %s\n",
                  reopened.status().ToString().c_str());
      return;
    }
  }
  std::printf("%-20s %-10d %-10d %-12.1f %-10s\n", "single", 1, 1,
              single_ms, "1.00x");

  // Sharded store with identical contents.
  const std::string sharded_dir = FreshDir("e10d_sharded");
  {
    auto store = ShardedRepository::Init(sharded_dir, kShards, options);
    std::vector<ShardedRepository::SpecRef> refs;
    for (int i = 0; i < kSpecs; ++i) {
      refs.push_back(
          store.value().AddSpecification(MakeBenchSpec(names[static_cast<size_t>(i)])).value());
    }
    for (int i = 0; i < kRecords; ++i) {
      const auto& ref = refs[static_cast<size_t>(i % kSpecs)];
      std::string value = "v";
      value += std::to_string(i);
      auto exec = Execute(
          store.value().shard(ref.shard).repo().entry(ref.id).spec, fns,
          {{"x", value}});
      store.value().AddExecution(ref, std::move(exec).value()).value();
    }
    store.value().Sync();
  }
  for (int threads : {1, kShards}) {
    Timer timer;
    auto reopened = ShardedRepository::Open(sharded_dir, options, threads);
    const double ms = timer.ElapsedMillis();
    if (!reopened.ok()) {
      std::printf("E10d sharded open (threads=%d) failed: %s\n", threads,
                  reopened.status().ToString().c_str());
      continue;
    }
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", single_ms / ms);
    std::printf("%-20s %-10d %-10d %-12.1f %-10s\n", "sharded", kShards,
                threads, ms, speedup);
  }
  fs::remove_all(single_dir);
  fs::remove_all(sharded_dir);
  std::printf("\n");
}

void BM_RecordEncode(benchmark::State& state) {
  const std::string payload(1024, 'p');
  std::string out;
  for (auto _ : state) {
    out.clear();
    AppendRecord(RecordType::kExecution, payload, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_RecordEncode);

void BM_RecordDecode(benchmark::State& state) {
  std::string buf;
  AppendRecord(RecordType::kExecution, std::string(1024, 'p'), &buf);
  for (auto _ : state) {
    RecordReader reader(buf);
    Record record;
    benchmark::DoNotOptimize(reader.Next(&record));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_RecordDecode);

void BM_Crc32(benchmark::State& state) {
  const std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(4096)->Arg(1 << 16);

void BM_WalAppend(benchmark::State& state) {
  const std::string dir = FreshDir("bm_wal_append");
  auto wal = WriteAheadLog::Create(dir + "/wal.log", 0);
  const std::string payload(1024, 'p');
  for (auto _ : state) {
    wal.value().Append(RecordType::kExecution, payload);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(payload.size()));
  fs::remove_all(dir);
}
BENCHMARK(BM_WalAppend);

void BM_StoreAddExecution(benchmark::State& state) {
  const std::string dir = FreshDir("bm_store_add");
  auto store = PersistentRepository::Init(dir);
  int spec_id = SeedSpec(&store.value());
  for (auto _ : state) {
    state.PauseTiming();
    Execution exec = MakeExecution(store.value(), spec_id);
    state.ResumeTiming();
    store.value().AddExecution(spec_id, std::move(exec)).value();
  }
  fs::remove_all(dir);
}
BENCHMARK(BM_StoreAddExecution)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  TableAppendThroughput();
  TableRecoveryVsLogLength();
  TableSnapshotEffect();
  TableShardedRecovery();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// E4: keyword search latency — full scan vs inverted-index pruning, as
// the repository grows (paper Sec. 4, "efficient search with privacy
// guarantees").
//
// Expected shape: index latency grows much more slowly than scan latency
// with repository size; both return identical answers.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "src/common/random.h"
#include "src/common/timer.h"
#include "src/query/keyword_search.h"
#include "src/repo/workload.h"

namespace {

using namespace paw;

std::unique_ptr<Repository> BuildRepo(int num_specs) {
  auto repo = std::make_unique<Repository>();
  Rng rng(2026);
  WorkloadParams params;
  params.depth = 2;
  params.modules_per_workflow = 5;
  for (int i = 0; i < num_specs; ++i) {
    auto spec = GenerateSpec(params, &rng, "spec" + std::to_string(i));
    if (spec.ok()) {
      (void)repo->AddSpecification(std::move(spec).value());
    }
  }
  return repo;
}

void TableE4() {
  std::printf(
      "=== E4: keyword search, scan vs inverted index ===\n"
      "%-8s %-12s %-12s %-9s %-10s\n",
      "specs", "scan(ms)", "index(ms)", "speedup", "answers");
  WorkloadParams params;
  Rng qrng(7);
  for (int num_specs : {10, 50, 100, 500}) {
    auto repo = BuildRepo(num_specs);
    InvertedIndex index;
    index.Build(*repo);
    TfIdfScorer scorer;
    scorer.Build(index);

    // A mix of 10 three-term queries (selective enough that candidate
    // pruning matters).
    std::vector<std::vector<std::string>> queries;
    for (int q = 0; q < 10; ++q) {
      queries.push_back(GenerateQuery(params, &qrng, 3));
    }
    KeywordSearchOptions scan_opts;
    scan_opts.use_index = false;
    KeywordSearchOptions index_opts;

    Timer scan_timer;
    size_t scan_answers = 0;
    for (const auto& q : queries) {
      auto a = KeywordSearch(*repo, nullptr, &scorer, q, 1, scan_opts);
      if (a.ok()) scan_answers += a.value().size();
    }
    double scan_ms = scan_timer.ElapsedMillis();

    Timer index_timer;
    size_t index_answers = 0;
    for (const auto& q : queries) {
      auto a = KeywordSearch(*repo, &index, &scorer, q, 1, index_opts);
      if (a.ok()) index_answers += a.value().size();
    }
    double index_ms = index_timer.ElapsedMillis();

    std::printf("%-8d %-12.2f %-12.2f %-9.1f %zu/%zu\n", num_specs,
                scan_ms, index_ms,
                index_ms > 0 ? scan_ms / index_ms : 0.0, index_answers,
                scan_answers);
  }
  std::printf("\n");
}

void BM_SearchScan(benchmark::State& state) {
  auto repo = BuildRepo(static_cast<int>(state.range(0)));
  TfIdfScorer scorer;
  KeywordSearchOptions opts;
  opts.use_index = false;
  for (auto _ : state) {
    auto a = KeywordSearch(*repo, nullptr, &scorer, {"kw0", "kw1"}, 1,
                           opts);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_SearchScan)->Arg(10)->Arg(100);

void BM_SearchIndexed(benchmark::State& state) {
  auto repo = BuildRepo(static_cast<int>(state.range(0)));
  auto index = std::make_unique<InvertedIndex>();
  index->Build(*repo);
  TfIdfScorer scorer;
  scorer.Build(*index);
  for (auto _ : state) {
    auto a = KeywordSearch(*repo, index.get(), &scorer, {"kw0", "kw1"},
                           1, {});
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_SearchIndexed)->Arg(10)->Arg(100)->Arg(500);

void BM_IndexBuild(benchmark::State& state) {
  auto repo = BuildRepo(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    InvertedIndex index;
    index.Build(*repo);
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_IndexBuild)->Arg(100);

}  // namespace

int main(int argc, char** argv) {
  TableE4();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}

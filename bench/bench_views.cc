// E7: view expansion cost vs hierarchy depth and prefix size (the core
// operation behind access views, Sec. 2).
//
// Expected shape: expansion time grows with the number of visible
// modules (roughly linear in the expanded size), not with the total
// specification size; collapsed prefixes stay cheap even for deep
// hierarchies.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "src/common/random.h"
#include "src/common/timer.h"
#include "src/repo/workload.h"
#include "src/workflow/hierarchy.h"
#include "src/workflow/view.h"

namespace {

using namespace paw;

struct SpecWorld {
  std::unique_ptr<Specification> spec;
  ExpansionHierarchy hierarchy;
};

SpecWorld BuildSpec(int depth) {
  Rng rng(123);
  WorkloadParams params;
  params.depth = depth;
  params.modules_per_workflow = 4;
  params.composite_prob = 0.5;
  SpecWorld world;
  auto spec = GenerateSpec(params, &rng, "views");
  world.spec = std::make_unique<Specification>(std::move(spec).value());
  world.hierarchy = ExpansionHierarchy::Build(*world.spec);
  return world;
}

void TableE7() {
  std::printf(
      "=== E7: view expansion cost ===\n"
      "%-7s %-10s %-10s %-12s %-14s %-14s\n",
      "depth", "workflows", "modules", "prefix", "visible", "expand(us)");
  for (int depth : {1, 2, 3, 4, 5, 6, 7}) {
    SpecWorld world = BuildSpec(depth);
    struct Row {
      const char* name;
      Prefix prefix;
    };
    std::vector<Row> rows;
    rows.push_back({"root", world.hierarchy.RootPrefix()});
    rows.push_back(
        {"level1", world.hierarchy.AccessPrefix(*world.spec, 1)});
    rows.push_back({"full", world.hierarchy.FullPrefix()});
    for (const Row& row : rows) {
      constexpr int kReps = 200;
      Timer timer;
      int visible = 0;
      for (int i = 0; i < kReps; ++i) {
        auto view = ExpandPrefix(*world.spec, world.hierarchy, row.prefix);
        visible = view.value().num_visible();
        benchmark::DoNotOptimize(view);
      }
      std::printf("%-7d %-10d %-10d %-12s %-14d %-14.2f\n", depth,
                  world.spec->num_workflows(), world.spec->num_modules(),
                  row.name, visible, timer.ElapsedMicros() / kReps);
    }
  }
  std::printf("\n");
}

void BM_ExpandFull(benchmark::State& state) {
  SpecWorld world = BuildSpec(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto view = FullExpansion(*world.spec, world.hierarchy);
    benchmark::DoNotOptimize(view);
  }
}
BENCHMARK(BM_ExpandFull)->Arg(2)->Arg(4)->Arg(6);

void BM_ExpandRoot(benchmark::State& state) {
  SpecWorld world = BuildSpec(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto view = ExpandPrefix(*world.spec, world.hierarchy,
                             world.hierarchy.RootPrefix());
    benchmark::DoNotOptimize(view);
  }
}
BENCHMARK(BM_ExpandRoot)->Arg(2)->Arg(4)->Arg(6);

void BM_EnumeratePrefixes(benchmark::State& state) {
  SpecWorld world = BuildSpec(3);
  for (auto _ : state) {
    auto prefixes = world.hierarchy.EnumeratePrefixes();
    benchmark::DoNotOptimize(prefixes);
  }
}
BENCHMARK(BM_EnumeratePrefixes);

}  // namespace

int main(int argc, char** argv) {
  TableE7();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// E1: module privacy — hidden-weight cost vs Gamma for the exhaustive
// optimum, the greedy heuristic, and the outputs-first baseline, on
// random boolean modules (ref [4]'s problem).
//
// Expected shape: cost grows with Gamma for every algorithm;
// optimal <= greedy <= output-only; greedy stays within a small factor
// of optimal.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/common/random.h"
#include "src/common/timer.h"
#include "src/privacy/module_privacy.h"

namespace {

using namespace paw;

constexpr int kSeeds = 25;

void TableE1() {
  std::printf(
      "=== E1: min-cost safe subsets (random modules, %d seeds) ===\n"
      "%-10s %-6s %-10s %-10s %-12s %-14s\n",
      kSeeds, "in+out", "Gamma", "optimal", "greedy", "output-only",
      "greedy/optimal");
  for (auto [num_in, num_out] :
       {std::pair{2, 2}, std::pair{3, 2}, std::pair{4, 3}}) {
    for (int64_t gamma : {2, 4, 8}) {
      double sum_opt = 0;
      double sum_greedy = 0;
      double sum_out = 0;
      int feasible = 0;
      for (int seed = 0; seed < kSeeds; ++seed) {
        Rng rng(static_cast<uint64_t>(seed) * 7919 + num_in * 131 +
                num_out * 17 + static_cast<uint64_t>(gamma));
        Relation rel = Relation::Random(&rng, num_in, num_out, 2);
        if (rel.MaxAchievableGamma() < gamma) continue;
        auto opt = OptimalSafeSubset(rel, gamma);
        auto greedy = GreedySafeSubset(rel, gamma);
        auto out_only = OutputOnlySafeSubset(rel, gamma);
        if (!opt.ok() || !greedy.ok() || !out_only.ok()) continue;
        ++feasible;
        sum_opt += opt.value().cost;
        sum_greedy += greedy.value().cost;
        sum_out += out_only.value().cost;
      }
      if (feasible == 0) continue;
      std::printf("%d+%-8d %-6lld %-10.2f %-10.2f %-12.2f %-14.3f\n",
                  num_in, num_out, static_cast<long long>(gamma),
                  sum_opt / feasible, sum_greedy / feasible,
                  sum_out / feasible,
                  sum_opt > 0 ? sum_greedy / sum_opt : 1.0);
    }
  }
  std::printf("\n");
}

void TableE1b() {
  std::printf(
      "=== E1b: exact solvers ablation — enumeration vs branch&bound ===\n"
      "%-8s %-16s %-16s %-10s\n",
      "attrs", "enumerate(us)", "bnb(us)", "same-cost");
  for (int attrs : {6, 8, 10, 12, 14}) {
    Rng rng(1234 + static_cast<uint64_t>(attrs));
    Relation rel = Relation::Random(&rng, attrs / 2, attrs - attrs / 2, 2);
    constexpr int kReps = 5;
    Timer enum_timer;
    double enum_cost = 0;
    for (int r = 0; r < kReps; ++r) {
      auto sol = OptimalSafeSubset(rel, 4, /*max_attrs=*/22);
      if (sol.ok()) enum_cost = sol.value().cost;
    }
    double enum_us = enum_timer.ElapsedMicros() / kReps;
    Timer bnb_timer;
    double bnb_cost = 0;
    for (int r = 0; r < kReps; ++r) {
      auto sol = BranchAndBoundSafeSubset(rel, 4);
      if (sol.ok()) bnb_cost = sol.value().cost;
    }
    double bnb_us = bnb_timer.ElapsedMicros() / kReps;
    std::printf("%-8d %-16.1f %-16.1f %-10s\n", attrs, enum_us, bnb_us,
                std::abs(enum_cost - bnb_cost) < 1e-9 ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_OptimalSafeSubset(benchmark::State& state) {
  int attrs = static_cast<int>(state.range(0));
  Rng rng(42);
  Relation rel = Relation::Random(&rng, attrs / 2, attrs - attrs / 2, 2);
  for (auto _ : state) {
    auto sol = OptimalSafeSubset(rel, 4);
    benchmark::DoNotOptimize(sol);
  }
}
BENCHMARK(BM_OptimalSafeSubset)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_GreedySafeSubset(benchmark::State& state) {
  int attrs = static_cast<int>(state.range(0));
  Rng rng(42);
  Relation rel = Relation::Random(&rng, attrs / 2, attrs - attrs / 2, 2);
  for (auto _ : state) {
    auto sol = GreedySafeSubset(rel, 4);
    benchmark::DoNotOptimize(sol);
  }
}
BENCHMARK(BM_GreedySafeSubset)->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Arg(12);

void BM_BranchAndBound(benchmark::State& state) {
  int attrs = static_cast<int>(state.range(0));
  Rng rng(42);
  Relation rel = Relation::Random(&rng, attrs / 2, attrs - attrs / 2, 2);
  for (auto _ : state) {
    auto sol = BranchAndBoundSafeSubset(rel, 4);
    benchmark::DoNotOptimize(sol);
  }
}
BENCHMARK(BM_BranchAndBound)->Arg(6)->Arg(10)->Arg(14);

}  // namespace

int main(int argc, char** argv) {
  TableE1();
  TableE1b();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// E9: user-group result cache hit rates under Zipf query mixes (paper
// Sec. 4, "consider user groups when utilizing cached information").
//
// Expected shape: hit rate rises with query skew and falls as the
// number of distinct privacy groups grows (each group owns a private
// partition); capacity pressure lowers all curves.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/common/random.h"
#include "src/index/result_cache.h"

namespace {

using namespace paw;

void TableE9() {
  std::printf(
      "=== E9: group-partitioned cache, Zipf query mix ===\n"
      "%-8s %-8s %-10s %-10s %-10s\n",
      "groups", "skew", "capacity", "hit-rate", "evictions");
  constexpr int kQueries = 20000;
  constexpr int kDistinctQueries = 200;
  for (int groups : {1, 2, 5, 10}) {
    for (double skew : {0.0, 0.8, 1.2}) {
      for (size_t capacity : {size_t{64}, size_t{256}}) {
        ResultCache cache(capacity);
        Rng rng(static_cast<uint64_t>(groups * 100 + capacity) +
                static_cast<uint64_t>(skew * 10));
        for (int q = 0; q < kQueries; ++q) {
          std::string group =
              "g" + std::to_string(rng.Uniform(groups));
          std::string key =
              "q" + std::to_string(rng.Zipf(kDistinctQueries, skew));
          if (!cache.Get(group, key).has_value()) {
            cache.Put(group, key, "answer:" + key);
          }
        }
        std::printf("%-8d %-8.1f %-10zu %-10.3f %-10lld\n", groups, skew,
                    capacity, cache.stats().HitRate(),
                    static_cast<long long>(cache.stats().evictions));
      }
    }
  }
  std::printf("\n");
}

void BM_CacheGetHit(benchmark::State& state) {
  ResultCache cache(1024);
  cache.Put("g", "key", "value");
  for (auto _ : state) {
    auto v = cache.Get("g", "key");
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_CacheGetHit);

void BM_CachePutEvict(benchmark::State& state) {
  ResultCache cache(64);
  int i = 0;
  for (auto _ : state) {
    cache.Put("g", "key" + std::to_string(i++ % 1000), "value");
  }
}
BENCHMARK(BM_CachePutEvict);

void BM_CacheMixed(benchmark::State& state) {
  ResultCache cache(256);
  Rng rng(1);
  for (auto _ : state) {
    std::string key = "q" + std::to_string(rng.Zipf(200, 1.0));
    if (!cache.Get("g", key).has_value()) {
      cache.Put("g", key, "answer");
    }
  }
}
BENCHMARK(BM_CacheMixed);

}  // namespace

int main(int argc, char** argv) {
  TableE9();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}

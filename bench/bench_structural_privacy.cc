// E2: structural privacy — edge deletion vs clustering at equal privacy
// on layered random DAGs.
//
// Expected shape: both hide all requested pairs; deletion is always
// sound but destroys more true reachability (lower utility) as k grows;
// clustering preserves more truth but fabricates extraneous pairs
// (unsound views) — the paper's central trade-off.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/common/random.h"
#include "src/graph/transitive.h"
#include "src/privacy/sound_clustering.h"
#include "src/privacy/structural_privacy.h"
#include "src/repo/workload.h"

namespace {

using namespace paw;

std::vector<SensitivePair> PickPairs(const Digraph& g, Rng* rng, int k) {
  TransitiveClosure tc = TransitiveClosure::Compute(g);
  std::vector<SensitivePair> all;
  for (NodeIndex u = 0; u < g.num_nodes(); ++u) {
    for (NodeIndex v = 0; v < g.num_nodes(); ++v) {
      if (u != v && tc.Reaches(u, v)) all.push_back({u, v});
    }
  }
  rng->Shuffle(&all);
  if (static_cast<int>(all.size()) > k) all.resize(static_cast<size_t>(k));
  return all;
}

void TableE2() {
  std::printf(
      "=== E2: structural privacy mechanisms (layered DAGs, 5 seeds) ===\n"
      "%-7s %-4s | %-21s | %-21s | %-21s\n"
      "%-7s %-4s | %-10s %-10s | %-10s %-10s | %-10s %-10s\n",
      "", "", "edge deletion", "naive clustering", "sound clustering",
      "nodes", "k", "utility", "edges-del", "utility", "extraneous",
      "utility", "extraneous");
  for (int nodes : {20, 40, 80, 160, 320}) {
    for (int k : {1, 2, 4}) {
      double del_util = 0;
      double del_edges = 0;
      double clu_util = 0;
      double clu_extra = 0;
      double snd_util = 0;
      double snd_extra = 0;
      int runs = 0;
      for (uint64_t seed = 1; seed <= 5; ++seed) {
        Rng rng(seed * 1000 + static_cast<uint64_t>(nodes) + k);
        Digraph g = RandomLayeredDag(&rng, nodes / 5, 5, 0.3);
        auto pairs = PickPairs(g, &rng, k);
        if (pairs.empty()) continue;
        auto del = HideByEdgeDeletion(g, pairs);
        auto clu = HideByClustering(g, pairs);
        auto snd = HideBySoundClustering(g, pairs);
        if (!del.ok() || !clu.ok() || !snd.ok()) continue;
        ++runs;
        del_util += del.value().metrics.Utility();
        del_edges += del.value().metrics.mechanism_size;
        clu_util += clu.value().metrics.Utility();
        clu_extra += static_cast<double>(
            clu.value().metrics.extraneous_pairs);
        snd_util += snd.value().metrics.Utility();
        snd_extra += static_cast<double>(
            snd.value().metrics.extraneous_pairs);
      }
      if (runs == 0) continue;
      std::printf(
          "%-7d %-4d | %-10.3f %-10.1f | %-10.3f %-10.1f | %-10.3f "
          "%-10.1f\n",
          nodes, k, del_util / runs, del_edges / runs, clu_util / runs,
          clu_extra / runs, snd_util / runs, snd_extra / runs);
    }
  }
  std::printf("\n");
}

void BM_EdgeDeletion(benchmark::State& state) {
  int nodes = static_cast<int>(state.range(0));
  Rng rng(7);
  Digraph g = RandomLayeredDag(&rng, nodes / 5, 5, 0.3);
  auto pairs = PickPairs(g, &rng, 2);
  for (auto _ : state) {
    auto result = HideByEdgeDeletion(g, pairs);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EdgeDeletion)->Arg(20)->Arg(80)->Arg(320);

void BM_Clustering(benchmark::State& state) {
  int nodes = static_cast<int>(state.range(0));
  Rng rng(7);
  Digraph g = RandomLayeredDag(&rng, nodes / 5, 5, 0.3);
  auto pairs = PickPairs(g, &rng, 2);
  for (auto _ : state) {
    auto result = HideByClustering(g, pairs);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Clustering)->Arg(20)->Arg(80)->Arg(320);

void BM_SoundClustering(benchmark::State& state) {
  int nodes = static_cast<int>(state.range(0));
  Rng rng(7);
  Digraph g = RandomLayeredDag(&rng, nodes / 5, 5, 0.3);
  auto pairs = PickPairs(g, &rng, 2);
  for (auto _ : state) {
    auto result = HideBySoundClustering(g, pairs);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SoundClustering)->Arg(20)->Arg(80);

}  // namespace

int main(int argc, char** argv) {
  TableE2();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// E8: lineage / reachability probes — per-query BFS vs the materialized
// closure index (paper Sec. 4, indexing for efficient provenance search).
//
// Expected shape: the index answers pair probes in O(1) after a build
// cost that grows with |V||E|; BFS wins for a handful of queries, the
// index wins under query-heavy workloads; index memory grows
// quadratically (bitset rows).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/common/random.h"
#include "src/common/timer.h"
#include "src/graph/algorithms.h"
#include "src/index/reachability_index.h"
#include "src/repo/workload.h"

namespace {

using namespace paw;

void TableE8() {
  std::printf(
      "=== E8: reachability probes, BFS vs closure index ===\n"
      "%-8s %-9s %-12s %-12s %-12s %-10s\n",
      "nodes", "edges", "bfs(us)", "probe(us)", "build(ms)", "mem(KB)");
  Rng rng(3);
  for (int nodes : {100, 400, 1600, 6400}) {
    Digraph g = RandomLayeredDag(&rng, nodes / 20, 20, 0.15);
    // Query workload: 2000 random distinct pairs (u == v is trivially
    // reachable for BFS but irreflexive for the closure; exclude it).
    std::vector<std::pair<NodeIndex, NodeIndex>> queries;
    while (queries.size() < 2000) {
      auto u = static_cast<NodeIndex>(rng.Uniform(g.num_nodes()));
      auto v = static_cast<NodeIndex>(rng.Uniform(g.num_nodes()));
      if (u != v) queries.emplace_back(u, v);
    }

    Timer bfs_timer;
    int64_t bfs_hits = 0;
    for (const auto& [u, v] : queries) bfs_hits += PathExists(g, u, v);
    double bfs_us = bfs_timer.ElapsedMicros() / queries.size();

    Timer build_timer;
    ReachabilityIndex index(g);
    double build_ms = build_timer.ElapsedMillis();

    Timer probe_timer;
    int64_t idx_hits = 0;
    for (const auto& [u, v] : queries) idx_hits += index.Reaches(u, v);
    double probe_us = probe_timer.ElapsedMicros() / queries.size();

    if (bfs_hits != idx_hits) {
      std::printf("MISMATCH bfs=%lld index=%lld\n",
                  static_cast<long long>(bfs_hits),
                  static_cast<long long>(idx_hits));
    }
    std::printf("%-8d %-9lld %-12.3f %-12.4f %-12.2f %-10.1f\n",
                g.num_nodes(), static_cast<long long>(g.num_edges()),
                bfs_us, probe_us, build_ms,
                index.ApproxBytes() / 1024.0);
  }
  std::printf("\n");
}

void BM_BfsProbe(benchmark::State& state) {
  Rng rng(4);
  Digraph g = RandomLayeredDag(&rng, static_cast<int>(state.range(0)) / 20,
                               20, 0.15);
  NodeIndex u = 0;
  NodeIndex v = g.num_nodes() - 1;
  for (auto _ : state) {
    bool r = PathExists(g, u, v);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_BfsProbe)->Arg(100)->Arg(1600);

void BM_IndexProbe(benchmark::State& state) {
  Rng rng(4);
  Digraph g = RandomLayeredDag(&rng, static_cast<int>(state.range(0)) / 20,
                               20, 0.15);
  ReachabilityIndex index(g);
  NodeIndex u = 0;
  NodeIndex v = g.num_nodes() - 1;
  for (auto _ : state) {
    bool r = index.Reaches(u, v);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_IndexProbe)->Arg(100)->Arg(1600);

void BM_IndexBuild(benchmark::State& state) {
  Rng rng(4);
  Digraph g = RandomLayeredDag(&rng, static_cast<int>(state.range(0)) / 20,
                               20, 0.15);
  for (auto _ : state) {
    ReachabilityIndex index(g);
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_IndexBuild)->Arg(100)->Arg(1600);

}  // namespace

int main(int argc, char** argv) {
  TableE8();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// E11: pawd network front end — ops/s and p50/p99 request latency as
// a function of concurrent connections, sync (one round trip per op)
// vs pipelined (a window of outstanding ADD_EXECUTIONs per
// connection).
//
// Expected shape: sync throughput is bounded by round trips and — with
// sync=each — by one durable group commit per op per connection;
// pipelining lets every connection keep a window in flight, so the
// server's per-shard writer queues batch many requests into shared
// group commits and throughput scales well past 3x sync at 8
// connections. p99 pipelined latency is higher than sync (queueing),
// which is the classic throughput/latency trade.
//
// Results land in BENCH_server.json ($BENCH_JSON overrides the path)
// as one row per (mode, connections) cell. `--smoke` runs a scaled-
// down table sized for CI.

#include <algorithm>
#include <functional>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "src/client/paw_client.h"
#include "src/common/metrics.h"
#include "src/common/timer.h"
#include "src/provenance/executor.h"
#include "src/provenance/serialize.h"
#include "src/workflow/builder.h"
#include "src/server/server.h"
#include "src/store/sharded_repository.h"
#include "src/workflow/serialize.h"

namespace {

using namespace paw;

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("paw_bench_srv_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Same flat-JSON emitter as bench_store.cc (kept local: the two
/// benches are independent binaries with independent artifacts).
class BenchJson {
 public:
  class Row {
   public:
    explicit Row(std::string experiment) {
      json_ = "{\"experiment\":\"" + experiment + "\"";
    }
    Row& Str(const char* key, const std::string& value) {
      json_ += std::string(",\"") + key + "\":\"" + value + "\"";
      return *this;
    }
    Row& Num(const char* key, double value) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", value);
      json_ += std::string(",\"") + key + "\":" + buf;
      return *this;
    }
    std::string Finish() const { return json_ + "}"; }

   private:
    std::string json_;
  };

  void Add(const Row& row) { rows_.push_back(row.Finish()); }

  void Write(const std::string& path) const {
    std::string out = "{\"bench\":\"server\",\"experiments\":[\n";
    for (size_t i = 0; i < rows_.size(); ++i) {
      out += "  " + rows_[i] + (i + 1 < rows_.size() ? ",\n" : "\n");
    }
    out += "]}\n";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("wrote %s (%zu experiment rows)\n", path.c_str(),
                rows_.size());
  }

 private:
  std::vector<std::string> rows_;
};

double Percentile(std::vector<double>* values, double p) {
  if (values->empty()) return 0;
  std::sort(values->begin(), values->end());
  const size_t index = std::min(
      values->size() - 1,
      static_cast<size_t>(p * static_cast<double>(values->size())));
  return (*values)[index];
}

struct CellResult {
  double secs = 0;
  double ops = 0;
  double ops_per_s = 0;
  double p50_us = 0;
  double p99_us = 0;
};

/// One METRICS round trip (HELLO + AUTH + METRICS on a throwaway
/// connection) — exercises the wire surface rather than peeking at the
/// in-process registry.
MetricsSnapshot FetchMetrics(int port) {
  auto client = PawClient::Connect("127.0.0.1", port);
  if (!client.ok() || !client.value().Auth("bench").ok()) {
    std::fprintf(stderr, "metrics connect failed\n");
    std::exit(1);
  }
  auto resp = client.value().Metrics();
  if (!resp.ok()) {
    std::fprintf(stderr, "METRICS: %s\n",
                 resp.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(resp.value().snapshot);
}

uint64_t CounterDelta(const MetricsSnapshot& pre,
                      const MetricsSnapshot& post,
                      std::string_view prefix) {
  return post.SumCounters(prefix) - pre.SumCounters(prefix);
}

uint64_t HistCount(const MetricsSnapshot& snap, std::string_view name) {
  const MetricSample* s = snap.Find(name);
  return s != nullptr ? s->histogram.count : 0;
}

/// Pulls `ops_per_s` of the dedicated gate row at `connections` out of
/// a prior BENCH_server.json (the PAW_NO_METRICS baseline run). The
/// file is our own flat emitter's output, so a string scan is enough.
double BaselineGateOps(const std::string& path, int connections) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
    std::exit(1);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string contents = buffer.str();
  const std::string conn_key =
      "\"connections\":" + std::to_string(connections);
  std::istringstream lines(contents);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("\"mode\":\"gate\"") == std::string::npos ||
        line.find(conn_key) == std::string::npos) {
      continue;
    }
    const size_t at = line.find("\"ops_per_s\":");
    if (at == std::string::npos) continue;
    return std::strtod(line.c_str() + at + std::strlen("\"ops_per_s\":"),
                       nullptr);
  }
  std::fprintf(stderr, "no gate conns=%d row in baseline %s\n",
               connections, path.c_str());
  std::exit(1);
}

/// Runs `connections` client threads, each issuing `ops_per_conn`
/// ADD_EXECUTIONs against its own tenant spec (connection c uses spec
/// c mod #specs — the multi-tenant shape the server shards for);
/// `window` = 1 is the sync mode (await every ack before the next
/// send), larger windows pipeline.
CellResult RunCell(int port, const std::vector<std::string>& spec_names,
                   const std::vector<std::vector<std::string>>& exec_texts,
                   int connections, int ops_per_conn, int window) {
  std::vector<std::thread> threads;
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(connections));
  std::atomic<int> failures{0};
  Timer timer;
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      auto client = PawClient::Connect("127.0.0.1", port);
      if (!client.ok() || !client.value().Auth("bench").ok()) {
        ++failures;
        return;
      }
      const size_t tenant =
          static_cast<size_t>(c) % spec_names.size();
      const std::string& spec_name = spec_names[tenant];
      const std::vector<std::string>& texts = exec_texts[tenant];
      auto& lat = latencies[static_cast<size_t>(c)];
      lat.reserve(static_cast<size_t>(ops_per_conn));
      std::vector<std::pair<PawTicket, double>> in_flight;
      Timer clock;
      for (int i = 0; i < ops_per_conn; ++i) {
        const std::string& text =
            texts[static_cast<size_t>((c + i)) % texts.size()];
        auto ticket =
            client.value().SendAddExecution(spec_name, text);
        if (!ticket.ok()) {
          ++failures;
          return;
        }
        in_flight.emplace_back(ticket.value(), clock.ElapsedMicros());
        if (in_flight.size() >= static_cast<size_t>(window)) {
          auto [front, sent_at] = in_flight.front();
          in_flight.erase(in_flight.begin());
          if (!client.value().AwaitAddExecution(front).ok()) {
            ++failures;
            return;
          }
          lat.push_back(clock.ElapsedMicros() - sent_at);
        }
      }
      for (auto& [ticket, sent_at] : in_flight) {
        if (!client.value().AwaitAddExecution(ticket).ok()) {
          ++failures;
          return;
        }
        lat.push_back(clock.ElapsedMicros() - sent_at);
      }
    });
  }
  for (auto& t : threads) t.join();
  CellResult result;
  result.secs = timer.ElapsedMicros() / 1e6;
  if (failures.load() > 0) {
    std::fprintf(stderr, "bench cell failed (%d client errors)\n",
                 failures.load());
    std::exit(1);
  }
  std::vector<double> all;
  for (auto& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  result.ops = static_cast<double>(connections) * ops_per_conn;
  result.ops_per_s = result.ops / result.secs;
  result.p50_us = Percentile(&all, 0.50);
  result.p99_us = Percentile(&all, 0.99);
  return result;
}

struct QueryCellResult {
  double secs = 0;
  double ops = 0;
  double qps = 0;
  double p50_us = 0;
  double p99_us = 0;
};

/// E12 query side: `connections` client threads, each alternating
/// KEYWORD_SEARCH (hits every tenant spec via the "worker" module
/// token — the cached path) with GET_EXECUTION ordinal 0 (uncached
/// pinned-view lookup). One warmup search per connection pays the
/// engine's one-time view catch-up outside the timed loop.
QueryCellResult RunQueryCell(int port,
                             const std::vector<std::string>& spec_names,
                             int connections, int queries_per_conn) {
  std::vector<std::thread> threads;
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(connections));
  std::atomic<int> failures{0};
  Timer timer;
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      auto client = PawClient::Connect("127.0.0.1", port);
      if (!client.ok() || !client.value().Auth("bench").ok()) {
        ++failures;
        return;
      }
      if (!client.value().Search({"worker"}).ok()) {
        ++failures;
        return;
      }
      auto& lat = latencies[static_cast<size_t>(c)];
      lat.reserve(static_cast<size_t>(queries_per_conn));
      Timer clock;
      for (int i = 0; i < queries_per_conn; ++i) {
        const double start = clock.ElapsedMicros();
        bool ok;
        if (i % 2 == 0) {
          ok = client.value().Search({"worker"}).ok();
        } else {
          const std::string& name =
              spec_names[static_cast<size_t>(c + i) % spec_names.size()];
          ok = client.value().GetExecution(name, 0).ok();
        }
        if (!ok) {
          ++failures;
          return;
        }
        lat.push_back(clock.ElapsedMicros() - start);
      }
    });
  }
  for (auto& t : threads) t.join();
  QueryCellResult result;
  result.secs = timer.ElapsedMicros() / 1e6;
  if (failures.load() > 0) {
    std::fprintf(stderr, "e12 query cell failed (%d client errors)\n",
                 failures.load());
    std::exit(1);
  }
  std::vector<double> all;
  for (auto& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  result.ops = static_cast<double>(all.size());
  result.qps = result.ops / result.secs;
  result.p50_us = Percentile(&all, 0.50);
  result.p99_us = Percentile(&all, 0.99);
  return result;
}

/// E12 write side: background writer connections keep a pipelined
/// ADD_EXECUTION window in flight until `Stop` is called.
class IngestLoad {
 public:
  IngestLoad(int port, const std::vector<std::string>& spec_names,
             const std::vector<std::vector<std::string>>& exec_texts,
             int connections, int window) {
    for (int c = 0; c < connections; ++c) {
      threads_.emplace_back([&, c, port, window] {
        auto client = PawClient::Connect("127.0.0.1", port);
        if (!client.ok() || !client.value().Auth("bench").ok()) {
          ++failures_;
          return;
        }
        const size_t tenant =
            static_cast<size_t>(c) % spec_names.size();
        const std::string& spec_name = spec_names[tenant];
        const std::vector<std::string>& texts = exec_texts[tenant];
        std::vector<PawTicket> in_flight;
        long acked = 0;
        for (int i = 0; !stop_.load(std::memory_order_relaxed); ++i) {
          const std::string& text =
              texts[static_cast<size_t>(c + i) % texts.size()];
          auto ticket = client.value().SendAddExecution(spec_name, text);
          if (!ticket.ok()) {
            ++failures_;
            return;
          }
          in_flight.push_back(ticket.value());
          if (in_flight.size() >= static_cast<size_t>(window)) {
            if (!client.value()
                     .AwaitAddExecution(in_flight.front())
                     .ok()) {
              ++failures_;
              return;
            }
            in_flight.erase(in_flight.begin());
            ++acked;
          }
        }
        for (PawTicket ticket : in_flight) {
          if (!client.value().AwaitAddExecution(ticket).ok()) {
            ++failures_;
            return;
          }
          ++acked;
        }
        ops_ += acked;
      });
    }
  }

  /// Drains the windows, joins the writers, returns acked appends.
  long Stop() {
    stop_.store(true);
    for (auto& t : threads_) t.join();
    threads_.clear();
    if (failures_.load() > 0) {
      std::fprintf(stderr, "e12 ingest load failed (%d writer errors)\n",
                   failures_.load());
      std::exit(1);
    }
    return ops_.load();
  }

 private:
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  std::atomic<int> failures_{0};
  std::atomic<long> ops_{0};
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool gate_only = false;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--gate-only") == 0) gate_only = true;
    if (std::strncmp(argv[i], "--baseline=", 11) == 0) {
      baseline_path = argv[i] + 11;
    }
  }

  const std::string dir = FreshDir("e11");
  {
    auto init = ShardedRepository::Init(dir, 8);
    if (!init.ok()) {
      std::fprintf(stderr, "init: %s\n",
                   init.status().ToString().c_str());
      return 1;
    }
  }
  ServerOptions options;
  options.store.sync_each_append = true;  // acked == durable
  options.store.writer_threads = 8;
  options.worker_threads = 12;
  options.principals = {{"bench", 100, ""}};
  auto server = PawServer::Start(dir, std::move(options));
  if (!server.ok()) {
    std::fprintf(stderr, "start: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  const int port = server.value()->port();

  // Upload one tenant spec per prospective connection (names route
  // them across shards) and pre-serialize execution pools, so client
  // threads measure the wire + store, not the executor. The tenant
  // spec is deliberately compact (one worker module): E11 measures
  // request throughput, not payload size — bench_store's E10 tables
  // already sweep record sizes.
  constexpr int kTenants = 8;
  std::vector<std::string> spec_names;
  std::vector<std::vector<std::string>> exec_texts;
  {
    auto client = PawClient::Connect("127.0.0.1", port);
    if (!client.ok() || !client.value().Auth("bench").ok()) return 1;
    FunctionRegistry fns;
    for (int t = 0; t < kTenants; ++t) {
      const std::string name = "bench tenant " + std::to_string(t);
      SpecBuilder builder(name);
      WorkflowId w = builder.AddWorkflow("W1", "top", 0);
      if (!builder.SetRoot(w).ok()) return 1;
      ModuleId in = builder.AddInput(w);
      ModuleId work = builder.AddModule(w, "M1", "ingest worker");
      ModuleId out = builder.AddOutput(w);
      if (!builder.Connect(in, work, {"x"}).ok()) return 1;
      if (!builder.Connect(work, out, {"y"}).ok()) return 1;
      auto spec = std::move(builder).Build();
      if (!spec.ok()) {
        std::fprintf(stderr, "tenant spec: %s\n",
                     spec.status().ToString().c_str());
        return 1;
      }
      auto added = client.value().AddSpec(Serialize(spec.value()), "");
      if (!added.ok()) {
        std::fprintf(stderr, "add spec: %s\n",
                     added.status().ToString().c_str());
        return 1;
      }
      std::vector<std::string> pool;
      for (int i = 0; i < 16; ++i) {
        auto exec = Execute(spec.value(), fns,
                            {{"x", "value-" + std::to_string(i)}});
        if (!exec.ok()) return 1;
        pool.push_back(SerializeExecution(exec.value()));
      }
      spec_names.push_back(name);
      exec_texts.push_back(std::move(pool));
    }
  }

  const int ops_per_conn = smoke ? 250 : 500;
  const int pipeline_window = 64;
  const std::vector<int> conn_table =
      smoke ? std::vector<int>{1, 8} : std::vector<int>{1, 4, 8, 16};

  BenchJson json;
  double sync8 = 0, pipe8 = 0;
  // --gate-only skips the sync/pipelined table (and its 3x check) and
  // runs just the dedicated gate cell below. The overhead comparison
  // needs the baseline and instrumented binaries measured seconds
  // apart — machine throughput drifts several percent over the minutes
  // a full run takes, which swamps a 5% gate — so check.sh alternates
  // short --gate-only runs of the two builds instead of comparing two
  // full benchmarks.
  for (int connections : gate_only ? std::vector<int>{} : conn_table) {
    for (const bool pipelined : {false, true}) {
      // Pre/post METRICS snapshots bracket the whole best-of-two pair,
      // so the deltas below cover both runs (2x the reported ops).
      MetricsSnapshot pre = FetchMetrics(port);
      // Best of two: on small CI machines a cold first cell (page
      // cache, journal state, scheduler) can understate either mode.
      CellResult cell =
          RunCell(port, spec_names, exec_texts, connections, ops_per_conn,
                  pipelined ? pipeline_window : 1);
      CellResult again =
          RunCell(port, spec_names, exec_texts, connections, ops_per_conn,
                  pipelined ? pipeline_window : 1);
      if (again.ops_per_s > cell.ops_per_s) cell = again;
      MetricsSnapshot post = FetchMetrics(port);
      const char* mode = pipelined ? "pipelined" : "sync";
      std::printf(
          "e11 %-9s conns=%-2d  %8.0f ops/s  p50 %7.0f us  p99 %7.0f "
          "us  (%.2fs)\n",
          mode, connections, cell.ops_per_s, cell.p50_us, cell.p99_us,
          cell.secs);
      const MetricSample* fsync = post.Find("paw_wal_fsync_seconds");
      json.Add(
          BenchJson::Row("e11")
              .Str("mode", mode)
              .Num("connections", connections)
              .Num("ops", cell.ops)
              .Num("secs", cell.secs)
              .Num("ops_per_s", cell.ops_per_s)
              .Num("p50_us", cell.p50_us)
              .Num("p99_us", cell.p99_us)
              .Num("d_requests",
                   static_cast<double>(CounterDelta(
                       pre, post, "paw_server_requests_total")))
              .Num("d_wal_appends",
                   static_cast<double>(CounterDelta(
                       pre, post, "paw_wal_appends_total")))
              .Num("d_fsyncs",
                   static_cast<double>(
                       HistCount(post, "paw_wal_fsync_seconds") -
                       HistCount(pre, "paw_wal_fsync_seconds")))
              .Num("d_bytes_in",
                   static_cast<double>(CounterDelta(
                       pre, post, "paw_server_bytes_in_total")))
              .Num("d_bytes_out",
                   static_cast<double>(CounterDelta(
                       pre, post, "paw_server_bytes_out_total")))
              .Num("fsync_p99_s",
                   fsync != nullptr ? fsync->histogram.Quantile(0.99)
                                    : 0.0));
      if (connections == 8) {
        (pipelined ? pipe8 : sync8) = cell.ops_per_s;
      }
    }
  }
  if (sync8 > 0) {
    const double speedup = pipe8 / sync8;
    std::printf("e11 pipelined vs sync at 8 connections: %.2fx %s\n",
                speedup, speedup >= 3.0 ? "(>= 3x: yes)" : "(< 3x)");
  }

  // Dedicated gate cell for the instrumentation-overhead comparison.
  // The table cells above are sized for a quick smoke signal — far too
  // short (tens of ms) to compare two builds within 5% on a noisy CI
  // box. This cell runs 8x the ops per trial over a fixed 8 trials and
  // takes the median of the top half: the max alone still swings
  // several percent trial-to-trial on shared machines, while the
  // top-half median is a stable estimate of the build's throughput
  // ceiling. The PAW_NO_METRICS baseline run records the identical
  // cell, so both sides of the gate use the same estimator.
  const int gate_conns = conn_table.back();
  double gate_ops = 0;
  {
    constexpr int kGateTrials = 8;
    std::vector<double> samples;
    samples.reserve(kGateTrials);
    for (int t = 0; t < kGateTrials; ++t) {
      CellResult cell =
          RunCell(port, spec_names, exec_texts, gate_conns,
                  ops_per_conn * 8, pipeline_window);
      samples.push_back(cell.ops_per_s);
    }
    std::sort(samples.begin(), samples.end(), std::greater<>());
    gate_ops = (samples[1] + samples[2]) / 2;  // median of top 4
    std::printf(
        "e11 gate      conns=%-2d  %8.0f ops/s  (top-half median of %d "
        "trials, best %.0f)\n",
        gate_conns, gate_ops, kGateTrials, samples[0]);
    json.Add(BenchJson::Row("e11")
                 .Str("mode", "gate")
                 .Num("connections", gate_conns)
                 .Num("ops_per_s", gate_ops));
  }

  // Instrumentation overhead gate: compare the gate cell against the
  // same cell from a PAW_NO_METRICS build's BENCH_server.json. The
  // workload is fsync-bound, so genuine metric overhead is far below
  // the 5% budget — failures here mean a hot-path regression.
  int gate_rc = 0;
  if (!baseline_path.empty()) {
    const double baseline = BaselineGateOps(baseline_path, gate_conns);
    const double instrumented = gate_ops;
    if (baseline <= 0 || instrumented <= 0) {
      std::fprintf(stderr, "overhead gate: missing cell data\n");
      return 1;
    }
    const double overhead = 1.0 - instrumented / baseline;
    const bool pass = instrumented >= 0.95 * baseline;
    std::printf(
        "e11 instrumentation overhead vs baseline at %d conns: %.1f%% "
        "%s\n",
        gate_conns, overhead * 100.0,
        pass ? "(<= 5%: yes)" : "(> 5%)");
    if (!pass) gate_rc = 1;
  }

  // E12: mixed read/write — query latency on an idle store vs under
  // sustained pipelined ingest. With the MVCC read path, queries hold
  // only the *shared* store lease and serve from pinned engine views,
  // so ingest must not multiply query p99 by more than the CPU
  // contention it genuinely adds. The METRICS brackets double as the
  // acceptance check that no query phase ever took the exclusive
  // lease (only ADD_SPEC and COMPACT do, and neither runs here).
  if (!gate_only) {
    const int query_conns = smoke ? 2 : 4;
    const int queries_per_conn = smoke ? 150 : 400;
    const int writer_conns = smoke ? 2 : 4;

    MetricsSnapshot pre_idle = FetchMetrics(port);
    QueryCellResult idle =
        RunQueryCell(port, spec_names, query_conns, queries_per_conn);
    MetricsSnapshot post_idle = FetchMetrics(port);
    std::printf(
        "e12 idle    conns=%-2d  %8.0f q/s  p50 %7.0f us  p99 %7.0f us\n",
        query_conns, idle.qps, idle.p50_us, idle.p99_us);

    IngestLoad load(port, spec_names, exec_texts, writer_conns,
                    pipeline_window);
    QueryCellResult busy =
        RunQueryCell(port, spec_names, query_conns, queries_per_conn);
    MetricsSnapshot post_busy = FetchMetrics(port);
    const long writes = load.Stop();
    std::printf(
        "e12 ingest  conns=%-2d  %8.0f q/s  p50 %7.0f us  p99 %7.0f us  "
        "(%ld writes acked alongside, %d writers)\n",
        query_conns, busy.qps, busy.p50_us, busy.p99_us, writes,
        writer_conns);

    for (const auto& [phase, cell, pre, post] :
         {std::tuple<const char*, const QueryCellResult&,
                     const MetricsSnapshot&, const MetricsSnapshot&>(
              "idle", idle, pre_idle, post_idle),
          std::tuple<const char*, const QueryCellResult&,
                     const MetricsSnapshot&, const MetricsSnapshot&>(
              "ingest", busy, post_idle, post_busy)}) {
      json.Add(
          BenchJson::Row("e12")
              .Str("phase", phase)
              .Num("query_connections", query_conns)
              .Num("writer_connections",
                   std::strcmp(phase, "ingest") == 0 ? writer_conns : 0)
              .Num("ops", cell.ops)
              .Num("qps", cell.qps)
              .Num("p50_us", cell.p50_us)
              .Num("p99_us", cell.p99_us)
              .Num("d_cache_hits",
                   static_cast<double>(CounterDelta(
                       pre, post, "paw_query_cache_hits_total")))
              .Num("d_cache_misses",
                   static_cast<double>(CounterDelta(
                       pre, post, "paw_query_cache_misses_total")))
              .Num("d_lease_shared",
                   static_cast<double>(CounterDelta(
                       pre, post, "paw_server_lease_shared_total")))
              .Num("d_lease_exclusive",
                   static_cast<double>(CounterDelta(
                       pre, post, "paw_server_lease_exclusive_total"))));
    }

    const double ratio =
        idle.p99_us > 0 ? busy.p99_us / idle.p99_us : 0.0;
    // Informational target: on a multi-core host the pinned-view read
    // path keeps this near 1x; a 1-core CI box adds genuine CPU
    // contention (writers and queries share the core), so the gate is
    // advisory rather than a hard failure.
    std::printf(
        "e12 query p99 under ingest: %.0f us vs idle %.0f us = %.2fx "
        "%s\n",
        busy.p99_us, idle.p99_us, ratio,
        ratio <= 2.0 ? "(<= 2x: yes)" : "(> 2x: cpu contention)");

    const uint64_t exclusive_delta = CounterDelta(
        pre_idle, post_busy, "paw_server_lease_exclusive_total");
    std::printf(
        "e12 exclusive-lease delta across query phases: %llu %s\n",
        static_cast<unsigned long long>(exclusive_delta),
        exclusive_delta == 0 ? "(queries never took the writer lease: "
                               "yes)"
                             : "(QUERY TOOK EXCLUSIVE LEASE)");
    if (exclusive_delta != 0) gate_rc = 1;
  }

  const char* json_path = std::getenv("BENCH_JSON");
  json.Write(json_path != nullptr ? json_path : "BENCH_server.json");

  server.value()->Stop();
  fs::remove_all(dir);
  return gate_rc;
}

// E11: pawd network front end — ops/s and p50/p99 request latency as
// a function of concurrent connections, sync (one round trip per op)
// vs pipelined (a window of outstanding ADD_EXECUTIONs per
// connection).
//
// Expected shape: sync throughput is bounded by round trips and — with
// sync=each — by one durable group commit per op per connection;
// pipelining lets every connection keep a window in flight, so the
// server's per-shard writer queues batch many requests into shared
// group commits and throughput scales well past 3x sync at 8
// connections. p99 pipelined latency is higher than sync (queueing),
// which is the classic throughput/latency trade.
//
// Results land in BENCH_server.json ($BENCH_JSON overrides the path)
// as one row per (mode, connections) cell. `--smoke` runs a scaled-
// down table sized for CI.

#include <algorithm>
#include <functional>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "src/client/paw_client.h"
#include "src/common/metrics.h"
#include "src/common/random.h"
#include "src/common/timer.h"
#include "src/privacy/policy_text.h"
#include "src/provenance/executor.h"
#include "src/provenance/serialize.h"
#include "src/repo/workload.h"
#include "src/workflow/builder.h"
#include "src/server/server.h"
#include "src/store/sharded_repository.h"
#include "src/workflow/serialize.h"

namespace {

using namespace paw;

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("paw_bench_srv_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Same flat-JSON emitter as bench_store.cc (kept local: the two
/// benches are independent binaries with independent artifacts).
class BenchJson {
 public:
  class Row {
   public:
    explicit Row(std::string experiment) {
      json_ = "{\"experiment\":\"" + experiment + "\"";
    }
    Row& Str(const char* key, const std::string& value) {
      json_ += std::string(",\"") + key + "\":\"" + value + "\"";
      return *this;
    }
    Row& Num(const char* key, double value) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", value);
      json_ += std::string(",\"") + key + "\":" + buf;
      return *this;
    }
    std::string Finish() const { return json_ + "}"; }

   private:
    std::string json_;
  };

  void Add(const Row& row) { rows_.push_back(row.Finish()); }

  void Write(const std::string& path) const {
    std::string out = "{\"bench\":\"server\",\"experiments\":[\n";
    for (size_t i = 0; i < rows_.size(); ++i) {
      out += "  " + rows_[i] + (i + 1 < rows_.size() ? ",\n" : "\n");
    }
    out += "]}\n";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("wrote %s (%zu experiment rows)\n", path.c_str(),
                rows_.size());
  }

 private:
  std::vector<std::string> rows_;
};

double Percentile(std::vector<double>* values, double p) {
  if (values->empty()) return 0;
  std::sort(values->begin(), values->end());
  const size_t index = std::min(
      values->size() - 1,
      static_cast<size_t>(p * static_cast<double>(values->size())));
  return (*values)[index];
}

struct CellResult {
  double secs = 0;
  double ops = 0;
  double ops_per_s = 0;
  double p50_us = 0;
  double p99_us = 0;
};

/// One METRICS round trip (HELLO + AUTH + METRICS on a throwaway
/// connection) — exercises the wire surface rather than peeking at the
/// in-process registry.
MetricsSnapshot FetchMetrics(int port) {
  auto client = PawClient::Connect("127.0.0.1", port);
  if (!client.ok() || !client.value().Auth("bench").ok()) {
    std::fprintf(stderr, "metrics connect failed\n");
    std::exit(1);
  }
  auto resp = client.value().Metrics();
  if (!resp.ok()) {
    std::fprintf(stderr, "METRICS: %s\n",
                 resp.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(resp.value().snapshot);
}

uint64_t CounterDelta(const MetricsSnapshot& pre,
                      const MetricsSnapshot& post,
                      std::string_view prefix) {
  return post.SumCounters(prefix) - pre.SumCounters(prefix);
}

uint64_t HistCount(const MetricsSnapshot& snap, std::string_view name) {
  const MetricSample* s = snap.Find(name);
  return s != nullptr ? s->histogram.count : 0;
}

/// Pulls `ops_per_s` of the dedicated gate row at `connections` out of
/// a prior BENCH_server.json (the PAW_NO_METRICS baseline run). The
/// file is our own flat emitter's output, so a string scan is enough.
double BaselineGateOps(const std::string& path, int connections) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
    std::exit(1);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string contents = buffer.str();
  const std::string conn_key =
      "\"connections\":" + std::to_string(connections);
  std::istringstream lines(contents);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("\"mode\":\"gate\"") == std::string::npos ||
        line.find(conn_key) == std::string::npos) {
      continue;
    }
    const size_t at = line.find("\"ops_per_s\":");
    if (at == std::string::npos) continue;
    return std::strtod(line.c_str() + at + std::strlen("\"ops_per_s\":"),
                       nullptr);
  }
  std::fprintf(stderr, "no gate conns=%d row in baseline %s\n",
               connections, path.c_str());
  std::exit(1);
}

/// Runs `connections` client threads, each issuing `ops_per_conn`
/// ADD_EXECUTIONs against its own tenant spec (connection c uses spec
/// c mod #specs — the multi-tenant shape the server shards for);
/// `window` = 1 is the sync mode (await every ack before the next
/// send), larger windows pipeline.
CellResult RunCell(int port, const std::vector<std::string>& spec_names,
                   const std::vector<std::vector<std::string>>& exec_texts,
                   int connections, int ops_per_conn, int window) {
  std::vector<std::thread> threads;
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(connections));
  std::atomic<int> failures{0};
  Timer timer;
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      auto client = PawClient::Connect("127.0.0.1", port);
      if (!client.ok() || !client.value().Auth("bench").ok()) {
        ++failures;
        return;
      }
      const size_t tenant =
          static_cast<size_t>(c) % spec_names.size();
      const std::string& spec_name = spec_names[tenant];
      const std::vector<std::string>& texts = exec_texts[tenant];
      auto& lat = latencies[static_cast<size_t>(c)];
      lat.reserve(static_cast<size_t>(ops_per_conn));
      std::vector<std::pair<PawTicket, double>> in_flight;
      Timer clock;
      for (int i = 0; i < ops_per_conn; ++i) {
        const std::string& text =
            texts[static_cast<size_t>((c + i)) % texts.size()];
        auto ticket =
            client.value().SendAddExecution(spec_name, text);
        if (!ticket.ok()) {
          ++failures;
          return;
        }
        in_flight.emplace_back(ticket.value(), clock.ElapsedMicros());
        if (in_flight.size() >= static_cast<size_t>(window)) {
          auto [front, sent_at] = in_flight.front();
          in_flight.erase(in_flight.begin());
          if (!client.value().AwaitAddExecution(front).ok()) {
            ++failures;
            return;
          }
          lat.push_back(clock.ElapsedMicros() - sent_at);
        }
      }
      for (auto& [ticket, sent_at] : in_flight) {
        if (!client.value().AwaitAddExecution(ticket).ok()) {
          ++failures;
          return;
        }
        lat.push_back(clock.ElapsedMicros() - sent_at);
      }
    });
  }
  for (auto& t : threads) t.join();
  CellResult result;
  result.secs = timer.ElapsedMicros() / 1e6;
  if (failures.load() > 0) {
    std::fprintf(stderr, "bench cell failed (%d client errors)\n",
                 failures.load());
    std::exit(1);
  }
  std::vector<double> all;
  for (auto& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  result.ops = static_cast<double>(connections) * ops_per_conn;
  result.ops_per_s = result.ops / result.secs;
  result.p50_us = Percentile(&all, 0.50);
  result.p99_us = Percentile(&all, 0.99);
  return result;
}

struct QueryCellResult {
  double secs = 0;
  double ops = 0;
  double qps = 0;
  double p50_us = 0;
  double p99_us = 0;
};

/// E12/E14 query side: `connections` client threads, each alternating
/// KEYWORD_SEARCH (hits every tenant spec via the "worker" module
/// token — the cached path) with GET_EXECUTION ordinal 0 (uncached
/// pinned-view lookup). One warmup search per connection pays the
/// engine's one-time view catch-up outside the timed loop. Connection
/// c dials ports[c mod #ports], so a multi-node port list spreads the
/// same client population across a leader and its followers (E14).
QueryCellResult RunQueryCell(const std::vector<int>& ports,
                             const std::vector<std::string>& spec_names,
                             int connections, int queries_per_conn) {
  std::vector<std::thread> threads;
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(connections));
  std::atomic<int> failures{0};
  Timer timer;
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      const int port = ports[static_cast<size_t>(c) % ports.size()];
      auto client = PawClient::Connect("127.0.0.1", port);
      if (!client.ok() || !client.value().Auth("bench").ok()) {
        ++failures;
        return;
      }
      if (!client.value().Search({"worker"}).ok()) {
        ++failures;
        return;
      }
      auto& lat = latencies[static_cast<size_t>(c)];
      lat.reserve(static_cast<size_t>(queries_per_conn));
      Timer clock;
      for (int i = 0; i < queries_per_conn; ++i) {
        const double start = clock.ElapsedMicros();
        bool ok;
        if (i % 2 == 0) {
          ok = client.value().Search({"worker"}).ok();
        } else {
          const std::string& name =
              spec_names[static_cast<size_t>(c + i) % spec_names.size()];
          ok = client.value().GetExecution(name, 0).ok();
        }
        if (!ok) {
          ++failures;
          return;
        }
        lat.push_back(clock.ElapsedMicros() - start);
      }
    });
  }
  for (auto& t : threads) t.join();
  QueryCellResult result;
  result.secs = timer.ElapsedMicros() / 1e6;
  if (failures.load() > 0) {
    std::fprintf(stderr, "e12 query cell failed (%d client errors)\n",
                 failures.load());
    std::exit(1);
  }
  std::vector<double> all;
  for (auto& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  result.ops = static_cast<double>(all.size());
  result.qps = result.ops / result.secs;
  result.p50_us = Percentile(&all, 0.50);
  result.p99_us = Percentile(&all, 0.99);
  return result;
}

/// E12 write side: background writer connections keep a pipelined
/// ADD_EXECUTION window in flight until `Stop` is called.
class IngestLoad {
 public:
  IngestLoad(int port, const std::vector<std::string>& spec_names,
             const std::vector<std::vector<std::string>>& exec_texts,
             int connections, int window) {
    for (int c = 0; c < connections; ++c) {
      threads_.emplace_back([&, c, port, window] {
        auto client = PawClient::Connect("127.0.0.1", port);
        if (!client.ok() || !client.value().Auth("bench").ok()) {
          ++failures_;
          return;
        }
        const size_t tenant =
            static_cast<size_t>(c) % spec_names.size();
        const std::string& spec_name = spec_names[tenant];
        const std::vector<std::string>& texts = exec_texts[tenant];
        std::vector<PawTicket> in_flight;
        long acked = 0;
        for (int i = 0; !stop_.load(std::memory_order_relaxed); ++i) {
          const std::string& text =
              texts[static_cast<size_t>(c + i) % texts.size()];
          auto ticket = client.value().SendAddExecution(spec_name, text);
          if (!ticket.ok()) {
            ++failures_;
            return;
          }
          in_flight.push_back(ticket.value());
          if (in_flight.size() >= static_cast<size_t>(window)) {
            if (!client.value()
                     .AwaitAddExecution(in_flight.front())
                     .ok()) {
              ++failures_;
              return;
            }
            in_flight.erase(in_flight.begin());
            ++acked;
          }
        }
        for (PawTicket ticket : in_flight) {
          if (!client.value().AwaitAddExecution(ticket).ok()) {
            ++failures_;
            return;
          }
          ++acked;
        }
        ops_ += acked;
      });
    }
  }

  /// Drains the windows, joins the writers, returns acked appends.
  long Stop() {
    stop_.store(true);
    for (auto& t : threads_) t.join();
    threads_.clear();
    if (failures_.load() > 0) {
      std::fprintf(stderr, "e12 ingest load failed (%d writer errors)\n",
                   failures_.load());
      std::exit(1);
    }
    return ops_.load();
  }

 private:
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  std::atomic<int> failures_{0};
  std::atomic<long> ops_{0};
};

// ---------------------------------------------------------------------
// E13: multi-tenant capacity model. Hundreds of principals with
// distinct levels and cache groups, zipfian spec popularity, and a
// YCSB-style mixed op ratio (40% LINEAGE / 25% STRUCTURAL / 15%
// KEYWORD_SEARCH / 15% GET_EXECUTION / 5% ADD_EXECUTION) driven
// through pawd at bench scale. Each cell sweeps the popularity skew;
// the whole table runs twice, privacy-view cache off then on, so
// BENCH_server.json records the cache win (and hit rates) per cell.
// Tenant specs come from the hierarchical workload generator with
// depth-3 expansion and structural privacy requirements, so every
// uncached lineage/structural answer pays real zoom-out work — the
// per-query cost the memoized view layer is built to remove.

struct E13Cell {
  double qps = 0;
  double lineage_p50_us = 0, lineage_p99_us = 0;
  double structural_p50_us = 0, structural_p99_us = 0;
  double search_p50_us = 0, getexec_p50_us = 0;
  double ops = 0;
  long writes = 0;
};

struct E13Tenants {
  std::vector<std::string> spec_names;
  std::vector<std::vector<std::string>> exec_texts;  // per spec
  std::vector<std::string> keywords;                 // query vocabulary
  std::vector<int> exec_counts;                      // per spec, at ingest end
  int num_principals = 0;
  int hot_ordinals = 8;  // lineage/get target the latest N runs
};

/// Untimed steady-state warmup, run once per server phase: one
/// representative principal per popular (group, level) combination
/// touches every spec's structural view, hot lineage cones, and
/// keyword vocabulary head. Both phases pay the same pass, so the
/// timed cells compare steady states — engine catch-up, the keyword
/// result cache, and (when enabled) the memoized privacy views are
/// warm rather than billed to whichever cell happens to run first.
void WarmE13(int port, const E13Tenants& tenants) {
  for (int who = 0; who < std::min(tenants.num_principals, 8); ++who) {
    auto client = PawClient::Connect("127.0.0.1", port);
    if (!client.ok() ||
        !client.value().Auth("t" + std::to_string(who)).ok()) {
      std::fprintf(stderr, "e13 warmup connect failed\n");
      std::exit(1);
    }
    for (size_t s = 0; s < tenants.spec_names.size(); ++s) {
      const std::string& spec = tenants.spec_names[s];
      wire::StructuralRequest req;
      req.spec_name = spec;
      req.var_terms = {tenants.keywords[0], tenants.keywords[1]};
      req.edges = {{0, 1, true}};
      (void)client.value().Structural(req);
      const int hot =
          std::min(tenants.exec_counts[s], tenants.hot_ordinals);
      for (int o = 0; o < std::min(hot, 4); ++o) {
        (void)client.value().Lineage(spec, o, 0);
        (void)client.value().GetExecution(spec, o);
      }
    }
    for (int k = 0; k < 4; ++k) {
      (void)client.value().Search({tenants.keywords[static_cast<size_t>(k)]});
    }
  }
}

/// One mixed-op client cell: `connections` sessions, each AUTHed as a
/// zipf-popular principal, issuing `ops_per_conn` zipf-routed ops.
E13Cell RunE13Cell(int port, const E13Tenants& tenants, double skew,
                   int connections, int ops_per_conn, uint64_t seed) {
  std::vector<std::thread> threads;
  std::vector<std::vector<double>> lineage_lat(
      static_cast<size_t>(connections)),
      structural_lat(static_cast<size_t>(connections)),
      search_lat(static_cast<size_t>(connections)),
      getexec_lat(static_cast<size_t>(connections));
  std::atomic<int> failures{0};
  std::atomic<long> writes{0};
  std::atomic<long> total_ops{0};
  Timer timer;
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (c + 1)));
      // Session principal: zipf-popular, so at high skew most traffic
      // shares few cache groups — the many-users-one-view case.
      const size_t who = rng.Zipf(
          static_cast<size_t>(tenants.num_principals), skew);
      auto client = PawClient::Connect("127.0.0.1", port);
      if (!client.ok() ||
          !client.value().Auth("t" + std::to_string(who)).ok()) {
        ++failures;
        return;
      }
      const size_t num_specs = tenants.spec_names.size();
      long my_writes = 0, my_ops = 0;
      Timer clock;
      for (int i = 0; i < ops_per_conn; ++i) {
        size_t s = rng.Zipf(num_specs, skew);
        if (tenants.exec_counts[s] == 0) s = 0;
        const std::string& spec = tenants.spec_names[s];
        const double kind = rng.UniformDouble();
        const double start = clock.ElapsedMicros();
        bool ok = false;
        std::vector<double>* bucket = nullptr;
        if (kind < 0.40) {
          // Ordinal popularity is zipf over the spec's hot window
          // (recent-hot shape: provenance queries concentrate on the
          // latest runs).
          const int ordinal = static_cast<int>(rng.Zipf(
              static_cast<size_t>(std::min(tenants.exec_counts[s],
                                           tenants.hot_ordinals)),
              skew));
          ok = client.value().Lineage(spec, ordinal, 0).ok();
          bucket = &lineage_lat[static_cast<size_t>(c)];
        } else if (kind < 0.65) {
          wire::StructuralRequest req;
          req.spec_name = spec;
          req.var_terms = {
              tenants.keywords[rng.Zipf(tenants.keywords.size(), skew)],
              tenants.keywords[rng.Zipf(tenants.keywords.size(), skew)]};
          req.edges = {{0, 1, true}};
          ok = client.value().Structural(req).ok();
          bucket = &structural_lat[static_cast<size_t>(c)];
        } else if (kind < 0.80) {
          ok = client.value()
                   .Search({tenants.keywords[rng.Zipf(
                       tenants.keywords.size(), skew)]})
                   .ok();
          bucket = &search_lat[static_cast<size_t>(c)];
        } else if (kind < 0.95) {
          const int ordinal = static_cast<int>(rng.Zipf(
              static_cast<size_t>(std::min(tenants.exec_counts[s],
                                           tenants.hot_ordinals)),
              skew));
          ok = client.value().GetExecution(spec, ordinal).ok();
          bucket = &getexec_lat[static_cast<size_t>(c)];
        } else {
          const auto& pool = tenants.exec_texts[s];
          auto ticket = client.value().SendAddExecution(
              spec, pool[rng.Uniform(pool.size())]);
          ok = ticket.ok() &&
               client.value().AwaitAddExecution(ticket.value()).ok();
          if (ok) ++my_writes;
        }
        if (!ok) {
          ++failures;
          return;
        }
        ++my_ops;
        if (bucket != nullptr) {
          bucket->push_back(clock.ElapsedMicros() - start);
        }
      }
      writes += my_writes;
      total_ops += my_ops;
    });
  }
  for (auto& t : threads) t.join();
  E13Cell cell;
  cell.ops = static_cast<double>(total_ops.load());
  cell.qps = cell.ops / (timer.ElapsedMicros() / 1e6);
  cell.writes = writes.load();
  if (failures.load() > 0) {
    std::fprintf(stderr, "e13 cell failed (%d client errors)\n",
                 failures.load());
    std::exit(1);
  }
  auto merge = [connections](std::vector<std::vector<double>>& per_conn) {
    std::vector<double> all;
    for (int c = 0; c < connections; ++c) {
      all.insert(all.end(), per_conn[static_cast<size_t>(c)].begin(),
                 per_conn[static_cast<size_t>(c)].end());
    }
    return all;
  };
  std::vector<double> lin = merge(lineage_lat);
  std::vector<double> str = merge(structural_lat);
  std::vector<double> srch = merge(search_lat);
  std::vector<double> gete = merge(getexec_lat);
  cell.lineage_p50_us = Percentile(&lin, 0.50);
  cell.lineage_p99_us = Percentile(&lin, 0.99);
  cell.structural_p50_us = Percentile(&str, 0.50);
  cell.structural_p99_us = Percentile(&str, 0.99);
  cell.search_p50_us = Percentile(&srch, 0.50);
  cell.getexec_p50_us = Percentile(&gete, 0.50);
  return cell;
}

int RunE13(bool smoke, bool no_view_cache, BenchJson* json) {
  const int num_specs = smoke ? 6 : 24;
  const int num_groups = smoke ? 4 : 12;
  const int num_principals = smoke ? 24 : 240;
  const int records = smoke ? 600 : 100000;
  const int query_conns = smoke ? 4 : 16;
  const int ops_per_conn = smoke ? 120 : 600;
  const int pipeline_window = 64;
  const double ingest_skew = 1.0;
  const std::vector<double> skews = {0.0, 1.1};

  std::printf("=== E13: multi-tenant capacity model (%d principals, "
              "%d specs, %d records) ===\n",
              num_principals, num_specs, records);

  // ---- Tenants: hierarchical specs with privacy policies ----
  // Deep specs (depth 4, ~half the modules composite) make the
  // uncached path honest: AccessPrefix + ExpandPrefix and
  // ZoomOutExecution walk a multi-level hierarchy, so a fresh
  // structural/lineage answer costs real view computation — the work
  // the memo layer exists to amortize across principals.
  Rng rng(20260808);
  WorkloadParams params;
  params.depth = 4;
  params.modules_per_workflow = 6;
  params.composite_prob = 0.55;
  params.vocabulary = 40;
  params.max_level = 3;
  std::vector<Specification> specs;
  std::vector<std::string> policy_texts;
  E13Tenants tenants;
  tenants.num_principals = num_principals;
  tenants.hot_ordinals = smoke ? 8 : 32;
  for (int k = 0; k < params.vocabulary; ++k) {
    tenants.keywords.push_back("kw" + std::to_string(k));
  }
  for (int s = 0; s < num_specs; ++s) {
    auto spec = GenerateSpec(params, &rng,
                             "capacity tenant " + std::to_string(s));
    if (!spec.ok()) {
      std::fprintf(stderr, "e13 spec: %s\n",
                   spec.status().ToString().c_str());
      return 1;
    }
    // Distinct per-tenant policy: everything defaults to level-1 data
    // (level-0 principals see masked values), plus structural
    // requirements between modules of one non-root workflow — pairs a
    // composite collapse can always hide, so zoom-out succeeds and
    // does real work for principals below level 2.
    PolicySet policy;
    policy.data.default_level = 1 + s % 2;
    std::map<int32_t, std::vector<const Module*>> by_workflow;
    for (const Module& m : spec.value().modules()) {
      if (m.kind == ModuleKind::kAtomic &&
          m.workflow != spec.value().root()) {
        by_workflow[m.workflow.value()].push_back(&m);
      }
    }
    for (const auto& [wf, mods] : by_workflow) {
      if (mods.size() < 2) continue;
      StructuralPrivacyRequirement req;
      req.src_code = mods.front()->code;
      req.dst_code = mods.back()->code;
      req.required_level = 2;
      policy.structural_reqs.push_back(req);
      if (policy.structural_reqs.size() >= 2) break;
    }
    policy_texts.push_back(SerializePolicy(policy));
    tenants.spec_names.push_back(spec.value().name());
    specs.push_back(std::move(spec).value());
  }

  // ---- Principals: level and group vary independently ----
  // Popularity (zipf over the index) decreases with i; levels are
  // assigned so the *popular* principals are the high-level power
  // users whose expanded views are large — the views worth memoizing.
  // Groups cycle independently of level.
  std::vector<ServerPrincipal> principals = {{"bench", 100, ""}};
  for (int i = 0; i < num_principals; ++i) {
    principals.push_back({"t" + std::to_string(i),
                          3 - (i / num_groups) % 4,
                          "g" + std::to_string(i % num_groups)});
  }

  const std::string dir = FreshDir("e13");
  {
    auto init = ShardedRepository::Init(dir, 8);
    if (!init.ok()) {
      std::fprintf(stderr, "e13 init: %s\n",
                   init.status().ToString().c_str());
      return 1;
    }
  }
  auto start_server = [&](bool cache_on)
      -> std::unique_ptr<PawServer> {
    ServerOptions options;
    options.store.sync_each_append = true;
    options.store.writer_threads = 8;
    options.worker_threads = 12;
    options.principals = principals;
    options.enable_view_cache = cache_on;
    options.slow_query_ms = -1;  // cold deep-spec queries are expected
    auto server = PawServer::Start(dir, std::move(options));
    if (!server.ok()) {
      std::fprintf(stderr, "e13 start: %s\n",
                   server.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(server.value());
  };

  // Phase 1 server runs with the cache off; it also absorbs the bulk
  // ingest so both phases query the same store.
  std::unique_ptr<PawServer> server = start_server(false);
  {
    auto client = PawClient::Connect("127.0.0.1", server->port());
    if (!client.ok() || !client.value().Auth("bench").ok()) return 1;
    for (int s = 0; s < num_specs; ++s) {
      auto added =
          client.value().AddSpec(Serialize(specs[static_cast<size_t>(s)]),
                                 policy_texts[static_cast<size_t>(s)]);
      if (!added.ok()) {
        std::fprintf(stderr, "e13 add spec: %s\n",
                     added.status().ToString().c_str());
        return 1;
      }
      std::vector<std::string> pool;
      for (int i = 0; i < 8; ++i) {
        auto exec =
            GenerateExecution(specs[static_cast<size_t>(s)], &rng);
        if (!exec.ok()) {
          std::fprintf(stderr, "e13 exec: %s\n",
                       exec.status().ToString().c_str());
          return 1;
        }
        pool.push_back(SerializeExecution(exec.value()));
      }
      tenants.exec_texts.push_back(std::move(pool));
    }
    // Zipf-popular bulk ingest, pipelined through one connection.
    tenants.exec_counts.assign(static_cast<size_t>(num_specs), 0);
    std::vector<PawTicket> in_flight;
    Timer ingest_timer;
    for (int r = 0; r < records; ++r) {
      const size_t s =
          rng.Zipf(static_cast<size_t>(num_specs), ingest_skew);
      const auto& pool = tenants.exec_texts[s];
      auto ticket = client.value().SendAddExecution(
          tenants.spec_names[s], pool[rng.Uniform(pool.size())]);
      if (!ticket.ok()) {
        std::fprintf(stderr, "e13 ingest send failed\n");
        return 1;
      }
      ++tenants.exec_counts[s];
      in_flight.push_back(ticket.value());
      if (in_flight.size() >= static_cast<size_t>(pipeline_window)) {
        if (!client.value().AwaitAddExecution(in_flight.front()).ok()) {
          std::fprintf(stderr, "e13 ingest ack failed\n");
          return 1;
        }
        in_flight.erase(in_flight.begin());
      }
    }
    for (PawTicket t : in_flight) {
      if (!client.value().AwaitAddExecution(t).ok()) return 1;
    }
    std::printf("e13 ingest: %d records in %.1fs\n", records,
                ingest_timer.ElapsedMicros() / 1e6);
  }

  // ---- The capacity table: skew sweep x cache off/on ----
  std::map<std::pair<int, double>, E13Cell> results;  // (cache_on, skew)
  for (const bool cache_on : no_view_cache
                                 ? std::vector<bool>{false}
                                 : std::vector<bool>{false, true}) {
    if (cache_on) {
      // Same store, fresh server with memoization enabled. Engines are
      // rebuilt (new cache namespaces), so the phase starts cold.
      server->Stop();
      server.reset();
      server = start_server(true);
    }
    WarmE13(server->port(), tenants);
    for (const double skew : skews) {
      MetricsSnapshot pre = FetchMetrics(server->port());
      E13Cell cell =
          RunE13Cell(server->port(), tenants, skew, query_conns,
                     ops_per_conn, /*seed=*/4242 + (cache_on ? 1 : 0));
      MetricsSnapshot post = FetchMetrics(server->port());
      const uint64_t view_hits = CounterDelta(
          pre, post, "paw_privacy_view_cache_hits_total");
      const uint64_t view_misses = CounterDelta(
          pre, post, "paw_privacy_view_cache_misses_total");
      const double hit_rate =
          view_hits + view_misses > 0
              ? static_cast<double>(view_hits) /
                    static_cast<double>(view_hits + view_misses)
              : 0.0;
      results[{cache_on ? 1 : 0, skew}] = cell;
      std::printf(
          "e13 cache=%-3s skew=%.2f  %7.0f q/s  lineage p50 %7.0f us  "
          "structural p50 %7.0f us  view-cache hit rate %.2f "
          "(%llu/%llu)\n",
          cache_on ? "on" : "off", skew, cell.qps, cell.lineage_p50_us,
          cell.structural_p50_us, hit_rate,
          static_cast<unsigned long long>(view_hits),
          static_cast<unsigned long long>(view_hits + view_misses));
      json->Add(
          BenchJson::Row("e13")
              .Str("view_cache", cache_on ? "on" : "off")
              .Num("skew", skew)
              .Num("principals", num_principals)
              .Num("specs", num_specs)
              .Num("records", records)
              .Num("connections", query_conns)
              .Num("ops", cell.ops)
              .Num("writes", static_cast<double>(cell.writes))
              .Num("qps", cell.qps)
              .Num("lineage_p50_us", cell.lineage_p50_us)
              .Num("lineage_p99_us", cell.lineage_p99_us)
              .Num("structural_p50_us", cell.structural_p50_us)
              .Num("structural_p99_us", cell.structural_p99_us)
              .Num("search_p50_us", cell.search_p50_us)
              .Num("getexec_p50_us", cell.getexec_p50_us)
              .Num("d_view_cache_hits", static_cast<double>(view_hits))
              .Num("d_view_cache_misses",
                   static_cast<double>(view_misses))
              .Num("view_cache_hit_rate", hit_rate));
    }
  }

  int rc = 0;
  if (!no_view_cache) {
    const E13Cell& off = results[{0, skews.back()}];
    const E13Cell& on = results[{1, skews.back()}];
    const double lineage_speedup =
        on.lineage_p50_us > 0 ? off.lineage_p50_us / on.lineage_p50_us
                              : 0.0;
    const double structural_speedup =
        on.structural_p50_us > 0
            ? off.structural_p50_us / on.structural_p50_us
            : 0.0;
    std::printf(
        "e13 view-cache p50 speedup at skew %.2f: lineage %.2fx, "
        "structural %.2fx %s\n",
        skews.back(), lineage_speedup, structural_speedup,
        lineage_speedup >= 3.0 && structural_speedup >= 3.0
            ? "(>= 3x: yes)"
            : "(< 3x)");
  }

  server->Stop();
  server.reset();
  fs::remove_all(dir);
  return rc;
}

}  // namespace

// ---------------------------------------------------------------------
// E14: follower read capacity. One leader ingests a corpus while N
// WAL-shipping followers subscribe and replay; once they converge, the
// same query population runs twice — all connections on the leader,
// then fanned across leader + followers. On a multi-core host the fan
// phase should scale aggregate q/s with node count (each pawd owns its
// engines and pinned views); on a 1-core CI box every node shares the
// core, so the scaling row is advisory there. The leader's
// paw_repl_lag_seconds histogram (observed at ack time: now minus the
// batch's send timestamp) is the replication-freshness artifact.

int RunE14(bool smoke, BenchJson* json) {
  const int kShards = 4;
  const int num_followers = smoke ? 1 : 2;
  const int kTenants = 4;
  const int records = smoke ? 300 : 2000;
  const int query_conns = smoke ? 2 : 4;
  const int queries_per_conn = smoke ? 100 : 300;
  const int pipeline_window = 64;

  std::printf("=== E14: follower read capacity (1 leader + %d "
              "follower%s, %d records) ===\n",
              num_followers, num_followers == 1 ? "" : "s", records);

  const std::string leader_dir = FreshDir("e14_leader");
  {
    auto init = ShardedRepository::Init(leader_dir, kShards);
    if (!init.ok()) {
      std::fprintf(stderr, "e14 init: %s\n",
                   init.status().ToString().c_str());
      return 1;
    }
  }
  auto leader_options = [] {
    ServerOptions options;
    options.store.sync_each_append = true;
    options.store.writer_threads = 4;
    options.worker_threads = 8;
    options.principals = {{"bench", 100, ""}};
    return options;
  };
  auto leader = PawServer::Start(leader_dir, leader_options());
  if (!leader.ok()) {
    std::fprintf(stderr, "e14 leader start: %s\n",
                 leader.status().ToString().c_str());
    return 1;
  }
  const int leader_port = leader.value()->port();

  // Tenant specs + pipelined ingest, same compact shape as E11.
  std::vector<std::string> spec_names;
  std::vector<std::vector<std::string>> exec_texts;
  {
    auto client = PawClient::Connect("127.0.0.1", leader_port);
    if (!client.ok() || !client.value().Auth("bench").ok()) return 1;
    FunctionRegistry fns;
    for (int t = 0; t < kTenants; ++t) {
      const std::string name = "repl tenant " + std::to_string(t);
      SpecBuilder builder(name);
      WorkflowId w = builder.AddWorkflow("W1", "top", 0);
      if (!builder.SetRoot(w).ok()) return 1;
      ModuleId in = builder.AddInput(w);
      ModuleId work = builder.AddModule(w, "M1", "ingest worker");
      ModuleId out = builder.AddOutput(w);
      if (!builder.Connect(in, work, {"x"}).ok()) return 1;
      if (!builder.Connect(work, out, {"y"}).ok()) return 1;
      auto spec = std::move(builder).Build();
      if (!spec.ok()) return 1;
      auto added = client.value().AddSpec(Serialize(spec.value()), "");
      if (!added.ok()) {
        std::fprintf(stderr, "e14 add spec: %s\n",
                     added.status().ToString().c_str());
        return 1;
      }
      std::vector<std::string> pool;
      for (int i = 0; i < 8; ++i) {
        auto exec = Execute(spec.value(), fns,
                            {{"x", "value-" + std::to_string(i)}});
        if (!exec.ok()) return 1;
        pool.push_back(SerializeExecution(exec.value()));
      }
      spec_names.push_back(name);
      exec_texts.push_back(std::move(pool));
    }
    std::vector<PawTicket> in_flight;
    for (int r = 0; r < records; ++r) {
      const size_t t = static_cast<size_t>(r) % spec_names.size();
      auto ticket = client.value().SendAddExecution(
          spec_names[t],
          exec_texts[t][static_cast<size_t>(r) % exec_texts[t].size()]);
      if (!ticket.ok()) return 1;
      in_flight.push_back(ticket.value());
      if (in_flight.size() >= static_cast<size_t>(pipeline_window)) {
        if (!client.value().AwaitAddExecution(in_flight.front()).ok()) {
          return 1;
        }
        in_flight.erase(in_flight.begin());
      }
    }
    for (PawTicket t : in_flight) {
      if (!client.value().AwaitAddExecution(t).ok()) return 1;
    }
  }

  // Followers: fresh stores, SUBSCRIBE to the leader, replay the WAL
  // stream through the recovery path. Catch-up is detected over the
  // wire: each follower's STATUS execution count must reach the
  // leader's corpus.
  std::vector<std::unique_ptr<PawServer>> followers;
  std::vector<std::string> follower_dirs;
  std::vector<int> all_ports = {leader_port};
  for (int i = 0; i < num_followers; ++i) {
    const std::string fdir = FreshDir("e14_follower" + std::to_string(i));
    {
      // Scoped: the Init handle holds the store-dir lock.
      auto init = ShardedRepository::Init(fdir, kShards);
      if (!init.ok()) return 1;
    }
    ServerOptions options = leader_options();
    options.follow_host = "127.0.0.1";
    options.follow_port = leader_port;
    options.follow_principal = "bench";
    auto follower = PawServer::Start(fdir, std::move(options));
    if (!follower.ok()) {
      std::fprintf(stderr, "e14 follower start: %s\n",
                   follower.status().ToString().c_str());
      return 1;
    }
    all_ports.push_back(follower.value()->port());
    follower_dirs.push_back(fdir);
    followers.push_back(std::move(follower).value());
  }
  Timer catch_up;
  for (const auto& follower : followers) {
    auto client = PawClient::Connect("127.0.0.1", follower->port());
    if (!client.ok() || !client.value().Auth("bench").ok()) return 1;
    for (;;) {
      auto status = client.value().GetStatus();
      if (status.ok() && status.value().executions >= records) break;
      if (catch_up.ElapsedMicros() > 120e6) {
        std::fprintf(stderr, "e14 follower never caught up\n");
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  std::printf("e14 catch-up: %d followers replayed %d records in %.2fs\n",
              num_followers, records, catch_up.ElapsedMicros() / 1e6);

  // Same query population, leader-only vs fanned across all nodes.
  QueryCellResult leader_only = RunQueryCell(
      {leader_port}, spec_names, query_conns, queries_per_conn);
  QueryCellResult fanned = RunQueryCell(all_ports, spec_names,
                                        query_conns, queries_per_conn);
  std::printf(
      "e14 leader-only  nodes=1  %8.0f q/s  p50 %7.0f us  p99 %7.0f us\n",
      leader_only.qps, leader_only.p50_us, leader_only.p99_us);
  std::printf(
      "e14 fanned       nodes=%zu  %8.0f q/s  p50 %7.0f us  p99 %7.0f us\n",
      all_ports.size(), fanned.qps, fanned.p50_us, fanned.p99_us);
  const double scaling =
      leader_only.qps > 0 ? fanned.qps / leader_only.qps : 0.0;
  // Same gating posture as E12: on 1 core all nodes time-share, so
  // scaling is advisory there; on multi-core the followers genuinely
  // add engine capacity and fanning the same population must not lose
  // throughput (>= 1.2x aggregate is a conservative floor for 2+
  // nodes — real scaling approaches node count).
  const unsigned cores = std::thread::hardware_concurrency();
  int rc = 0;
  if (cores <= 1) {
    std::printf(
        "e14 follower scaling: %.2fx aggregate q/s across %zu nodes "
        "(advisory: 1-core host, all nodes share the core)\n",
        scaling, all_ports.size());
  } else {
    const bool scaled = scaling >= 1.2;
    std::printf(
        "e14 follower scaling: %.2fx aggregate q/s across %zu nodes %s\n",
        scaling, all_ports.size(),
        scaled ? "(>= 1.2x: yes)" : "(< 1.2x: FAIL on multi-core host)");
    if (!scaled) rc = 1;
  }

  // Replication freshness from the leader's own metrics surface.
  MetricsSnapshot snap = FetchMetrics(leader_port);
  const MetricSample* lag = snap.Find("paw_repl_lag_seconds");
  const double lag_p50 =
      lag != nullptr ? lag->histogram.Quantile(0.50) : 0.0;
  const double lag_p99 =
      lag != nullptr ? lag->histogram.Quantile(0.99) : 0.0;
  std::printf(
      "e14 paw_repl_lag_seconds: count=%llu p50=%.6fs p99=%.6fs  "
      "(batches sent %llu, records sent %llu, acks %llu)\n",
      static_cast<unsigned long long>(
          lag != nullptr ? lag->histogram.count : 0),
      lag_p50, lag_p99,
      static_cast<unsigned long long>(
          snap.SumCounters("paw_repl_batches_sent_total")),
      static_cast<unsigned long long>(
          snap.SumCounters("paw_repl_records_sent_total")),
      static_cast<unsigned long long>(
          snap.SumCounters("paw_repl_acks_total")));

  json->Add(BenchJson::Row("e14")
                .Str("phase", "leader_only")
                .Num("nodes", 1)
                .Num("qps", leader_only.qps)
                .Num("p50_us", leader_only.p50_us)
                .Num("p99_us", leader_only.p99_us));
  json->Add(BenchJson::Row("e14")
                .Str("phase", "fanned")
                .Num("nodes", static_cast<double>(all_ports.size()))
                .Num("qps", fanned.qps)
                .Num("p50_us", fanned.p50_us)
                .Num("p99_us", fanned.p99_us)
                .Num("scaling_x", scaling)
                .Num("repl_lag_p99_s", lag_p99)
                .Num("repl_lag_count",
                     static_cast<double>(
                         lag != nullptr ? lag->histogram.count : 0)));

  for (auto& follower : followers) follower->Stop();
  leader.value()->Stop();
  for (const std::string& fdir : follower_dirs) fs::remove_all(fdir);
  fs::remove_all(leader_dir);
  return rc;
}

int main(int argc, char** argv) {
  bool smoke = false;
  bool gate_only = false;
  bool no_view_cache = false;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--gate-only") == 0) gate_only = true;
    if (std::strcmp(argv[i], "--no-view-cache") == 0) no_view_cache = true;
    if (std::strncmp(argv[i], "--baseline=", 11) == 0) {
      baseline_path = argv[i] + 11;
    }
  }

  const std::string dir = FreshDir("e11");
  {
    auto init = ShardedRepository::Init(dir, 8);
    if (!init.ok()) {
      std::fprintf(stderr, "init: %s\n",
                   init.status().ToString().c_str());
      return 1;
    }
  }
  ServerOptions options;
  options.store.sync_each_append = true;  // acked == durable
  options.store.writer_threads = 8;
  options.worker_threads = 12;
  options.principals = {{"bench", 100, ""}};
  auto server = PawServer::Start(dir, std::move(options));
  if (!server.ok()) {
    std::fprintf(stderr, "start: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  const int port = server.value()->port();

  // Upload one tenant spec per prospective connection (names route
  // them across shards) and pre-serialize execution pools, so client
  // threads measure the wire + store, not the executor. The tenant
  // spec is deliberately compact (one worker module): E11 measures
  // request throughput, not payload size — bench_store's E10 tables
  // already sweep record sizes.
  constexpr int kTenants = 8;
  std::vector<std::string> spec_names;
  std::vector<std::vector<std::string>> exec_texts;
  {
    auto client = PawClient::Connect("127.0.0.1", port);
    if (!client.ok() || !client.value().Auth("bench").ok()) return 1;
    FunctionRegistry fns;
    for (int t = 0; t < kTenants; ++t) {
      const std::string name = "bench tenant " + std::to_string(t);
      SpecBuilder builder(name);
      WorkflowId w = builder.AddWorkflow("W1", "top", 0);
      if (!builder.SetRoot(w).ok()) return 1;
      ModuleId in = builder.AddInput(w);
      ModuleId work = builder.AddModule(w, "M1", "ingest worker");
      ModuleId out = builder.AddOutput(w);
      if (!builder.Connect(in, work, {"x"}).ok()) return 1;
      if (!builder.Connect(work, out, {"y"}).ok()) return 1;
      auto spec = std::move(builder).Build();
      if (!spec.ok()) {
        std::fprintf(stderr, "tenant spec: %s\n",
                     spec.status().ToString().c_str());
        return 1;
      }
      auto added = client.value().AddSpec(Serialize(spec.value()), "");
      if (!added.ok()) {
        std::fprintf(stderr, "add spec: %s\n",
                     added.status().ToString().c_str());
        return 1;
      }
      std::vector<std::string> pool;
      for (int i = 0; i < 16; ++i) {
        auto exec = Execute(spec.value(), fns,
                            {{"x", "value-" + std::to_string(i)}});
        if (!exec.ok()) return 1;
        pool.push_back(SerializeExecution(exec.value()));
      }
      spec_names.push_back(name);
      exec_texts.push_back(std::move(pool));
    }
  }

  const int ops_per_conn = smoke ? 250 : 500;
  const int pipeline_window = 64;
  const std::vector<int> conn_table =
      smoke ? std::vector<int>{1, 8} : std::vector<int>{1, 4, 8, 16};

  BenchJson json;
  double sync8 = 0, pipe8 = 0;
  // --gate-only skips the sync/pipelined table (and its 3x check) and
  // runs just the dedicated gate cell below. The overhead comparison
  // needs the baseline and instrumented binaries measured seconds
  // apart — machine throughput drifts several percent over the minutes
  // a full run takes, which swamps a 5% gate — so check.sh alternates
  // short --gate-only runs of the two builds instead of comparing two
  // full benchmarks.
  for (int connections : gate_only ? std::vector<int>{} : conn_table) {
    for (const bool pipelined : {false, true}) {
      // Pre/post METRICS snapshots bracket the whole best-of-two pair,
      // so the deltas below cover both runs (2x the reported ops).
      MetricsSnapshot pre = FetchMetrics(port);
      // Best of two: on small CI machines a cold first cell (page
      // cache, journal state, scheduler) can understate either mode.
      CellResult cell =
          RunCell(port, spec_names, exec_texts, connections, ops_per_conn,
                  pipelined ? pipeline_window : 1);
      CellResult again =
          RunCell(port, spec_names, exec_texts, connections, ops_per_conn,
                  pipelined ? pipeline_window : 1);
      if (again.ops_per_s > cell.ops_per_s) cell = again;
      MetricsSnapshot post = FetchMetrics(port);
      const char* mode = pipelined ? "pipelined" : "sync";
      std::printf(
          "e11 %-9s conns=%-2d  %8.0f ops/s  p50 %7.0f us  p99 %7.0f "
          "us  (%.2fs)\n",
          mode, connections, cell.ops_per_s, cell.p50_us, cell.p99_us,
          cell.secs);
      const MetricSample* fsync = post.Find("paw_wal_fsync_seconds");
      json.Add(
          BenchJson::Row("e11")
              .Str("mode", mode)
              .Num("connections", connections)
              .Num("ops", cell.ops)
              .Num("secs", cell.secs)
              .Num("ops_per_s", cell.ops_per_s)
              .Num("p50_us", cell.p50_us)
              .Num("p99_us", cell.p99_us)
              .Num("d_requests",
                   static_cast<double>(CounterDelta(
                       pre, post, "paw_server_requests_total")))
              .Num("d_wal_appends",
                   static_cast<double>(CounterDelta(
                       pre, post, "paw_wal_appends_total")))
              .Num("d_fsyncs",
                   static_cast<double>(
                       HistCount(post, "paw_wal_fsync_seconds") -
                       HistCount(pre, "paw_wal_fsync_seconds")))
              .Num("d_bytes_in",
                   static_cast<double>(CounterDelta(
                       pre, post, "paw_server_bytes_in_total")))
              .Num("d_bytes_out",
                   static_cast<double>(CounterDelta(
                       pre, post, "paw_server_bytes_out_total")))
              .Num("fsync_p99_s",
                   fsync != nullptr ? fsync->histogram.Quantile(0.99)
                                    : 0.0));
      if (connections == 8) {
        (pipelined ? pipe8 : sync8) = cell.ops_per_s;
      }
    }
  }
  if (sync8 > 0) {
    const double speedup = pipe8 / sync8;
    std::printf("e11 pipelined vs sync at 8 connections: %.2fx %s\n",
                speedup, speedup >= 3.0 ? "(>= 3x: yes)" : "(< 3x)");
  }

  // Dedicated gate cell for the instrumentation-overhead comparison.
  // The table cells above are sized for a quick smoke signal — far too
  // short (tens of ms) to compare two builds within 5% on a noisy CI
  // box. This cell runs 8x the ops per trial over a fixed 8 trials and
  // takes the median of the top half: the max alone still swings
  // several percent trial-to-trial on shared machines, while the
  // top-half median is a stable estimate of the build's throughput
  // ceiling. The PAW_NO_METRICS baseline run records the identical
  // cell, so both sides of the gate use the same estimator.
  const int gate_conns = conn_table.back();
  double gate_ops = 0;
  {
    constexpr int kGateTrials = 8;
    std::vector<double> samples;
    samples.reserve(kGateTrials);
    for (int t = 0; t < kGateTrials; ++t) {
      CellResult cell =
          RunCell(port, spec_names, exec_texts, gate_conns,
                  ops_per_conn * 8, pipeline_window);
      samples.push_back(cell.ops_per_s);
    }
    std::sort(samples.begin(), samples.end(), std::greater<>());
    gate_ops = (samples[1] + samples[2]) / 2;  // median of top 4
    std::printf(
        "e11 gate      conns=%-2d  %8.0f ops/s  (top-half median of %d "
        "trials, best %.0f)\n",
        gate_conns, gate_ops, kGateTrials, samples[0]);
    json.Add(BenchJson::Row("e11")
                 .Str("mode", "gate")
                 .Num("connections", gate_conns)
                 .Num("ops_per_s", gate_ops));
  }

  // Instrumentation overhead gate: compare the gate cell against the
  // same cell from a PAW_NO_METRICS build's BENCH_server.json. The
  // workload is fsync-bound, so genuine metric overhead is far below
  // the 5% budget — failures here mean a hot-path regression.
  int gate_rc = 0;
  if (!baseline_path.empty()) {
    const double baseline = BaselineGateOps(baseline_path, gate_conns);
    const double instrumented = gate_ops;
    if (baseline <= 0 || instrumented <= 0) {
      std::fprintf(stderr, "overhead gate: missing cell data\n");
      return 1;
    }
    const double overhead = 1.0 - instrumented / baseline;
    const bool pass = instrumented >= 0.95 * baseline;
    std::printf(
        "e11 instrumentation overhead vs baseline at %d conns: %.1f%% "
        "%s\n",
        gate_conns, overhead * 100.0,
        pass ? "(<= 5%: yes)" : "(> 5%)");
    if (!pass) gate_rc = 1;
  }

  // E12: mixed read/write — query latency on an idle store vs under
  // sustained pipelined ingest. With the MVCC read path, queries hold
  // only the *shared* store lease and serve from pinned engine views,
  // so ingest must not multiply query p99 by more than the CPU
  // contention it genuinely adds. The METRICS brackets double as the
  // acceptance check that no query phase ever took the exclusive
  // lease (only ADD_SPEC and COMPACT do, and neither runs here).
  if (!gate_only) {
    const int query_conns = smoke ? 2 : 4;
    const int queries_per_conn = smoke ? 150 : 400;
    const int writer_conns = smoke ? 2 : 4;

    MetricsSnapshot pre_idle = FetchMetrics(port);
    QueryCellResult idle =
        RunQueryCell({port}, spec_names, query_conns, queries_per_conn);
    MetricsSnapshot post_idle = FetchMetrics(port);
    std::printf(
        "e12 idle    conns=%-2d  %8.0f q/s  p50 %7.0f us  p99 %7.0f us\n",
        query_conns, idle.qps, idle.p50_us, idle.p99_us);

    IngestLoad load(port, spec_names, exec_texts, writer_conns,
                    pipeline_window);
    QueryCellResult busy =
        RunQueryCell({port}, spec_names, query_conns, queries_per_conn);
    MetricsSnapshot post_busy = FetchMetrics(port);
    const long writes = load.Stop();
    std::printf(
        "e12 ingest  conns=%-2d  %8.0f q/s  p50 %7.0f us  p99 %7.0f us  "
        "(%ld writes acked alongside, %d writers)\n",
        query_conns, busy.qps, busy.p50_us, busy.p99_us, writes,
        writer_conns);

    for (const auto& [phase, cell, pre, post] :
         {std::tuple<const char*, const QueryCellResult&,
                     const MetricsSnapshot&, const MetricsSnapshot&>(
              "idle", idle, pre_idle, post_idle),
          std::tuple<const char*, const QueryCellResult&,
                     const MetricsSnapshot&, const MetricsSnapshot&>(
              "ingest", busy, post_idle, post_busy)}) {
      json.Add(
          BenchJson::Row("e12")
              .Str("phase", phase)
              .Num("query_connections", query_conns)
              .Num("writer_connections",
                   std::strcmp(phase, "ingest") == 0 ? writer_conns : 0)
              .Num("ops", cell.ops)
              .Num("qps", cell.qps)
              .Num("p50_us", cell.p50_us)
              .Num("p99_us", cell.p99_us)
              .Num("d_cache_hits",
                   static_cast<double>(CounterDelta(
                       pre, post, "paw_query_cache_hits_total")))
              .Num("d_cache_misses",
                   static_cast<double>(CounterDelta(
                       pre, post, "paw_query_cache_misses_total")))
              .Num("d_lease_shared",
                   static_cast<double>(CounterDelta(
                       pre, post, "paw_server_lease_shared_total")))
              .Num("d_lease_exclusive",
                   static_cast<double>(CounterDelta(
                       pre, post, "paw_server_lease_exclusive_total"))));
    }

    const double ratio =
        idle.p99_us > 0 ? busy.p99_us / idle.p99_us : 0.0;
    // The "p99 within ~2x of idle" target only means something when
    // queries and writers can actually run in parallel. On a 1-core
    // host they time-share the core, so under-ingest p99 is pure CPU
    // contention and the check would cry wolf — skip it with a reason.
    // On multi-core the pinned-view read path keeps the ratio near 1x,
    // so there the check is a hard gate.
    const unsigned cores = std::thread::hardware_concurrency();
    if (cores <= 1) {
      std::printf(
          "e12 query p99 under ingest: %.0f us vs idle %.0f us = %.2fx "
          "(2x check skipped: hardware_concurrency()=%u — writers and "
          "queries share one core, p99 is pure cpu contention)\n",
          busy.p99_us, idle.p99_us, ratio, cores);
    } else {
      const bool within = ratio <= 2.0;
      std::printf(
          "e12 query p99 under ingest: %.0f us vs idle %.0f us = %.2fx "
          "%s\n",
          busy.p99_us, idle.p99_us, ratio,
          within ? "(<= 2x: yes)" : "(> 2x: FAIL on multi-core host)");
      if (!within) gate_rc = 1;
    }

    const uint64_t exclusive_delta = CounterDelta(
        pre_idle, post_busy, "paw_server_lease_exclusive_total");
    std::printf(
        "e12 exclusive-lease delta across query phases: %llu %s\n",
        static_cast<unsigned long long>(exclusive_delta),
        exclusive_delta == 0 ? "(queries never took the writer lease: "
                               "yes)"
                             : "(QUERY TOOK EXCLUSIVE LEASE)");
    if (exclusive_delta != 0) gate_rc = 1;
  }

  // E13 runs against its own store + server (the E11 server above
  // stays idle meanwhile). `--no-view-cache` restricts it to the
  // memoization-off phase — the baseline half of the comparison.
  if (!gate_only) {
    if (RunE13(smoke, no_view_cache, &json) != 0) gate_rc = 1;
  }

  // E14 spins up its own leader + followers; the E11 server is idle by
  // now. Setup failures gate; the scaling row is advisory on 1-core.
  if (!gate_only) {
    if (RunE14(smoke, &json) != 0) gate_rc = 1;
  }

  const char* json_path = std::getenv("BENCH_JSON");
  json.Write(json_path != nullptr ? json_path : "BENCH_server.json");

  server.value()->Stop();
  fs::remove_all(dir);
  return gate_rc;
}

// F1-F5: executable reproduction of every figure in the paper, plus
// timings of the operations behind them.
//
// The paper is a vision paper with illustrative figures rather than
// measured plots; this binary regenerates each figure as a machine-checked
// artifact and reports PASS/FAIL per fact (see EXPERIMENTS.md).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "src/provenance/exec_view.h"
#include "src/query/keyword_search.h"
#include "src/repo/disease.h"
#include "src/workflow/hierarchy.h"
#include "src/workflow/view.h"

namespace {

using namespace paw;

int g_failures = 0;

void Check(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
  if (!ok) ++g_failures;
}

void ReproduceFigures() {
  auto spec_result = BuildDiseaseSpec();
  if (!spec_result.ok()) {
    std::printf("FATAL: %s\n", spec_result.status().ToString().c_str());
    ++g_failures;
    return;
  }
  const Specification& spec = spec_result.value();
  ExpansionHierarchy h = ExpansionHierarchy::Build(spec);
  auto W = [&](const char* c) { return spec.FindWorkflow(c).value(); };
  auto M = [&](const char* c) { return spec.FindModule(c).value(); };

  std::printf("== F1: Fig. 1 specification ==\n");
  Check(spec.num_workflows() == 4, "4 workflows W1..W4");
  Check(spec.num_modules() == 17, "17 modules (I, O, M1..M15)");
  Check(spec.module(M("M1")).expansion == W("W2"), "tau(M1) = W2");
  Check(spec.module(M("M2")).expansion == W("W3"), "tau(M2) = W3");
  Check(spec.module(M("M4")).expansion == W("W4"), "tau(M4) = W4");

  std::printf("== F3: Fig. 3 expansion hierarchy ==\n");
  Check(h.root() == W("W1"), "root is W1");
  Check(h.Children(W("W1")).size() == 2, "W1 has two children");
  Check(h.Parent(W("W4")) == W("W2"), "W4 under W2");
  Check(h.Height() == 2, "height 2");

  std::printf("== full expansion facts (Sec. 2 prose) ==\n");
  auto full = FullExpansion(spec, h);
  Check(full.ok(), "full expansion builds");
  if (full.ok()) {
    auto has_edge = [&](const char* a, const char* b) {
      auto ia = full.value().IndexOf(M(a));
      auto ib = full.value().IndexOf(M(b));
      return ia.ok() && ib.ok() &&
             full.value().graph().HasEdge(ia.value(), ib.value());
    };
    Check(full.value().num_visible() == 14, "I, O, M3, M5-M15 visible");
    Check(has_edge("M3", "M5"), "edge M3 -> M5");
    Check(has_edge("M8", "M9"), "edge M8 -> M9");
  }

  std::printf("== F4: Fig. 4 execution ==\n");
  auto exec = RunDiseaseExecution(spec);
  Check(exec.ok(), "execution runs");
  if (exec.ok()) {
    const Execution& e = exec.value();
    Check(e.num_nodes() == 20, "20 provenance nodes");
    Check(e.num_items() == 20, "data items d0..d19");
    const char* codes[] = {"",   "M1", "M3",  "M4",  "M5",  "M6",
                           "M7", "M8", "M2",  "M9",  "M12", "M13",
                           "M14", "M10", "M11", "M15"};
    bool ids_ok = true;
    for (int s = 1; s <= 15; ++s) {
      auto n = e.FindByProcess(s);
      if (!n.ok() ||
          spec.module(e.node(n.value()).module).code != codes[s]) {
        ids_ok = false;
      }
    }
    Check(ids_ok, "process ids S1..S15 match the figure exactly");
    Check(e.item(DataItemId(19)).label == "prognosis",
          "d19 is the prognosis");

    std::printf("== F2: Fig. 2 provenance view under {W1} ==\n");
    auto view = CollapseExecution(e, h, h.RootPrefix());
    Check(view.ok() && view.value().num_nodes() == 4,
          "collapsed view has I, S1:M1, S8:M2, O");
    Check(view.ok() && view.value().graph().num_edges() == 4,
          "collapsed view has 4 edges");
  }

  std::printf("== F5: Fig. 5 keyword query ==\n");
  auto minimal = MinimalCoveringPrefixes(
      spec, h, {"database queries", "disorder risk"}, /*level=*/2);
  Check(minimal.ok() && minimal.value().size() == 1,
        "unique minimal view");
  if (minimal.ok() && minimal.value().size() == 1) {
    Check(minimal.value()[0] == (Prefix{W("W1"), W("W2"), W("W4")}),
          "minimal view is {W1, W2, W4} (M1, M4 expanded; M2 collapsed)");
  }
  std::printf("figure reproduction: %s (%d failure(s))\n\n",
              g_failures == 0 ? "ALL PASS" : "FAILURES", g_failures);
}

void BM_BuildDiseaseSpec(benchmark::State& state) {
  for (auto _ : state) {
    auto spec = BuildDiseaseSpec();
    benchmark::DoNotOptimize(spec);
  }
}
BENCHMARK(BM_BuildDiseaseSpec);

void BM_RunDiseaseExecution(benchmark::State& state) {
  auto spec = BuildDiseaseSpec().value();
  for (auto _ : state) {
    auto exec = RunDiseaseExecution(spec);
    benchmark::DoNotOptimize(exec);
  }
}
BENCHMARK(BM_RunDiseaseExecution);

void BM_CollapseToFig2(benchmark::State& state) {
  auto spec = BuildDiseaseSpec().value();
  ExpansionHierarchy h = ExpansionHierarchy::Build(spec);
  auto exec = RunDiseaseExecution(spec).value();
  for (auto _ : state) {
    auto view = CollapseExecution(exec, h, h.RootPrefix());
    benchmark::DoNotOptimize(view);
  }
}
BENCHMARK(BM_CollapseToFig2);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== bench_figures: F1-F5 reproduction ===\n");
  ReproduceFigures();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return g_failures == 0 ? 0 : 1;
}

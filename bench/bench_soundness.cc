// E3: unsound-view detection and repair cost (ref [9]).
//
// Expected shape: extraneous pairs grow with cluster size; repair always
// reaches soundness; splits grow with the amount of unsoundness; repair
// cost (time) grows polynomially with graph size.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "src/common/random.h"
#include "src/privacy/soundness.h"
#include "src/repo/workload.h"

namespace {

using namespace paw;

/// Random clustering of g into ~n/cluster_size groups (contiguous ids).
std::pair<std::vector<NodeIndex>, NodeIndex> RandomClustering(
    const Digraph& g, Rng* rng, int cluster_size) {
  NodeIndex k = std::max(1, g.num_nodes() / cluster_size);
  std::vector<NodeIndex> groups(static_cast<size_t>(g.num_nodes()));
  for (auto& grp : groups) {
    grp = static_cast<NodeIndex>(rng->Uniform(static_cast<uint64_t>(k)));
  }
  std::map<NodeIndex, NodeIndex> remap;
  NodeIndex next = 0;
  for (auto& grp : groups) {
    auto [it, inserted] = remap.try_emplace(grp, next);
    if (inserted) ++next;
    grp = it->second;
  }
  return {groups, next};
}

void TableE3() {
  std::printf(
      "=== E3: unsound views — detection and repair (5 seeds) ===\n"
      "%-7s %-13s %-14s %-8s %-14s\n",
      "nodes", "cluster-size", "extraneous", "splits", "post-repair");
  for (int nodes : {20, 40, 80}) {
    for (int cluster_size : {2, 4, 8}) {
      double extra_before = 0;
      double splits = 0;
      double extra_after = 0;
      int runs = 0;
      for (uint64_t seed = 1; seed <= 5; ++seed) {
        Rng rng(seed * 31 + static_cast<uint64_t>(nodes * cluster_size));
        Digraph g = RandomLayeredDag(&rng, nodes / 5, 5, 0.3);
        auto [groups, k] = RandomClustering(g, &rng, cluster_size);
        auto report = CheckSoundness(g, groups, k);
        auto repair = RepairUnsoundClustering(g, groups, k);
        if (!report.ok() || !repair.ok()) continue;
        ++runs;
        extra_before += static_cast<double>(
            report.value().extraneous.size());
        splits += repair.value().splits;
        extra_after += static_cast<double>(
            repair.value().report.extraneous.size());
      }
      if (runs == 0) continue;
      std::printf("%-7d %-13d %-14.1f %-8.1f %-14.1f\n", nodes,
                  cluster_size, extra_before / runs, splits / runs,
                  extra_after / runs);
    }
  }
  std::printf("\n");
}

void BM_CheckSoundness(benchmark::State& state) {
  int nodes = static_cast<int>(state.range(0));
  Rng rng(5);
  Digraph g = RandomLayeredDag(&rng, nodes / 5, 5, 0.3);
  auto [groups, k] = RandomClustering(g, &rng, 4);
  for (auto _ : state) {
    auto report = CheckSoundness(g, groups, k);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_CheckSoundness)->Arg(20)->Arg(80)->Arg(160);

void BM_RepairUnsound(benchmark::State& state) {
  int nodes = static_cast<int>(state.range(0));
  Rng rng(5);
  Digraph g = RandomLayeredDag(&rng, nodes / 5, 5, 0.3);
  auto [groups, k] = RandomClustering(g, &rng, 4);
  for (auto _ : state) {
    auto repair = RepairUnsoundClustering(g, groups, k);
    benchmark::DoNotOptimize(repair);
  }
}
BENCHMARK(BM_RepairUnsound)->Arg(20)->Arg(80)->Arg(160);

}  // namespace

int main(int argc, char** argv) {
  TableE3();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// E10: differential privacy for provenance counting (paper Sec. 5).
//
// The paper conjectures DP may be too destructive for provenance because
// provenance must stay reproducible. This experiment quantifies the
// claim: relative error of Laplace-noised counting queries vs epsilon
// and repository size. Expected shape: error ~ 1/(epsilon * count), so
// DP is tolerable for *aggregate* statistics over large repositories and
// useless for the small counts typical of individual-workflow provenance
// (where the paper's skepticism is confirmed).

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "src/privacy/dp_counters.h"
#include "src/repo/disease.h"

namespace {

using namespace paw;

void BuildExecutions(Repository* repo, int count) {
  auto spec = BuildDiseaseSpec();
  int sid = repo->AddSpecification(std::move(spec).value()).value();
  FunctionRegistry fns = BuildDiseaseFunctions();
  for (int i = 0; i < count; ++i) {
    ValueMap inputs = DiseaseInputs();
    inputs["SNPs"] = "rs" + std::to_string(i);
    // Half the runs are "high-risk" variants: give them a marker value
    // so counting queries have non-trivial answers.
    if (i % 2 == 0) inputs["lifestyle"] = "smoker";
    auto exec = Execute(repo->entry(sid).spec, fns, inputs);
    (void)repo->AddExecution(sid, std::move(exec).value());
  }
}

void TableE10() {
  std::printf(
      "=== E10: DP counting over provenance (Laplace mechanism) ===\n"
      "%-8s %-8s %-8s %-14s %-14s\n",
      "execs", "epsilon", "exact", "mean-rel-err", "usable?");
  for (int execs : {10, 100, 1000}) {
    Repository repo;
    BuildExecutions(&repo, execs);
    ProvenanceCounter counter(repo, 2026);
    int64_t exact = counter.CountContributions("M13", "M11").value();
    for (double epsilon : {0.01, 0.1, 1.0, 10.0}) {
      double err = 0;
      constexpr int kTrials = 200;
      for (uint64_t t = 0; t < kTrials; ++t) {
        double noisy = counter.Noisy(exact, epsilon, t).value();
        err += std::abs(noisy - static_cast<double>(exact)) /
               std::max<double>(1.0, static_cast<double>(exact));
      }
      err /= kTrials;
      std::printf("%-8d %-8.2f %-8lld %-14.3f %-14s\n", execs, epsilon,
                  static_cast<long long>(exact), err,
                  err < 0.1 ? "yes" : "no (noise dominates)");
    }
  }
  std::printf("(per-execution provenance has count 1: rel-err = 1/eps "
              ">> 1 — the paper's skepticism, quantified)\n\n");
}

void BM_ExactContributionCount(benchmark::State& state) {
  Repository repo;
  BuildExecutions(&repo, static_cast<int>(state.range(0)));
  ProvenanceCounter counter(repo, 1);
  for (auto _ : state) {
    auto c = counter.CountContributions("M13", "M11");
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_ExactContributionCount)->Arg(10)->Arg(100);

void BM_NoisyCount(benchmark::State& state) {
  Repository repo;
  BuildExecutions(&repo, 10);
  ProvenanceCounter counter(repo, 1);
  uint64_t q = 0;
  for (auto _ : state) {
    auto c = counter.Noisy(10, 1.0, q++);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_NoisyCount);

}  // namespace

int main(int argc, char** argv) {
  TableE10();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}

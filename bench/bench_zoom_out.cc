// E5: zoom-out evaluation vs per-level materialization (paper Sec. 4:
// "It may be infeasible to create variants of the workflow repository,
// one for each privilege/privacy setting, due to high space overhead.
// Instead, the information must be hidden on-the-fly, which usually
// leads to processing overhead.")
//
// Expected shape: on-the-fly zoom-out costs more per query, while
// materializing one collapsed view per level multiplies space by the
// number of levels; the crossover depends on the query rate.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>

#include "src/common/random.h"
#include "src/common/timer.h"
#include "src/provenance/exec_view.h"
#include "src/query/zoom_out.h"
#include "src/repo/workload.h"
#include "src/workflow/hierarchy.h"

namespace {

using namespace paw;

struct World {
  std::unique_ptr<Specification> spec;
  ExpansionHierarchy hierarchy;
  std::unique_ptr<Execution> exec;
};

World BuildWorld(int depth, uint64_t seed) {
  Rng rng(seed);
  WorkloadParams params;
  params.depth = depth;
  params.modules_per_workflow = 4;
  params.composite_prob = 0.6;
  params.max_level = depth;
  World world;
  auto spec = GenerateSpec(params, &rng, "world");
  world.spec = std::make_unique<Specification>(std::move(spec).value());
  world.hierarchy = ExpansionHierarchy::Build(*world.spec);
  auto exec = GenerateExecution(*world.spec, &rng);
  world.exec = std::make_unique<Execution>(std::move(exec).value());
  return world;
}

/// Rough bytes of one collapsed view (nodes + edges + item lists).
int64_t ViewBytes(const ExecView& view) {
  int64_t bytes = view.num_nodes() *
                  static_cast<int64_t>(sizeof(ExecViewNode));
  for (const auto& [u, v] : view.graph().Edges()) {
    bytes += 16;
    bytes += static_cast<int64_t>(view.ItemsOn(u, v).size()) * 4;
  }
  return bytes;
}

void TableE5() {
  std::printf(
      "=== E5: on-the-fly zoom-out vs per-level materialization ===\n"
      "%-7s %-8s %-14s %-16s %-18s\n",
      "depth", "levels", "zoomout(us)", "lookup(us)",
      "materialized(KB)");
  for (int depth : {2, 3, 4, 5, 6}) {
    World world = BuildWorld(depth, 11);
    PolicySet policy;  // level enforcement only
    const int levels = depth + 1;

    // On-the-fly: collapse per query.
    Timer onthefly;
    constexpr int kQueries = 50;
    for (int q = 0; q < kQueries; ++q) {
      int level = q % levels;
      auto result =
          ZoomOutExecution(*world.exec, world.hierarchy, policy, level);
      benchmark::DoNotOptimize(result);
    }
    double fly_us = onthefly.ElapsedMicros() / kQueries;

    // Materialized: build one view per level once, then lookups.
    std::map<int, std::unique_ptr<ExecView>> materialized;
    int64_t bytes = 0;
    for (int level = 0; level < levels; ++level) {
      Prefix p = world.hierarchy.AccessPrefix(*world.spec, level);
      auto view = CollapseExecution(*world.exec, world.hierarchy, p);
      bytes += ViewBytes(view.value());
      materialized[level] =
          std::make_unique<ExecView>(std::move(view).value());
    }
    Timer lookup;
    int64_t touched = 0;
    for (int q = 0; q < kQueries; ++q) {
      const ExecView& v = *materialized[q % levels];
      touched += v.num_nodes();
    }
    benchmark::DoNotOptimize(touched);
    double lookup_us = lookup.ElapsedMicros() / kQueries;

    std::printf("%-7d %-8d %-14.1f %-16.3f %-18.1f\n", depth, levels,
                fly_us, lookup_us, bytes / 1024.0);
  }
  std::printf("\n");
}

void BM_ZoomOutExecution(benchmark::State& state) {
  World world = BuildWorld(static_cast<int>(state.range(0)), 13);
  PolicySet policy;
  int level = 1;
  for (auto _ : state) {
    auto result =
        ZoomOutExecution(*world.exec, world.hierarchy, policy, level);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ZoomOutExecution)->Arg(2)->Arg(4)->Arg(6);

void BM_ZoomOutToLevel(benchmark::State& state) {
  World world = BuildWorld(static_cast<int>(state.range(0)), 13);
  for (auto _ : state) {
    auto result = ZoomOutToLevel(*world.spec, world.hierarchy,
                                 world.hierarchy.FullPrefix(), 1);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ZoomOutToLevel)->Arg(2)->Arg(4)->Arg(6);

}  // namespace

int main(int argc, char** argv) {
  TableE5();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}

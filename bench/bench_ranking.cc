// E6: privacy-aware ranking — the quality/leakage trade-off of score
// bucketing (paper Sec. 4, "Impact of Ranking on Privacy Preservation").
//
// Expected shape: as bucket width grows, distinguishable frequency
// classes (leakage proxy) fall towards 1 while Kendall tau against the
// true TF-IDF ranking degrades gracefully; a mid-range width keeps most
// ranking quality at a fraction of the leakage.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "src/common/random.h"
#include "src/query/keyword_search.h"
#include "src/query/ranking.h"
#include "src/repo/workload.h"

namespace {

using namespace paw;

struct ScoredWorld {
  std::unique_ptr<Repository> repo;
  std::vector<double> scores;  // true TF-IDF answer scores for one query
};

ScoredWorld BuildScores(int num_specs) {
  ScoredWorld world;
  world.repo = std::make_unique<Repository>();
  Rng rng(77);
  WorkloadParams params;
  params.depth = 1;
  params.modules_per_workflow = 8;
  params.vocabulary = 30;
  params.keywords_per_module = 6;  // varied tf -> a rich score range
  for (int i = 0; i < num_specs; ++i) {
    auto spec = GenerateSpec(params, &rng, "s" + std::to_string(i));
    if (spec.ok()) {
      (void)world.repo->AddSpecification(std::move(spec).value());
    }
  }
  InvertedIndex index;
  index.Build(*world.repo);
  TfIdfScorer scorer;
  scorer.Build(index);
  // Per-module relevance scores for a three-term query: the list a
  // ranked result page would order (and hence the channel that leaks
  // term frequencies).
  for (int s = 0; s < world.repo->num_specs(); ++s) {
    const Specification& spec = world.repo->entry(s).spec;
    for (const Module& m : spec.modules()) {
      double score = scorer.ScoreModule(spec, m.id, "kw0") +
                     scorer.ScoreModule(spec, m.id, "kw1") +
                     scorer.ScoreModule(spec, m.id, "kw2");
      if (score > 0) world.scores.push_back(score);
    }
  }
  return world;
}

void TableE6() {
  ScoredWorld world = BuildScores(300);
  std::printf(
      "=== E6: ranking quality vs frequency leakage (n=%zu answers) ===\n"
      "%-12s %-12s %-14s\n",
      world.scores.size(), "bucket", "kendall-tau", "classes(leak)");
  std::printf("%-12s %-12.3f %-14d\n", "exact",
              KendallTau(world.scores, world.scores),
              DistinguishableClasses(world.scores));
  for (double width : {0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    std::vector<double> bucketed = BucketizeScores(world.scores, width);
    std::printf("%-12.2f %-12.3f %-14d\n", width,
                KendallTau(world.scores, bucketed),
                DistinguishableClasses(bucketed));
  }
  std::printf("\n");
}

void BM_ScoreAnswers(benchmark::State& state) {
  ScoredWorld world = BuildScores(static_cast<int>(state.range(0)));
  InvertedIndex index;
  index.Build(*world.repo);
  TfIdfScorer scorer;
  scorer.Build(index);
  const Specification& spec = world.repo->entry(0).spec;
  std::vector<ModuleId> mods;
  for (const Module& m : spec.modules()) mods.push_back(m.id);
  for (auto _ : state) {
    double s = scorer.ScoreAnswer(spec, mods, {"kw0", "kw1"});
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_ScoreAnswers)->Arg(50);

void BM_KendallTau(benchmark::State& state) {
  ScoredWorld world = BuildScores(300);
  std::vector<double> bucketed = BucketizeScores(world.scores, 0.5);
  for (auto _ : state) {
    double tau = KendallTau(world.scores, bucketed);
    benchmark::DoNotOptimize(tau);
  }
}
BENCHMARK(BM_KendallTau);

}  // namespace

int main(int argc, char** argv) {
  TableE6();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
